package vpfs

import (
	"errors"
	"testing"

	"lateral/internal/cryptoutil"
	"lateral/internal/hw"
	"lateral/internal/legacy"
	"lateral/internal/tpm"
)

func newJournaled(t *testing.T) (*Journal, *legacy.FS, *MemCounter, []byte) {
	t.Helper()
	dev := hw.NewBlockDevice("jdev", 256)
	fs, err := legacy.Format(dev)
	if err != nil {
		t.Fatal(err)
	}
	key := cryptoutil.KeyFromSeed("journal-master")
	ctr := &MemCounter{}
	j, err := Recover(fs, key, ctr)
	if err != nil {
		t.Fatal(err)
	}
	return j, fs, ctr, key
}

func TestJournalRequiresFullMode(t *testing.T) {
	dev := hw.NewBlockDevice("d", 64)
	fs, _ := legacy.Format(dev)
	v, _ := New(fs, cryptoutil.KeyFromSeed("k"), ModeMACOnly)
	if _, err := NewJournal(v, &MemCounter{}); err == nil {
		t.Error("journal over MAC-only mode accepted")
	}
}

func TestCrashRecoveryRestoresState(t *testing.T) {
	j, fs, ctr, key := newJournaled(t)
	if err := j.WriteFile("a", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := j.WriteFile("b", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// "Crash": all in-memory state is lost; only the device + the trusted
	// counter survive.
	j2, err := Recover(fs, key, ctr)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	got, err := j2.ReadFile("a")
	if err != nil || string(got) != "v1" {
		t.Fatalf("a after recover = %q, %v", got, err)
	}
	got, err = j2.ReadFile("b")
	if err != nil || string(got) != "v2" {
		t.Fatalf("b after recover = %q, %v", got, err)
	}
	names, err := j2.List()
	if err != nil || len(names) != 2 {
		t.Errorf("list = %v, %v", names, err)
	}
	// New writes continue to work after recovery.
	if err := j2.WriteFile("c", []byte("v3")); err != nil {
		t.Fatal(err)
	}
}

func TestJournalRollbackDetected(t *testing.T) {
	j, fs, ctr, key := newJournaled(t)
	if err := j.WriteFile("state", []byte("old")); err != nil {
		t.Fatal(err)
	}
	snap := fs.Device().Snapshot()
	if err := j.WriteFile("state", []byte("new")); err != nil {
		t.Fatal(err)
	}
	// Attacker rolls the WHOLE device (data + journal) back.
	if err := fs.Device().RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(fs, key, ctr); !errors.Is(err, ErrJournal) {
		t.Errorf("rolled-back journal accepted: %v", err)
	}
}

func TestJournalTruncationDetected(t *testing.T) {
	j, fs, ctr, key := newJournaled(t)
	if err := j.WriteFile("x", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := fs.DeleteFile(journalName); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(fs, key, ctr); !errors.Is(err, ErrJournal) {
		t.Errorf("deleted journal accepted: %v", err)
	}
}

func TestJournalTamperDetected(t *testing.T) {
	j, fs, ctr, key := newJournaled(t)
	if err := j.WriteFile("x", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := fs.TamperFileData(journalName); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(fs, key, ctr); !errors.Is(err, ErrJournal) {
		t.Errorf("tampered journal accepted: %v", err)
	}
}

func TestCrashBetweenWriteAndBumpRecommits(t *testing.T) {
	// Simulate the torn commit: state written under seq N+1 but the
	// counter never advanced. Recovery must land on the LAST COMMITTED
	// state (counter value N), and the next commit must succeed.
	j, fs, ctr, key := newJournaled(t)
	if err := j.WriteFile("a", []byte("committed")); err != nil {
		t.Fatal(err)
	}
	// Torn mutation: mutate + seal + write journal, but crash before the
	// counter increments. Reproduce by writing the underlying VPFS and
	// journal record manually.
	if err := j.v.WriteFile("a", []byte("torn")); err != nil {
		t.Fatal(err)
	}
	cur, _ := ctr.Value()
	state := j.v.SaveState()
	var seqB [8]byte
	seq := cur + 1
	for i := 0; i < 8; i++ {
		seqB[7-i] = byte(seq >> (8 * i))
	}
	digest := cryptoutil.Hash(state)
	sealed, err := cryptoutil.Seal(j.key, cryptoutil.DeriveNonce("vpfs-journal:"+string(digest[:8]), seq), state, seqB[:])
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(journalName, append(seqB[:], sealed...)); err != nil {
		t.Fatal(err)
	}
	// Crash + recover: the torn record's seq is ahead of the counter.
	if _, err := Recover(fs, key, ctr); !errors.Is(err, ErrJournal) {
		t.Fatalf("torn commit: got %v, want ErrJournal (fail closed, operator re-syncs)", err)
	}
}

func TestFreshCounterMeansFreshFS(t *testing.T) {
	dev := hw.NewBlockDevice("fresh", 64)
	fs, _ := legacy.Format(dev)
	j, err := Recover(fs, cryptoutil.KeyFromSeed("k"), &MemCounter{})
	if err != nil {
		t.Fatal(err)
	}
	if names, _ := j.List(); len(names) != 0 {
		t.Errorf("fresh fs lists %v", names)
	}
}

func TestDeleteFileCommits(t *testing.T) {
	j, fs, ctr, key := newJournaled(t)
	if err := j.WriteFile("doomed", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := j.DeleteFile("doomed"); err != nil {
		t.Fatal(err)
	}
	j2, err := Recover(fs, key, ctr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j2.ReadFile("doomed"); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted file resurrected by recovery: %v", err)
	}
}

func TestMemCounterMonotonic(t *testing.T) {
	c := &MemCounter{}
	v0, _ := c.Value()
	v1, _ := c.Increment()
	v2, _ := c.Increment()
	if v0 != 0 || v1 != 1 || v2 != 2 {
		t.Errorf("counter sequence = %d,%d,%d", v0, v1, v2)
	}
}

func TestJournalOverTPMNVCounter(t *testing.T) {
	// The journal's freshness anchor is meant to be a real trusted
	// counter; a TPM NV counter satisfies the interface directly.
	dev := hw.NewBlockDevice("tpmdev", 256)
	fs, err := legacy.Format(dev)
	if err != nil {
		t.Fatal(err)
	}
	key := cryptoutil.KeyFromSeed("tpm-journal")
	ctr := tpm.New("journal-device", cryptoutil.NewSigner("mfr")).NVCounter("vpfs")
	j, err := Recover(fs, key, ctr)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.WriteFile("doc", []byte("anchored in TPM NV")); err != nil {
		t.Fatal(err)
	}
	j2, err := Recover(fs, key, ctr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j2.ReadFile("doc")
	if err != nil || string(got) != "anchored in TPM NV" {
		t.Fatalf("recovered = %q, %v", got, err)
	}
}
