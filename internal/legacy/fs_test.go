package legacy

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"lateral/internal/hw"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	dev := hw.NewBlockDevice("disk0", 256)
	fs, err := Format(dev)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestFormatAndMount(t *testing.T) {
	dev := hw.NewBlockDevice("disk0", 64)
	if _, err := Mount(dev); !errors.Is(err, ErrNotFormatted) {
		t.Errorf("mount of blank device: got %v", err)
	}
	if _, err := Format(dev); err != nil {
		t.Fatal(err)
	}
	if _, err := Mount(dev); err != nil {
		t.Errorf("mount after format: %v", err)
	}
	tiny := hw.NewBlockDevice("tiny", 4)
	if _, err := Format(tiny); err == nil {
		t.Error("format of too-small device succeeded")
	}
}

func TestWriteReadDeleteList(t *testing.T) {
	fs := newFS(t)
	if err := fs.WriteFile("inbox", []byte("mail contents")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("drafts", []byte("wip")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("inbox")
	if err != nil || string(got) != "mail contents" {
		t.Fatalf("read = %q, %v", got, err)
	}
	names, err := fs.List()
	if err != nil || len(names) != 2 || names[0] != "drafts" || names[1] != "inbox" {
		t.Fatalf("list = %v, %v", names, err)
	}
	if err := fs.DeleteFile("inbox"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("inbox"); !errors.Is(err, ErrNotFound) {
		t.Errorf("read deleted: got %v", err)
	}
	if err := fs.DeleteFile("inbox"); !errors.Is(err, ErrNotFound) {
		t.Errorf("delete missing: got %v", err)
	}
}

func TestOverwriteReleasesBlocks(t *testing.T) {
	fs := newFS(t)
	big := bytes.Repeat([]byte("x"), MaxFileSize)
	// The 256-sector device has 256-10=246 data blocks; each max file
	// takes 12. Repeated overwrite must not leak blocks.
	for i := 0; i < 50; i++ {
		if err := fs.WriteFile("f", big); err != nil {
			t.Fatalf("overwrite %d: %v", i, err)
		}
	}
	got, err := fs.ReadFile("f")
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("read after overwrites: %v", err)
	}
}

func TestLimits(t *testing.T) {
	fs := newFS(t)
	if err := fs.WriteFile("", []byte("x")); !errors.Is(err, ErrTooLarge) {
		t.Errorf("empty name: got %v", err)
	}
	longName := string(bytes.Repeat([]byte("n"), MaxNameLen+1))
	if err := fs.WriteFile(longName, []byte("x")); !errors.Is(err, ErrTooLarge) {
		t.Errorf("long name: got %v", err)
	}
	if err := fs.WriteFile("big", make([]byte, MaxFileSize+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize file: got %v", err)
	}
	// Exactly max size works.
	if err := fs.WriteFile("max", make([]byte, MaxFileSize)); err != nil {
		t.Errorf("max-size file: %v", err)
	}
	// Zero-length file works.
	if err := fs.WriteFile("empty", nil); err != nil {
		t.Errorf("empty file: %v", err)
	}
	if got, err := fs.ReadFile("empty"); err != nil || len(got) != 0 {
		t.Errorf("empty read = %v, %v", got, err)
	}
}

func TestInodeExhaustion(t *testing.T) {
	dev := hw.NewBlockDevice("disk0", 1024)
	fs, err := Format(dev)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < MaxFiles; i++ {
		name := "f" + string(rune('0'+i/10)) + string(rune('0'+i%10))
		if err := fs.WriteFile(name, []byte("x")); err != nil {
			t.Fatalf("file %d: %v", i, err)
		}
	}
	if err := fs.WriteFile("one-too-many", []byte("x")); !errors.Is(err, ErrFull) {
		t.Errorf("inode exhaustion: got %v", err)
	}
}

func TestBlockExhaustion(t *testing.T) {
	dev := hw.NewBlockDevice("disk0", dataStart+3) // 3 data blocks only
	fs, err := Format(dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("a", make([]byte, 3*hw.SectorSize)); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("b", []byte("x")); !errors.Is(err, ErrFull) {
		t.Errorf("block exhaustion: got %v", err)
	}
	// Deleting frees space again.
	if err := fs.DeleteFile("a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("b", []byte("x")); err != nil {
		t.Errorf("write after free: %v", err)
	}
}

func TestNoIntegrityAgainstTampering(t *testing.T) {
	// The defining weakness: tampering is silent. (VPFS fixes this.)
	fs := newFS(t)
	if err := fs.WriteFile("ledger", []byte("balance=100")); err != nil {
		t.Fatal(err)
	}
	if err := fs.TamperFileData("ledger"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("ledger")
	if err != nil {
		t.Fatalf("legacy FS must NOT detect tampering, got error %v", err)
	}
	if bytes.Equal(got, []byte("balance=100")) {
		t.Error("tamper had no effect")
	}
	if err := fs.TamperFileData("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("tamper missing: got %v", err)
	}
	if err := fs.WriteFile("empty", nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.TamperFileData("empty"); err == nil {
		t.Error("tamper of empty file succeeded")
	}
}

func TestPlaintextOnDevice(t *testing.T) {
	fs := newFS(t)
	secret := []byte("SECRET-MAIL-BODY")
	if err := fs.WriteFile("mail", secret); err != nil {
		t.Fatal(err)
	}
	// Scan raw sectors: the plaintext is right there.
	found := false
	for i := 0; i < fs.Device().NumSectors(); i++ {
		sec, _ := fs.Device().ReadSector(i)
		if bytes.Contains(sec, secret) {
			found = true
			break
		}
	}
	if !found {
		t.Error("legacy FS should store plaintext (confidentiality is VPFS's job)")
	}
}

// Property: write/read round-trips for arbitrary contents within limits.
func TestQuickRoundTrip(t *testing.T) {
	fs := newFS(t)
	f := func(data []byte) bool {
		if len(data) > MaxFileSize {
			data = data[:MaxFileSize]
		}
		if err := fs.WriteFile("q", data); err != nil {
			return false
		}
		got, err := fs.ReadFile("q")
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
