// Package legacy implements an untrusted legacy storage stack: a small
// inode-based file system over a simulated block device. It is the §III-D
// stand-in for "the file system stack, including the storage device layer,
// [which] is one of the most complex OS services ... likely to contain
// exploitable weaknesses."
//
// By design it offers NO integrity or confidentiality: data is stored in
// plaintext, nothing is authenticated, and the underlying block device can
// be tampered with at will. The VPFS trusted wrapper (internal/vpfs) is
// what makes reuse of this stack safe.
package legacy

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"lateral/internal/hw"
)

// File system geometry.
const (
	magic          = "LFS1"
	superSector    = 0
	bitmapSector   = 1
	inodeStart     = 2
	inodesPerSec   = 8 // 64-byte inodes
	inodeSectors   = 8 // 64 inodes total
	dataStart      = inodeStart + inodeSectors
	MaxFiles       = inodesPerSec * inodeSectors
	MaxNameLen     = 31
	blocksPerInode = 12
	// MaxFileSize is the largest file the legacy FS can hold.
	MaxFileSize = blocksPerInode * hw.SectorSize
)

// Errors.
var (
	// ErrNotFormatted is returned when the superblock is missing.
	ErrNotFormatted = errors.New("legacy: device not formatted")

	// ErrNotFound is returned for missing files.
	ErrNotFound = errors.New("legacy: file not found")

	// ErrExists is returned when creating an existing file.
	ErrExists = errors.New("legacy: file exists")

	// ErrTooLarge is returned for files or names over the limits.
	ErrTooLarge = errors.New("legacy: too large")

	// ErrFull is returned when inodes or data blocks run out.
	ErrFull = errors.New("legacy: file system full")
)

// FS is one mounted legacy file system.
type FS struct {
	mu  sync.Mutex
	dev *hw.BlockDevice
}

// Format writes a fresh file system onto the device and mounts it.
func Format(dev *hw.BlockDevice) (*FS, error) {
	if dev.NumSectors() < dataStart+1 {
		return nil, fmt.Errorf("legacy: device too small (%d sectors)", dev.NumSectors())
	}
	super := make([]byte, hw.SectorSize)
	copy(super, magic)
	if err := dev.WriteSector(superSector, super); err != nil {
		return nil, err
	}
	if err := dev.WriteSector(bitmapSector, make([]byte, hw.SectorSize)); err != nil {
		return nil, err
	}
	for i := 0; i < inodeSectors; i++ {
		if err := dev.WriteSector(inodeStart+i, make([]byte, hw.SectorSize)); err != nil {
			return nil, err
		}
	}
	return &FS{dev: dev}, nil
}

// Mount opens an already formatted device.
func Mount(dev *hw.BlockDevice) (*FS, error) {
	super, err := dev.ReadSector(superSector)
	if err != nil {
		return nil, err
	}
	if !bytes.HasPrefix(super, []byte(magic)) {
		return nil, ErrNotFormatted
	}
	return &FS{dev: dev}, nil
}

// Device returns the backing device (the attacker's tamper target).
func (f *FS) Device() *hw.BlockDevice { return f.dev }

// inode is the on-disk file record.
type inode struct {
	used   bool
	name   string
	size   uint32
	blocks [blocksPerInode]uint16
}

func (in *inode) encode() []byte {
	out := make([]byte, 64)
	if in.used {
		out[0] = 1
	}
	copy(out[1:1+MaxNameLen], in.name)
	binary.BigEndian.PutUint32(out[32:36], in.size)
	for i, b := range in.blocks {
		binary.BigEndian.PutUint16(out[36+2*i:], b)
	}
	return out
}

func decodeInode(b []byte) inode {
	var in inode
	in.used = b[0] == 1
	in.name = string(bytes.TrimRight(b[1:1+MaxNameLen], "\x00"))
	in.size = binary.BigEndian.Uint32(b[32:36])
	for i := range in.blocks {
		in.blocks[i] = binary.BigEndian.Uint16(b[36+2*i:])
	}
	return in
}

// readInode loads inode slot i. Caller holds f.mu.
func (f *FS) readInode(i int) (inode, error) {
	sec, err := f.dev.ReadSector(inodeStart + i/inodesPerSec)
	if err != nil {
		return inode{}, err
	}
	off := (i % inodesPerSec) * 64
	return decodeInode(sec[off : off+64]), nil
}

// writeInode stores inode slot i. Caller holds f.mu.
func (f *FS) writeInode(i int, in inode) error {
	secIdx := inodeStart + i/inodesPerSec
	sec, err := f.dev.ReadSector(secIdx)
	if err != nil {
		return err
	}
	off := (i % inodesPerSec) * 64
	copy(sec[off:off+64], in.encode())
	return f.dev.WriteSector(secIdx, sec)
}

// findInode returns (slot, inode) for name, or slot -1. Caller holds f.mu.
func (f *FS) findInode(name string) (int, inode, error) {
	for i := 0; i < MaxFiles; i++ {
		in, err := f.readInode(i)
		if err != nil {
			return -1, inode{}, err
		}
		if in.used && in.name == name {
			return i, in, nil
		}
	}
	return -1, inode{}, nil
}

// allocBlock finds and marks a free data block. Caller holds f.mu.
func (f *FS) allocBlock() (uint16, error) {
	bm, err := f.dev.ReadSector(bitmapSector)
	if err != nil {
		return 0, err
	}
	limit := f.dev.NumSectors() - dataStart
	for b := 0; b < limit && b < hw.SectorSize*8; b++ {
		if bm[b/8]&(1<<(b%8)) == 0 {
			bm[b/8] |= 1 << (b % 8)
			if err := f.dev.WriteSector(bitmapSector, bm); err != nil {
				return 0, err
			}
			return uint16(b), nil
		}
	}
	return 0, ErrFull
}

// freeBlocks clears bitmap bits. Caller holds f.mu.
func (f *FS) freeBlocks(blocks []uint16) error {
	bm, err := f.dev.ReadSector(bitmapSector)
	if err != nil {
		return err
	}
	for _, b := range blocks {
		bm[b/8] &^= 1 << (b % 8)
	}
	return f.dev.WriteSector(bitmapSector, bm)
}

// WriteFile creates or replaces a file.
func (f *FS) WriteFile(name string, data []byte) error {
	if len(name) == 0 || len(name) > MaxNameLen {
		return fmt.Errorf("name %q: %w", name, ErrTooLarge)
	}
	// Names are stored NUL-padded on disk, so embedded NULs would decode
	// to a different name (found by FuzzLegacyFSNames).
	if bytes.IndexByte([]byte(name), 0) >= 0 {
		return fmt.Errorf("name %q contains NUL: %w", name, ErrTooLarge)
	}
	if len(data) > MaxFileSize {
		return fmt.Errorf("file %q is %d bytes (max %d): %w", name, len(data), MaxFileSize, ErrTooLarge)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	slot, old, err := f.findInode(name)
	if err != nil {
		return err
	}
	if slot >= 0 {
		// Replace: free old blocks first.
		n := int(old.size+hw.SectorSize-1) / hw.SectorSize
		if err := f.freeBlocks(old.blocks[:n]); err != nil {
			return err
		}
	} else {
		for i := 0; i < MaxFiles; i++ {
			in, err := f.readInode(i)
			if err != nil {
				return err
			}
			if !in.used {
				slot = i
				break
			}
		}
		if slot < 0 {
			return fmt.Errorf("no free inode for %q: %w", name, ErrFull)
		}
	}
	in := inode{used: true, name: name, size: uint32(len(data))}
	nBlocks := (len(data) + hw.SectorSize - 1) / hw.SectorSize
	for i := 0; i < nBlocks; i++ {
		b, err := f.allocBlock()
		if err != nil {
			return err
		}
		in.blocks[i] = b
		chunk := data[i*hw.SectorSize:]
		if len(chunk) > hw.SectorSize {
			chunk = chunk[:hw.SectorSize]
		}
		if err := f.dev.WriteSector(dataStart+int(b), chunk); err != nil {
			return err
		}
	}
	return f.writeInode(slot, in)
}

// ReadFile returns a file's contents. No integrity checking whatsoever:
// whatever is on the (tamperable) device is what you get.
func (f *FS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	slot, in, err := f.findInode(name)
	if err != nil {
		return nil, err
	}
	if slot < 0 {
		return nil, fmt.Errorf("%q: %w", name, ErrNotFound)
	}
	out := make([]byte, 0, in.size)
	remaining := int(in.size)
	for i := 0; remaining > 0; i++ {
		sec, err := f.dev.ReadSector(dataStart + int(in.blocks[i]))
		if err != nil {
			return nil, err
		}
		take := remaining
		if take > hw.SectorSize {
			take = hw.SectorSize
		}
		out = append(out, sec[:take]...)
		remaining -= take
	}
	return out, nil
}

// DeleteFile removes a file.
func (f *FS) DeleteFile(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	slot, in, err := f.findInode(name)
	if err != nil {
		return err
	}
	if slot < 0 {
		return fmt.Errorf("%q: %w", name, ErrNotFound)
	}
	n := int(in.size+hw.SectorSize-1) / hw.SectorSize
	if err := f.freeBlocks(in.blocks[:n]); err != nil {
		return err
	}
	return f.writeInode(slot, inode{})
}

// List returns all file names, sorted.
func (f *FS) List() ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []string
	for i := 0; i < MaxFiles; i++ {
		in, err := f.readInode(i)
		if err != nil {
			return nil, err
		}
		if in.used {
			out = append(out, in.name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// TamperFileData flips bits inside a file's first data sector by driving
// the block device directly — the storage attacker of experiment E7.
func (f *FS) TamperFileData(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	slot, in, err := f.findInode(name)
	if err != nil {
		return err
	}
	if slot < 0 {
		return fmt.Errorf("%q: %w", name, ErrNotFound)
	}
	if in.size == 0 {
		return fmt.Errorf("%q is empty", name)
	}
	return f.dev.TamperSector(dataStart+int(in.blocks[0]), func(sec []byte) {
		sec[0] ^= 0xff
	})
}
