package simtest

import "fmt"

// Minimize shrinks a failing configuration: it greedily drops schedule
// entries and halves the operation count, keeping each reduction only if
// the run still violates an invariant. Because runs are deterministic,
// "still fails" is an exact re-execution, not a probabilistic retry — the
// ddmin property simulation testing buys for free.
//
// It returns the smallest failing config found and its result. The input
// config must already fail; if it does not, Minimize returns an error.
func Minimize(cfg ExploreConfig) (ExploreConfig, *Result, error) {
	res, err := Explore(cfg)
	if err != nil {
		return cfg, nil, err
	}
	if !res.Failed() {
		return cfg, res, fmt.Errorf("simtest: Minimize needs a failing config (seed %d passed)", cfg.Seed)
	}

	// Phase 1: drop schedule entries one at a time, rescanning after each
	// successful removal until a fixpoint.
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cfg.Schedule); i++ {
			trial := cfg
			trial.Schedule = make([]Schedule, 0, len(cfg.Schedule)-1)
			trial.Schedule = append(trial.Schedule, cfg.Schedule[:i]...)
			trial.Schedule = append(trial.Schedule, cfg.Schedule[i+1:]...)
			r, err := Explore(trial)
			if err != nil {
				return cfg, res, err
			}
			if r.Failed() {
				cfg, res = trial, r
				changed = true
				break
			}
		}
	}

	// Phase 2: shrink the operation count by binary search — the smallest
	// Ops that still fails.
	lo, hi := 1, cfg.Ops
	for lo < hi {
		mid := (lo + hi) / 2
		trial := cfg
		trial.Ops = mid
		r, err := Explore(trial)
		if err != nil {
			return cfg, res, err
		}
		if r.Failed() {
			hi = mid
			cfg, res = trial, r
		} else {
			lo = mid + 1
		}
	}
	return cfg, res, nil
}
