package simtest

import (
	"strings"
	"testing"

	"lateral/internal/journal"
)

// TestShardSoak is the sharded-fabric soak: across many seeds, the shard
// schedule splits and merges cells under crashes, duplication,
// congestion, and clock skew while the operation mix drives single
// readings and batch frames through the router — and every invariant,
// including the ninth (each reading routed where the current epoch's
// shard map assigns it, none double-counted across a rebalance), must
// hold on every seed. `make shard-soak` runs this over 500 seeds
// (-simtest.soak); plain `go test` covers a smaller batch.
func TestShardSoak(t *testing.T) {
	seeds := 25
	if *soakFlag > 0 {
		seeds = *soakFlag
	} else if testing.Short() {
		seeds = 5
	}
	for seed := 1; seed <= seeds; seed++ {
		res, err := Explore(ExploreConfig{
			Seed: uint64(seed), Ops: 30, Replicas: 3,
			Sharded:  true,
			Schedule: ShardSchedule(3),
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Failed() {
			t.Fatalf("seed %d violated invariants (replay with -simtest.seed=%d):\n%s",
				seed, seed, res.TraceBytes())
		}
	}
}

// TestShardScheduleTransitions pins the schedule's effect on one seed:
// splits and merges land as shard-map epochs, refused transitions are
// no-ops, traffic flows across every rebalance, and the journal's
// replayed placement history shows each committed transition.
func TestShardScheduleTransitions(t *testing.T) {
	h, err := NewHarness(HarnessConfig{Replicas: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Seed fabric: two cells, epochs 1 and 2 from the seed joins.
	if got := h.Router.Epoch(); got != 2 {
		t.Fatalf("fresh fabric at shard epoch %d, want 2", got)
	}
	if err := h.CallShardWork("op-a", "tenant-1", "tenant-1/meter-01", 0); err != nil {
		t.Fatal(err)
	}
	h.Apply(Fault{Kind: FaultShardSplit, Target: CellName(3)})
	if got := h.Router.Epoch(); got != 3 {
		t.Fatalf("after split: shard epoch %d, want 3", got)
	}
	// Refused transitions: duplicate split, unmapped merge — epoch frozen.
	h.Apply(Fault{Kind: FaultShardSplit, Target: CellName(3)})
	h.Apply(Fault{Kind: FaultShardMerge, Target: CellName(9)})
	if got := h.Router.Epoch(); got != 3 {
		t.Fatalf("refused transitions moved shard epoch to %d", got)
	}
	h.Apply(Fault{Kind: FaultShardMerge, Target: CellName(1)})
	if got := h.Router.Epoch(); got != 4 {
		t.Fatalf("after merge: shard epoch %d, want 4", got)
	}
	if members := h.Router.Members(); len(members) != 2 ||
		members[0] != CellName(2) || members[1] != CellName(3) {
		t.Fatalf("fabric members after rebalance = %v", members)
	}
	// Traffic still lands correctly across the rebalanced map, batched and
	// single, and the placement invariant stays clean.
	if err := h.CallShardBatch("op-b", "tenant-2", "tenant-2/meter-05", 4, 0); err != nil {
		t.Fatal(err)
	}
	if err := h.CallShardWork("op-c", "tenant-3", "tenant-3/meter-09", 0); err != nil {
		t.Fatal(err)
	}
	if v := h.CheckAll(); len(v) != 0 {
		t.Fatalf("invariant violations after rebalance: %v", v)
	}
	// The journal replays the placement history: 2 seed joins, 1 split
	// (join), 1 merge (leave) — refused transitions never journaled.
	if err := h.Journal.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	trusted, _ := h.Counter.Value()
	audit, err := journal.Replay(h.Journal.Export(), h.Audit.pub, trusted)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(audit.Shards) != 4 {
		t.Fatalf("replayed %d shard records, want 4", len(audit.Shards))
	}
	final := audit.Shards[len(audit.Shards)-1]
	if final.Action != "leave" || final.Shard != CellName(1) || final.Epoch != 4 {
		t.Fatalf("final placement record = %+v", final)
	}
	if len(final.Members) != 2 || final.Members[0] != CellName(2) || final.Members[1] != CellName(3) {
		t.Fatalf("replayed members = %v", final.Members)
	}
}

// TestShardCheckerCatchesMisrouting is the mutation smoke test for the
// ninth invariant: a dispatch to the wrong cell and a double-dispatched
// reading must each be flagged.
func TestShardCheckerCatchesMisrouting(t *testing.T) {
	ck := NewShardChecker(0)
	ck.MarkSplit("cell-1")
	ck.MarkSplit("cell-2")
	ck.MarkSplit("cell-3")
	key := "tenant-1/meter-01"
	// Route a reading deliberately to a non-owner cell.
	wrong := "cell-1"
	for _, c := range []string{"cell-1", "cell-2", "cell-3"} {
		if ck.scratch.Owner(key) != c {
			wrong = c
			break
		}
	}
	ck.RecordDispatch("r-1", key, wrong)
	v := ck.Check()
	if len(v) != 1 || !strings.Contains(v[0].Detail, "routed to") {
		t.Fatalf("misrouting not flagged: %v", v)
	}
	// Double-count: the same reading dispatched again, even to the owner.
	ck2 := NewShardChecker(0)
	ck2.MarkSplit("cell-1")
	ck2.RecordDispatch("r-2", key, "cell-1")
	ck2.RecordDispatch("r-2", key, "cell-1")
	v = ck2.Check()
	if len(v) != 1 || !strings.Contains(v[0].Detail, "double-counted") {
		t.Fatalf("double-count not flagged: %v", v)
	}
}

// TestShardFaultCodecRoundTrips pins the DSL: shard-split/shard-merge
// encode, decode, and validate like every other fault verb.
func TestShardFaultCodecRoundTrips(t *testing.T) {
	sched := ShardSchedule(3)
	if err := Validate(sched); err != nil {
		t.Fatalf("ShardSchedule does not validate: %v", err)
	}
	text := EncodeSchedule(sched)
	for _, verb := range []string{"shard-split cell-3", "shard-merge cell-1"} {
		if !strings.Contains(text, verb) {
			t.Fatalf("encoded schedule missing %q:\n%s", verb, text)
		}
	}
	dec, err := DecodeSchedule("@5ms shard-split cell-7\n@9ms shard-merge cell-2\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 2 || dec[0].Fault.Kind != FaultShardSplit || dec[1].Fault.Kind != FaultShardMerge {
		t.Fatalf("decoded %+v", dec)
	}
	if dec[0].Fault.Target != "cell-7" || dec[1].Fault.Target != "cell-2" {
		t.Fatalf("decoded targets %+v", dec)
	}
	for _, bad := range []string{
		"@5ms shard-split\n",            // missing target
		"@5ms shard-merge a b\n",        // too many args
		"@5ms shard-split bad name#1\n", // invalid characters
	} {
		if _, err := DecodeSchedule(bad); err == nil {
			t.Fatalf("decoder accepted %q", bad)
		}
	}
}
