package simtest

import (
	"fmt"
	"sort"
	"sync"

	"lateral/internal/shard"
)

// ---- Invariant 9: shard placement is enforced ------------------------

// ShardChecker verifies the sharded-routing contract: every reading lands
// on the shard the current epoch's shard map assigns its key, and no
// reading is dispatched twice across a rebalance. Independence comes from
// recomputation: the checker maintains its own shadow member list —
// updated only by the fault applications the harness performs — and
// rebuilds a from-scratch shard.Map on every change, while the live
// router reconciles its ring incrementally. A router whose incremental
// reconcile drifts from the pure function of the member set, routes
// through a stale map, or double-dispatches a reading during a
// split/merge is caught at the next record. Findings are sticky: a
// transient breach still fails the run at quiesce.
type ShardChecker struct {
	vnodes int

	mu      sync.Mutex
	members []string
	scratch *shard.Map
	counts  map[string]int // reading id -> dispatch count
	viols   []Violation
}

// NewShardChecker builds the checker; vnodes must match the live router's
// ring density (<= 0 selects the shared default).
func NewShardChecker(vnodes int) *ShardChecker {
	return &ShardChecker{vnodes: vnodes, counts: make(map[string]int)}
}

// MarkSplit records that a shard cell joined the fabric (the harness
// calls this only after the router committed the join).
func (c *ShardChecker) MarkSplit(cell string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.members = append(c.members, cell)
	c.rebuild()
}

// MarkMerge records that a shard cell left the fabric.
func (c *ShardChecker) MarkMerge(cell string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.members[:0]
	for _, m := range c.members {
		if m != cell {
			kept = append(kept, m)
		}
	}
	c.members = kept
	c.rebuild()
}

// rebuild recomputes the shadow map from scratch (caller holds mu). Sort
// first: shard.Map is order-independent by contract, sorting here keeps
// the shadow's own build history out of the equation entirely.
func (c *ShardChecker) rebuild() {
	members := append([]string(nil), c.members...)
	sort.Strings(members)
	c.scratch = shard.NewMap(c.vnodes, members...)
}

// RecordDispatch notes one reading arriving at a shard cell's backend.
// id must be unique per reading across the run.
func (c *ShardChecker) RecordDispatch(id, key, cell string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts[id]++
	if n := c.counts[id]; n > 1 {
		c.viols = append(c.viols, Violation{
			Invariant: c.Name(),
			Detail:    fmt.Sprintf("reading %s dispatched %d times (double-counted across rebalance)", id, n),
		})
	}
	if c.scratch == nil {
		c.viols = append(c.viols, Violation{
			Invariant: c.Name(),
			Detail:    fmt.Sprintf("reading %s dispatched to %s with no shards mapped", id, cell),
		})
		return
	}
	if want := c.scratch.Owner(key); cell != want {
		c.viols = append(c.viols, Violation{
			Invariant: c.Name(),
			Detail: fmt.Sprintf("reading %s (key %s) routed to %s, current shard map assigns %s",
				id, key, cell, want),
		})
	}
}

// Name implements Checker.
func (c *ShardChecker) Name() string { return "shard-placement" }

// Check implements Checker.
func (c *ShardChecker) Check() []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Violation(nil), c.viols...)
}
