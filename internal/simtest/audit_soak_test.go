package simtest

import (
	"testing"
	"time"
)

// TestAuditTamperSoak is the black-box detection soak: across many seeds,
// a journal-tamper fault flips one byte in an early journal entry (the
// index varies with the seed but always lands — admission alone records
// nine entries before the first op), and the auditor invariant then
// demands that EVERY subsequent replay fails. A single seed where a
// tampered journal replays clean is an invariant violation and fails the
// test with the replay recipe. `make audit-soak` runs this over 500 seeds
// (-simtest.soak); plain `go test` covers a smaller batch.
func TestAuditTamperSoak(t *testing.T) {
	seeds := 25
	if *soakFlag > 0 {
		seeds = *soakFlag
	} else if testing.Short() {
		seeds = 5
	}
	for seed := 1; seed <= seeds; seed++ {
		sched := append([]Schedule{
			// Early hit: mutate an admission-era entry while ops still run.
			{At: time.Millisecond, Fault: Fault{Kind: FaultJournalTamper, N: seed % 9}},
		}, DefaultSchedule(3)...)
		res, err := Explore(ExploreConfig{Seed: uint64(seed), Ops: 24, Replicas: 3, Schedule: sched})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Failed() {
			t.Fatalf("seed %d: auditor missed tampering (replay with -simtest.seed=%d):\n%s",
				seed, seed, res.TraceBytes())
		}
	}
}
