package simtest

import (
	"strings"
	"testing"
)

// TestPolicyExfilSoak is the chain-aware policy soak: across many seeds,
// the explorer's operation mix includes mosaic attacks (read identifying
// data, then egress it) under the full mixed-fault schedule — crashes,
// partitions, delays, duplication, tampering, skew. The no-tainted-egress
// invariant must hold on every seed: no exfil ever completes, and no
// tainted chain ever reaches an egress handler, whatever the wire does.
// The test also demands the attack actually fired: at least one exfil was
// denied across the batch, so a vacuously green run (policy never
// exercised) fails loudly instead of passing silently. `make policy-soak`
// runs this over 500 seeds (-simtest.soak); plain `go test` covers a
// smaller batch.
func TestPolicyExfilSoak(t *testing.T) {
	seeds := 25
	if *soakFlag > 0 {
		seeds = *soakFlag
	} else if testing.Short() {
		seeds = 5
	}
	denied := 0
	for seed := 1; seed <= seeds; seed++ {
		res, err := Explore(ExploreConfig{Seed: uint64(seed), Ops: 24, Replicas: 3, Schedule: DefaultSchedule(3)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Failed() {
			t.Fatalf("seed %d: policy invariant violated (replay with -simtest.seed=%d):\n%s",
				seed, seed, res.TraceBytes())
		}
		for _, line := range res.Trace {
			if strings.Contains(line, "exfil") && strings.HasSuffix(line, "-> denied") {
				denied++
			}
		}
	}
	if denied == 0 {
		t.Fatalf("no exfil op was denied across %d seeds — the soak proved nothing", seeds)
	}
}
