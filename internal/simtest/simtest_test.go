package simtest

import (
	"errors"
	"flag"
	"testing"
	"time"

	"lateral/internal/core"
)

var (
	seedFlag = flag.Uint64("simtest.seed", 0, "replay one explorer seed verbosely and exit")
	soakFlag = flag.Int("simtest.soak", 0, "explore this many extra seeds (sim-soak target)")
)

// TestClockTimers pins the virtual clock's contract: timers fire in
// deadline order, the clock reads each timer's own deadline when it
// fires, stop disarms, and non-positive delays fire immediately.
func TestClockTimers(t *testing.T) {
	clk := NewClock(0)
	c1, _ := clk.After(10 * time.Millisecond)
	c2, _ := clk.After(5 * time.Millisecond)
	c3, stop := clk.After(7 * time.Millisecond)
	if got := clk.Pending(); got != 3 {
		t.Fatalf("pending = %d, want 3", got)
	}
	if !stop() {
		t.Fatal("stop on armed timer reported not-pending")
	}
	clk.Advance(6 * time.Millisecond)
	select {
	case at := <-c2:
		if want := Epoch.Add(5 * time.Millisecond); !at.Equal(want) {
			t.Fatalf("timer fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("5ms timer did not fire after 6ms advance")
	}
	select {
	case <-c1:
		t.Fatal("10ms timer fired after only 6ms")
	case <-c3:
		t.Fatal("stopped timer fired")
	default:
	}
	clk.Advance(10 * time.Millisecond)
	if _, ok := <-c1; !ok {
		t.Fatal("10ms timer channel broken")
	}
	now, _ := clk.After(0)
	select {
	case <-now:
	default:
		t.Fatal("zero-delay timer did not fire immediately")
	}
	if got, want := clk.Elapsed(), 16*time.Millisecond; got != want {
		t.Fatalf("elapsed = %v, want %v", got, want)
	}
}

// TestScheduleRoundtrip pins the codec: encode → decode → encode is the
// identity for every fault kind.
func TestScheduleRoundtrip(t *testing.T) {
	sched := DefaultSchedule(3)
	sched = append(sched, EpochSchedule(3)...)
	sched = append(sched,
		Schedule{At: 0, Fault: Fault{Kind: FaultPartition, Target: "lb-svc-1", Peer: "svc-1"}},
		Schedule{At: time.Second, Fault: Fault{Kind: FaultHeal}},
	)
	if err := Validate(sched); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	enc := EncodeSchedule(sched)
	dec, err := DecodeSchedule(enc)
	if err != nil {
		t.Fatalf("DecodeSchedule: %v\n%s", err, enc)
	}
	if got := EncodeSchedule(dec); got != enc {
		t.Fatalf("roundtrip mismatch:\n--- first\n%s--- second\n%s", enc, got)
	}
}

// TestScheduleDecodeRejects pins the decoder's bounds on hostile input.
func TestScheduleDecodeRejects(t *testing.T) {
	bad := []string{
		"crash svc-1",               // missing @offset
		"@5ms explode svc-1",        // unknown fault
		"@5ms crash",                // missing arg
		"@-5ms crash svc-1",         // negative offset
		"@500h crash svc-1",         // offset beyond bound
		"@5ms partition a",          // missing peer
		"@5ms delay 1 200 1ms 1",    // pct > 100
		"@5ms dup svc-1 9999999999", // count beyond bound
		"@5ms crash sv\x01c",        // control char in name
	}
	for _, text := range bad {
		if _, err := DecodeSchedule(text); err == nil {
			t.Errorf("DecodeSchedule(%q) accepted bad input", text)
		}
	}
	ok := "# comment\n\n@5ms crash svc-1\n@6ms heal\n@7ms tamper\n"
	if _, err := DecodeSchedule(ok); err != nil {
		t.Errorf("DecodeSchedule(%q): %v", ok, err)
	}
}

// TestHarnessBasics drives the harness directly: a budgeted call
// completes, a wedged handler is abandoned at its deadline with the slot
// preserved, and all four invariants hold.
func TestHarnessBasics(t *testing.T) {
	h, err := NewHarness(HarnessConfig{Replicas: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.CallWork("op-1", "key-a", 10*time.Millisecond); err != nil {
		t.Fatalf("CallWork: %v", err)
	}
	if err := h.CallWork("op-2", "key-b", 0); err != nil {
		t.Fatalf("unbounded CallWork: %v", err)
	}
	err = h.CallStall("op-3", "key-c", 5*time.Millisecond)
	if !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("CallStall = %v, want ErrDeadline", err)
	}
	if err := h.CallWork("op-4", "key-d", 10*time.Millisecond); err != nil {
		t.Fatalf("CallWork after stall: %v", err)
	}
	if v := h.CheckAll(); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}
	started, ok, tmo, _, _, _, inflight := h.Led.Counts()
	if started != 4 || ok != 3 || tmo != 1 || inflight != 0 {
		t.Fatalf("ledger = started %d ok %d tmo %d inflight %d, want 4/3/1/0",
			started, ok, tmo, inflight)
	}
}

// TestExploreReplayIsByteIdentical is the determinism acceptance
// criterion: the same seed and schedule reproduce a byte-identical event
// trace across two independent runs.
func TestExploreReplayIsByteIdentical(t *testing.T) {
	cfg := ExploreConfig{Seed: 42, Ops: 30, Replicas: 3, Schedule: DefaultSchedule(3)}
	a, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Failed() {
		t.Fatalf("seed 42 violated invariants:\n%s", a.TraceBytes())
	}
	if a.TraceBytes() != b.TraceBytes() {
		t.Fatalf("trace not byte-identical across runs:\n--- run 1\n%s--- run 2\n%s",
			a.TraceBytes(), b.TraceBytes())
	}
}

// TestExploreSeeds sweeps a batch of random seeds (more under
// -simtest.soak) over the mixed-fault schedule; every invariant must hold
// on every seed. With -simtest.seed=N only that seed runs and its full
// trace is printed — the replay workflow for a failure someone found in
// soak or CI.
func TestExploreSeeds(t *testing.T) {
	if *seedFlag != 0 {
		res, err := Explore(ExploreConfig{Seed: *seedFlag, Ops: 30, Replicas: 3, Schedule: DefaultSchedule(3)})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("replay of seed %d:\n%s", *seedFlag, res.TraceBytes())
		if res.Failed() {
			t.Fatalf("seed %d: %d invariant violations", *seedFlag, len(res.Violations))
		}
		return
	}
	seeds := 12
	if *soakFlag > 0 {
		seeds = *soakFlag
	} else if testing.Short() {
		seeds = 4
	}
	for seed := 1; seed <= seeds; seed++ {
		res, err := Explore(ExploreConfig{Seed: uint64(seed), Ops: 30, Replicas: 3, Schedule: DefaultSchedule(3)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Failed() {
			t.Fatalf("seed %d violated invariants (replay with -simtest.seed=%d):\n%s",
				seed, seed, res.TraceBytes())
		}
	}
}

// TestMutationIsCaught is the mutation smoke test: with the deliberate
// serialization bug enabled, the serial checker must flag a violation
// within 1000 explored schedules — in practice the very first seed whose
// operations land two calls on one replica.
func TestMutationIsCaught(t *testing.T) {
	caught := 0
	for seed := 1; seed <= 1000; seed++ {
		res, err := Explore(ExploreConfig{Seed: uint64(seed), Ops: 12, Replicas: 2, Buggy: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Failed() {
			caught = seed
			for _, v := range res.Violations {
				if v.Invariant != "handler-serialization" {
					t.Fatalf("seed %d: unexpected invariant flagged: %v", seed, v)
				}
			}
			break
		}
	}
	if caught == 0 {
		t.Fatal("serialization mutation survived 1000 explored schedules")
	}
	t.Logf("mutation caught at seed %d", caught)
}

// TestMinimizeShrinksFailingSchedule pins the minimizer: a failing config
// padded with irrelevant faults shrinks to a smaller config that still
// fails the same invariant.
func TestMinimizeShrinksFailingSchedule(t *testing.T) {
	cfg := ExploreConfig{Seed: 3, Ops: 16, Replicas: 2, Buggy: true, Schedule: DefaultSchedule(2)}
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Skip("seed 3 does not fail with this schedule; mutation test covers detection")
	}
	min, minRes, err := Minimize(cfg)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if !minRes.Failed() {
		t.Fatal("minimized config does not fail")
	}
	if len(min.Schedule) > len(cfg.Schedule) || min.Ops > cfg.Ops {
		t.Fatalf("minimize grew the config: %d faults / %d ops", len(min.Schedule), min.Ops)
	}
	t.Logf("minimized: %d→%d faults, %d→%d ops", len(cfg.Schedule), len(min.Schedule), cfg.Ops, min.Ops)
}
