package simtest

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lateral/internal/cluster"
	"lateral/internal/core"
)

// Violation is one invariant breach, with enough detail to act on.
type Violation struct {
	Invariant string
	Detail    string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Checker is run after every simulated step. Implementations accumulate
// state through hooks the harness wires in and report breaches here.
// Check must be idempotent: the explorer calls it once per step and once
// at quiesce.
type Checker interface {
	Name() string
	Check() []Violation
}

// ---- Invariant 1: handler serialization ------------------------------

// SerialGuard instruments one component's handler body: Enter/Exit around
// the body record the peak number of concurrent executions. The system
// contract says that peak is 1, always — the watchdog abandons callers,
// never serialization.
type SerialGuard struct {
	name   string
	inside atomic.Int32
	peak   atomic.Int32
}

// Enter marks the handler body started and records concurrency.
func (g *SerialGuard) Enter() {
	in := g.inside.Add(1)
	for {
		p := g.peak.Load()
		if in <= p || g.peak.CompareAndSwap(p, in) {
			return
		}
	}
}

// Exit marks the handler body finished.
func (g *SerialGuard) Exit() { g.inside.Add(-1) }

// Peak returns the highest concurrency observed.
func (g *SerialGuard) Peak() int { return int(g.peak.Load()) }

// SerialChecker verifies per-component handler serialization: no guard
// ever observed two concurrent Handle bodies on one node.
type SerialChecker struct {
	mu     sync.Mutex
	guards []*SerialGuard
}

// NewSerialChecker builds an empty serialization checker.
func NewSerialChecker() *SerialChecker { return &SerialChecker{} }

// Guard registers and returns a guard for the named component.
func (c *SerialChecker) Guard(name string) *SerialGuard {
	g := &SerialGuard{name: name}
	c.mu.Lock()
	c.guards = append(c.guards, g)
	c.mu.Unlock()
	return g
}

// Name implements Checker.
func (c *SerialChecker) Name() string { return "handler-serialization" }

// Check implements Checker.
func (c *SerialChecker) Check() []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Violation
	for _, g := range c.guards {
		if p := g.Peak(); p > 1 {
			out = append(out, Violation{
				Invariant: c.Name(),
				Detail:    fmt.Sprintf("component %s observed %d concurrent Handle bodies", g.name, p),
			})
		}
	}
	return out
}

// ---- Invariant 2: deadline-budget monotonicity -----------------------

// BudgetChecker verifies that budgets only tighten down the call tree:
// for every (parent, child) deadline pair recorded under one operation
// id, the child's envelope deadline is never after the parent's. Harness
// components call RecordParent with their own envelope deadline before
// calling downstream, and downstream components call RecordChild with
// what arrived.
type BudgetChecker struct {
	mu       sync.Mutex
	parents  map[string]time.Time
	children map[string]time.Time
}

// NewBudgetChecker builds an empty budget checker.
func NewBudgetChecker() *BudgetChecker {
	return &BudgetChecker{
		parents:  make(map[string]time.Time),
		children: make(map[string]time.Time),
	}
}

// RecordParent notes the budget a calling handler was running under.
func (c *BudgetChecker) RecordParent(id string, deadline time.Time) {
	c.mu.Lock()
	c.parents[id] = deadline
	c.mu.Unlock()
}

// RecordChild notes the budget the downstream handler received.
func (c *BudgetChecker) RecordChild(id string, deadline time.Time) {
	c.mu.Lock()
	c.children[id] = deadline
	c.mu.Unlock()
}

// Name implements Checker.
func (c *BudgetChecker) Name() string { return "deadline-monotonicity" }

// Check implements Checker.
func (c *BudgetChecker) Check() []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.children))
	for id := range c.children {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var out []Violation
	for _, id := range ids {
		child := c.children[id]
		parent, ok := c.parents[id]
		if !ok {
			continue
		}
		// A bounded parent must never hand a child a looser (or absent)
		// budget; an unbounded parent may hand out anything.
		if parent.IsZero() {
			continue
		}
		if child.IsZero() || child.After(parent) {
			out = append(out, Violation{
				Invariant: c.Name(),
				Detail: fmt.Sprintf("op %s: child deadline %v extends parent %v",
					id, child, parent),
			})
		}
	}
	return out
}

// ---- Invariant 3: quarantine is absorbing ----------------------------

// AbsorbChecker verifies that a named absorbing state is never left: once
// the snapshot function reports an entity absorbed, every later snapshot
// must agree. The harness wires it to the pool's replica states with
// absorbed = quarantined.
type AbsorbChecker struct {
	state    string
	snapshot func() map[string]bool
	mu       sync.Mutex
	absorbed map[string]bool
	escaped  map[string]bool
}

// NewAbsorbChecker builds a checker over the snapshot function.
func NewAbsorbChecker(state string, snapshot func() map[string]bool) *AbsorbChecker {
	return &AbsorbChecker{
		state:    state,
		snapshot: snapshot,
		absorbed: make(map[string]bool),
		escaped:  make(map[string]bool),
	}
}

// Name implements Checker.
func (c *AbsorbChecker) Name() string { return c.state + "-is-absorbing" }

// Check implements Checker.
func (c *AbsorbChecker) Check() []Violation {
	cur := c.snapshot()
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, in := range cur {
		if in {
			c.absorbed[name] = true
		} else if c.absorbed[name] {
			c.escaped[name] = true
		}
	}
	names := make([]string, 0, len(c.escaped))
	for name := range c.escaped {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Violation
	for _, name := range names {
		out = append(out, Violation{
			Invariant: c.Name(),
			Detail:    fmt.Sprintf("%s left the absorbing %s state", name, c.state),
		})
	}
	return out
}

// ---- Invariant 4: pipelined calls complete exactly once --------------

// PipelineChecker verifies the distributed stubs' correlation-ID
// accounting: every call a stub issued resolved exactly once — issued =
// completed + failed — and no caller is still parked awaiting a reply at
// a quiesce point. Orphan replies (duplicates, unknown IDs, replies
// landing after their caller unwound) are dropped and counted, never
// delivered, so a replaying or reordering wire can raise the orphan
// counter but can never double-complete or leak a call. Harness
// operations are synchronous, so the books must balance at every check.
type PipelineChecker struct {
	snapshot func() []cluster.ReplicaInfo
}

// NewPipelineChecker builds the checker over a fleet snapshot function
// (typically pool.Replicas).
func NewPipelineChecker(snapshot func() []cluster.ReplicaInfo) *PipelineChecker {
	return &PipelineChecker{snapshot: snapshot}
}

// Name implements Checker.
func (c *PipelineChecker) Name() string { return "pipeline-exactly-once" }

// Check implements Checker.
func (c *PipelineChecker) Check() []Violation {
	var out []Violation
	for _, r := range c.snapshot() {
		st := r.Stub
		if st.Inflight != 0 {
			out = append(out, Violation{
				Invariant: c.Name(),
				Detail: fmt.Sprintf("replica %s: %d calls still awaiting replies at quiesce",
					r.Name, st.Inflight),
			})
		}
		if st.Issued != st.Completed+st.Failed {
			out = append(out, Violation{
				Invariant: c.Name(),
				Detail: fmt.Sprintf("replica %s: issued %d != completed %d + failed %d",
					r.Name, st.Issued, st.Completed, st.Failed),
			})
		}
	}
	return out
}

// ---- Invariant 5: telemetry conservation -----------------------------

// Ledger accounts every operation the driver starts against exactly one
// outcome bucket. Conservation is the bucket equation: nothing the driver
// submitted may vanish or double-complete.
type Ledger struct {
	mu       sync.Mutex
	started  int64
	inflight int64
	ok       int64
	timeouts int64
	cancels  int64
	sheds    int64
	failed   int64
}

// NewLedger builds an empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

// Start accounts one submitted operation.
func (l *Ledger) Start() {
	l.mu.Lock()
	l.started++
	l.inflight++
	l.mu.Unlock()
}

// Finish accounts the operation's single outcome, classified by error.
func (l *Ledger) Finish(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inflight--
	switch {
	case err == nil:
		l.ok++
	case errors.Is(err, core.ErrDeadline):
		l.timeouts++
	case errors.Is(err, core.ErrCanceled):
		l.cancels++
	case errors.Is(err, core.ErrOverloaded):
		l.sheds++
	default:
		l.failed++
	}
}

// Counts returns (started, ok, timeouts, cancels, sheds, failed, inflight).
func (l *Ledger) Counts() (started, ok, timeouts, cancels, sheds, failed, inflight int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.started, l.ok, l.timeouts, l.cancels, l.sheds, l.failed, l.inflight
}

// ---- Invariant 6: no post-taint egress --------------------------------

// PolicyChecker verifies the chain-aware policy end to end: once a chain
// has touched identifying data (the "meter-identities" taint the harness
// policy confers on the store's ids op), no egress ever completes. Two
// observation points, either of which catches a breach independently:
// the egress component records every invocation that actually reached it
// (a tainted arrival means enforcement failed at the caller), and the
// driver records every exfil operation's outcome (a nil error means a
// tainted chain's egress succeeded end to end, wherever enforcement
// leaked). Denied is the only acceptable exfil outcome besides transport
// failure.
type PolicyChecker struct {
	label string
	mu    sync.Mutex
	viols []Violation
}

// NewPolicyChecker builds the checker for one forbidden taint label.
func NewPolicyChecker(label string) *PolicyChecker {
	return &PolicyChecker{label: label}
}

// RecordEgress notes one invocation that reached an egress component.
func (c *PolicyChecker) RecordEgress(replica string, taint []string) {
	if !core.HasTaint(taint, c.label) {
		return
	}
	c.mu.Lock()
	c.viols = append(c.viols, Violation{
		Invariant: c.Name(),
		Detail: fmt.Sprintf("egress handler on %s ran with taint %v",
			replica, taint),
	})
	c.mu.Unlock()
}

// RecordExfil notes one driver-level exfil operation's outcome.
func (c *PolicyChecker) RecordExfil(id string, err error) {
	if err != nil {
		return
	}
	c.mu.Lock()
	c.viols = append(c.viols, Violation{
		Invariant: c.Name(),
		Detail:    fmt.Sprintf("exfil op %s completed without a deny", id),
	})
	c.mu.Unlock()
}

// Name implements Checker.
func (c *PolicyChecker) Name() string { return "no-tainted-egress" }

// Check implements Checker.
func (c *PolicyChecker) Check() []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Violation(nil), c.viols...)
}

// ConservationChecker verifies the ledger equation
//
//	started = completions + timeouts + cancellations + sheds + failures
//
// at every quiesce point (inflight must be 0 when the explorer checks),
// and cross-checks the systems' cost counters: completed work implies at
// least as many substrate invocations, and every watchdog abandonment the
// systems counted must not exceed what callers were told — timeouts the
// servers record are a lower bound on what the ledger saw only when no
// call is refused client-side, so the cross-check is one-directional.
type ConservationChecker struct {
	led   *Ledger
	stats func() core.Stats // aggregated over every system in the sim
}

// NewConservationChecker builds the checker over the ledger and an
// aggregated stats snapshot function.
func NewConservationChecker(led *Ledger, stats func() core.Stats) *ConservationChecker {
	return &ConservationChecker{led: led, stats: stats}
}

// Name implements Checker.
func (c *ConservationChecker) Name() string { return "telemetry-conservation" }

// Check implements Checker.
func (c *ConservationChecker) Check() []Violation {
	started, ok, tmo, can, shed, failed, inflight := c.led.Counts()
	var out []Violation
	if inflight != 0 {
		// Not a quiesce point; the equation is only meaningful when every
		// submitted op has resolved. The explorer quiesces before checking.
		return nil
	}
	if started != ok+tmo+can+shed+failed {
		out = append(out, Violation{
			Invariant: c.Name(),
			Detail: fmt.Sprintf("started %d != ok %d + timeouts %d + cancels %d + sheds %d + failures %d",
				started, ok, tmo, can, shed, failed),
		})
	}
	if c.stats != nil {
		st := c.stats()
		if st.Invocations < ok {
			out = append(out, Violation{
				Invariant: c.Name(),
				Detail: fmt.Sprintf("substrate invocations %d < completed calls %d",
					st.Invocations, ok),
			})
		}
	}
	return out
}
