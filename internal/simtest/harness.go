package simtest

import (
	"fmt"
	"sync"
	"time"

	"lateral/internal/cluster"
	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/distributed"
	"lateral/internal/journal"
	"lateral/internal/netsim"
	"lateral/internal/policy"
	"lateral/internal/sgx"
	"lateral/internal/shard"
	"lateral/internal/telemetry"
)

// Harness is one simulated deployment: an attested replica fleet behind a
// pool, every layer of it — core watchdogs, cluster backoff/health
// timers, the distributed wire budget, and the chaos adversaries — driven
// by one virtual clock. Faults are applied through the harness so the
// explorer and scripted schedules share one implementation.
type Harness struct {
	Clock   *Clock
	Net     *netsim.Network
	Pool    *cluster.Pool
	Metrics *telemetry.Metrics

	// Journal is the deployment's black box: every trust transition the
	// pool commits, every session event, and every budget shed lands here,
	// hash-chained and checkpointed against Counter on the virtual clock.
	Journal *journal.Journal
	Counter *journal.MemCounter

	// Router is the sharded ingestion fabric: logical shard cells behind a
	// consistent-hash shard map, each cell's backend dispatching into the
	// (single simulated) pool. Shard-split/shard-merge faults rebalance it
	// mid-run; the shard-placement invariant audits every dispatch.
	Router *shard.Router

	// Invariant state.
	Serial       *SerialChecker
	Budget       *BudgetChecker
	Absorb       *AbsorbChecker
	Pipeline     *PipelineChecker
	Coalesce     *CoalesceChecker
	Led          *Ledger
	Conservation *ConservationChecker
	Audit        *JournalChecker
	Policy       *PolicyChecker
	Epochs       *EpochChecker
	Sharding     *ShardChecker

	chain       *netsim.Chain
	partitioner *netsim.Partitioner
	delayer     *netsim.Delayer
	tamper      *linkTamperer
	dup         *duplicator

	svcs map[string]*simSvc
	sys  map[string]*core.System

	// exps holds each replica's exporter so FaultCoalesce can arm the
	// one-shot coalesced-record fault on the right server.
	exps map[string]*distributed.Exporter

	// Replica build inputs, kept so FaultJoin can construct a new attested
	// machine mid-run exactly the way NewHarness built the originals.
	vendor   *cryptoutil.Signer
	seedName string
	rules    *policy.RuleSet
	buggy    bool

	// Stall synchronization: gated handlers announce themselves on
	// entered and block on gate until the driver releases them; they
	// report completion on done. All three are sized so no handler can
	// block the simulation by signaling.
	entered chan string
	gate    chan struct{}
	done    chan string

	// awaited holds the stall op ids a CallStall driver is currently
	// managing. A stall frame that arrives when its id is not awaited — a
	// delayed or duplicated datagram surfacing after its driver returned —
	// acks immediately instead of gating a handler nobody will release.
	stallMu sync.Mutex
	awaited map[string]bool
}

// HarnessConfig sizes a simulated deployment.
type HarnessConfig struct {
	// Replicas is the fleet size (default 3).
	Replicas int

	// Seed names the deployment: substrate device seeds, handshake PRNGs,
	// and backoff jitter all derive from it, so one seed is one exact
	// deployment.
	Seed uint64

	// Balancer overrides the pool's balancer (default round-robin).
	Balancer cluster.Balancer

	// Buggy enables the deliberate serialization mutation in every
	// replica's service component — the bug the mutation smoke test
	// proves the checkers catch.
	Buggy bool

	// Skew offsets the virtual clock's start (FaultSkew arrives through
	// schedules; this models a deployment born skewed).
	Skew time.Duration

	// HealthInterval enables the pool's piggybacked health rounds (0 keeps
	// them off; the explorer heals via FaultHeal's explicit CheckNow). The
	// interval elapses in virtual time — tests advance the clock to
	// trigger it.
	HealthInterval time.Duration
}

// ReplicaName returns the i-th (1-based) replica's endpoint name.
func ReplicaName(i int) string { return fmt.Sprintf("svc-%d", i) }

// CellName returns the i-th (1-based) shard cell's name.
func CellName(i int) string { return fmt.Sprintf("cell-%d", i) }

// TaintLabel is the identifying-data label the harness policy confers on
// the store's ids op; the no-tainted-egress invariant forbids any chain
// carrying it from completing an egress.
const TaintLabel = "meter-identities"

// simPolicyText is every replica's chain-aware policy: touching the
// store's identifying data taints the chain, tainted chains may not
// egress, everything else is allowed. The mosaic pattern from the paper —
// each access is individually fine, the combination is not.
const simPolicyText = `taint store ids ` + TaintLabel + `
deny no-exfil to-net * when ` + TaintLabel + `
allow rest * *
`

// NewHarness builds the simulated deployment: Replicas attested systems,
// each hosting a front service component calling a backend store
// component, exported over netsim to a pool whose every timer runs on the
// harness clock.
func NewHarness(cfg HarnessConfig) (*Harness, error) {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	clk := NewClock(cfg.Skew)
	h := &Harness{
		Clock:   clk,
		Net:     netsim.New(),
		Metrics: telemetry.NewMetrics(),
		Serial:  NewSerialChecker(),
		Budget:  NewBudgetChecker(),
		Led:     NewLedger(),
		svcs:    make(map[string]*simSvc),
		sys:     make(map[string]*core.System),
		exps:    make(map[string]*distributed.Exporter),
		entered: make(chan string, 64),
		gate:    make(chan struct{}, 64),
		done:    make(chan string, 64),
		awaited: make(map[string]bool),
	}
	h.partitioner = netsim.NewPartitioner()
	h.tamper = &linkTamperer{}
	h.dup = &duplicator{}
	h.chain = netsim.NewChain(h.partitioner, h.tamper, h.dup)
	h.Net.SetAdversary(h.chain)
	h.Epochs = NewEpochChecker()

	h.vendor = cryptoutil.NewSigner("intel")
	h.seedName = fmt.Sprintf("sim-%d", cfg.Seed)
	h.buggy = cfg.Buggy
	vendor, seedName := h.vendor, h.seedName
	jsigner := cryptoutil.NewSigner(seedName + "-journal")
	h.Counter = &journal.MemCounter{}
	jnl, err := journal.New(journal.Config{
		Name:            "svc",
		Signer:          jsigner,
		Counter:         h.Counter,
		CheckpointEvery: 8,
		Clock:           clk.Now,
		Monitor:         h.Metrics,
	})
	if err != nil {
		return nil, err
	}
	h.Journal = jnl
	pool, err := cluster.New(cluster.Config{
		Fleet:          "svc",
		RemoteName:     "svc",
		VendorKey:      vendor.Public(),
		Measurement:    cryptoutil.Hash(core.DomainImage(&simSvc{})),
		JitterSeed:     seedName,
		Balancer:       cfg.Balancer,
		Monitor:        &epochTee{Metrics: h.Metrics, ck: h.Epochs},
		Sleep:          clk.Sleep,
		Clock:          clk.Now,
		Journal:        h.Journal,
		HealthInterval: cfg.HealthInterval,
		// Sequential health rounds: concurrent probes would interleave
		// netsim traffic nondeterministically and break byte-identical
		// replay of recorded schedules.
		HealthFanout: 1,
	})
	if err != nil {
		return nil, err
	}
	h.Pool = pool
	h.Epochs.Bind(pool.Epoch, pool.Replicas)
	h.Audit = NewJournalChecker(h.Journal, jsigner.Public(), h.Counter, pool.States)
	h.Pipeline = NewPipelineChecker(pool.Replicas)
	h.Coalesce = NewCoalesceChecker(pool.Replicas)
	h.Absorb = NewAbsorbChecker("quarantine", func() map[string]bool {
		out := make(map[string]bool)
		for _, r := range pool.Replicas() {
			out[r.Name] = r.State == cluster.StateQuarantined
		}
		return out
	})
	h.Policy = NewPolicyChecker(TaintLabel)
	h.rules, err = policy.Decode([]byte(simPolicyText))
	if err != nil {
		return nil, err
	}
	h.Conservation = NewConservationChecker(h.Led, func() core.Stats {
		var agg core.Stats
		for _, s := range h.sys {
			st := s.Stats()
			agg.Invocations += st.Invocations
			agg.Timeouts += st.Timeouts
			agg.Cancels += st.Cancels
			agg.Overloads += st.Overloads
		}
		return agg
	})

	// The shard fabric: two seed cells over the pool. Cells are logical —
	// every backend dispatches into the same simulated fleet — so the
	// shard map, quotas, and rebalancing run for real while the
	// deployment stays one virtual-clocked pool.
	h.Sharding = NewShardChecker(0)
	h.Router = shard.NewRouter(shard.Config{
		Fleet:   "cells",
		Monitor: h.Metrics,
		Journal: h.Journal,
	})
	for _, cell := range []string{CellName(1), CellName(2)} {
		if err := h.Router.Join(cell, &cellBackend{h: h, name: cell}); err != nil {
			return nil, err
		}
		h.Sharding.MarkSplit(cell)
	}

	for i := 1; i <= cfg.Replicas; i++ {
		spec, err := h.buildReplica(ReplicaName(i))
		if err != nil {
			return nil, err
		}
		if err := pool.Admit(spec); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// buildReplica constructs one attested replica machine — system, policy
// engine, components, exporter — and returns the spec that admits it.
// NewHarness admits the seed fleet through Pool.Admit; FaultJoin admits a
// mid-run joiner through Pool.Join. Both build here, so a joiner is the
// same audited binary as the originals.
func (h *Harness) buildReplica(name string) (cluster.ReplicaSpec, error) {
	cpu, err := sgx.New(sgx.Config{DeviceSeed: h.seedName + "-" + name, Vendor: h.vendor})
	if err != nil {
		return cluster.ReplicaSpec{}, err
	}
	sys := core.NewSystem(cpu)
	sys.SetClock(h.Clock)
	sys.SetTracer(h.Metrics)
	sys.SetEventRecorder(h.Journal)
	eng, err := policy.New(policy.Config{
		Name:     name,
		Rules:    h.rules,
		Clock:    h.Clock.Now,
		Recorder: h.Journal,
		Monitor:  h.Metrics,
	})
	if err != nil {
		return cluster.ReplicaSpec{}, err
	}
	sys.SetPolicy(eng)
	svc := &simSvc{h: h, buggy: h.buggy, guard: h.Serial.Guard(name + "/svc")}
	store := &simStore{h: h, guard: h.Serial.Guard(name + "/store")}
	egress := &simEgress{h: h, replica: name, guard: h.Serial.Guard(name + "/egress")}
	if err := sys.Launch(svc, true, 1); err != nil {
		return cluster.ReplicaSpec{}, err
	}
	if err := sys.Launch(store, true, 1); err != nil {
		return cluster.ReplicaSpec{}, err
	}
	if err := sys.Launch(egress, true, 1); err != nil {
		return cluster.ReplicaSpec{}, err
	}
	if err := sys.Grant(core.ChannelSpec{Name: "store", From: "svc", To: "store", Badge: 7}); err != nil {
		return cluster.ReplicaSpec{}, err
	}
	if err := sys.Grant(core.ChannelSpec{Name: "to-net", From: "svc", To: "egress", Badge: 8}); err != nil {
		return cluster.ReplicaSpec{}, err
	}
	if err := sys.InitAll(); err != nil {
		return cluster.ReplicaSpec{}, err
	}
	exp, err := distributed.NewExporter(distributed.ExportConfig{
		System:    sys,
		Component: "svc",
		Endpoint:  h.Net.Attach(name),
		Identity:  cryptoutil.NewSigner(name + "-tls"),
		Rand:      cryptoutil.NewPRNG(h.seedName + "-srv-" + name),
		Clock:     h.Clock.Now,
	})
	if err != nil {
		return cluster.ReplicaSpec{}, err
	}
	h.svcs[name] = svc
	h.sys[name] = sys
	h.exps[name] = exp
	return cluster.ReplicaSpec{
		Name:           name,
		RemoteEndpoint: name,
		Endpoint:       h.Net.Attach("lb-" + name),
		Rand:           cryptoutil.NewPRNG(h.seedName + "-cli-" + name),
		Pump:           exp.Serve,
		SetEpoch:       exp.SetEpoch,
	}, nil
}

// epochTee is the harness's cluster monitor: everything flows to the
// shared telemetry collector (embedding keeps the structural
// cluster.EpochMonitor and distributed.Monitor matches intact), and
// per-replica call outcomes additionally feed the epoch-membership
// invariant.
type epochTee struct {
	*telemetry.Metrics
	ck *EpochChecker
}

func (t *epochTee) ReplicaCall(fleet, replica string, failed bool) {
	t.ck.RecordCall(replica, failed)
	t.Metrics.ReplicaCall(fleet, replica, failed)
}

// Checkers returns every invariant checker in a stable order.
func (h *Harness) Checkers() []Checker {
	return []Checker{h.Serial, h.Budget, h.Absorb, h.Pipeline, h.Coalesce, h.Conservation, h.Audit, h.Policy, h.Epochs, h.Sharding}
}

// CheckAll runs every checker and returns the concatenated violations.
func (h *Harness) CheckAll() []Violation {
	var out []Violation
	for _, c := range h.Checkers() {
		out = append(out, c.Check()...)
	}
	return out
}

// Apply injects one fault. Faults compose: a partition, a delayer, a
// tamperer, and a duplicator can all be active at once (netsim.Chain).
func (h *Harness) Apply(f Fault) {
	switch f.Kind {
	case FaultCrash:
		h.partitioner.Isolate(f.Target)
	case FaultHeal:
		if f.Target == "" {
			h.partitioner.HealAll()
		} else {
			h.partitioner.Heal(f.Target)
		}
		// A healed machine is only useful once the pool re-admits it; a
		// real deployment's health loop does this, the simulation does it
		// synchronously.
		h.Pool.CheckNow()
	case FaultPartition:
		h.partitioner.BlockLink(f.Target, f.Peer)
	case FaultDelay:
		if f.N == 0 {
			h.delayer = nil
		} else {
			h.delayer = netsim.NewTimedDelayer(f.Seed, float64(f.Pct)/100, f.Dur, h.Clock)
		}
		h.rebuildChain()
	case FaultTamper:
		h.tamper.Set(f.Target)
	case FaultSkew:
		h.Clock.Advance(f.Dur)
	case FaultDup:
		h.dup.Arm(f.Target, f.N)
	case FaultJournalTamper:
		// Mutate the black box at rest. The auditor invariant flips to
		// "replay must fail" only if an entry was actually hit — tampering
		// an index past the journal's end attacks nothing.
		if h.Journal.TamperEntry(f.N) {
			h.Audit.MarkTampered()
		}
	case FaultJoin:
		// Names are single-use per run: the netsim endpoint and the serial
		// guards are keyed by name, so a rejoin (or joining a seed member)
		// is a scripted no-op rather than a second machine behind one wire.
		if _, exists := h.sys[f.Target]; exists {
			return
		}
		spec, err := h.buildReplica(f.Target)
		if err != nil {
			// Replica construction is pure local work on bounded names; an
			// error here is a harness bug, not a simulated outcome.
			panic("simtest: build joiner: " + err.Error())
		}
		// A failed joiner handshake is a legal outcome (admitted Down, the
		// health loop retries); the epoch transition completed either way.
		_ = h.Pool.Join(spec)
	case FaultLeave:
		// The pool refuses unknown and quarantined names; only a committed
		// leave arms the evicted-replica half of the epoch invariant.
		if err := h.Pool.Leave(f.Target); err == nil {
			h.Epochs.MarkEvicted(f.Target)
		}
	case FaultShardSplit:
		// The checker's shadow membership moves only on a committed
		// transition — a refused join (duplicate name) changes nothing on
		// either side.
		if err := h.Router.Join(f.Target, &cellBackend{h: h, name: f.Target}); err == nil {
			h.Sharding.MarkSplit(f.Target)
		}
	case FaultShardMerge:
		if _, err := h.Router.Leave(f.Target); err == nil {
			h.Sharding.MarkMerge(f.Target)
		}
	case FaultCoalesce:
		// Arm the one-shot sub-frame fault on the target's exporter (mode
		// rides in Peer: "drop" or "tamper"); an unknown name attacks
		// nothing, so schedules stay safe to fuzz.
		if exp := h.exps[f.Target]; exp != nil {
			exp.FaultNextCoalesced(f.Peer, f.N)
		}
	}
}

// HealWire lifts every partition cut involving target without forcing a
// health round — unlike FaultHeal, the pool finds out only when its own
// health timer elapses. Tests of health-interval behavior use this to
// separate "the machine recovered" from "the pool noticed".
func (h *Harness) HealWire(target string) {
	if target == "" {
		h.partitioner.HealAll()
		return
	}
	h.partitioner.Heal(target)
}

// rebuildChain reinstalls the adversary chain after a slot changed.
func (h *Harness) rebuildChain() {
	links := []netsim.Adversary{h.partitioner}
	if h.delayer != nil {
		links = append(links, h.delayer)
	}
	links = append(links, h.tamper, h.dup)
	h.chain.SetLinks(links...)
}

// ---- operations ------------------------------------------------------

// CallWork drives one budgeted request through the pool and accounts it
// in the ledger. id must be unique per operation (it keys the budget
// checker's parent/child pairs).
func (h *Harness) CallWork(id, key string, budget time.Duration) error {
	h.Led.Start()
	var deadline time.Time
	if budget > 0 {
		deadline = h.Clock.Now().Add(budget)
	}
	var err error
	if deadline.IsZero() {
		_, err = h.Pool.Do(key, core.Message{Op: "work", Data: []byte(id)})
	} else {
		_, err = h.Pool.DoDeadline(key, core.Message{Op: "work", Data: []byte(id)}, deadline)
	}
	h.Led.Finish(err)
	return err
}

// CallSlowWork drives one unbounded request whose handler takes real
// service time (the "slow" op) — the coalesce soak's overlap window.
func (h *Harness) CallSlowWork(id, key string) error {
	h.Led.Start()
	_, err := h.Pool.Do(key, core.Message{Op: "slow", Data: []byte(id)})
	h.Led.Finish(err)
	return err
}

// CallShardWork drives one budgeted reading through the shard router:
// quota, shard-map lookup, then the owning cell's backend dispatches into
// the pool. The placement invariant audits the dispatch.
func (h *Harness) CallShardWork(id, tenant, key string, budget time.Duration) error {
	h.Led.Start()
	var deadline time.Time
	if budget > 0 {
		deadline = h.Clock.Now().Add(budget)
	}
	_, err := h.Router.DoDeadline(tenant, key, core.Message{Op: "work", Data: []byte(id)}, deadline)
	h.Led.Finish(err)
	return err
}

// CallShardBatch drives n readings through the router as one batch frame
// (one ledger operation, one sealed datagram into the owning cell's
// pool). Reading ids derive from id so the placement invariant can prove
// none is double-counted.
func (h *Harness) CallShardBatch(id, tenant, key string, n int, budget time.Duration) error {
	h.Led.Start()
	var deadline time.Time
	if budget > 0 {
		deadline = h.Clock.Now().Add(budget)
	}
	readings := make([]distributed.Reading, n)
	for i := range readings {
		readings[i] = distributed.Reading{Op: "work", Data: []byte(fmt.Sprintf("%s/%d", id, i))}
	}
	results, err := h.Router.DoBatch(tenant, key, readings, nil, deadline)
	if err == nil {
		// The frame landed; surface the worst per-reading outcome so the
		// ledger classifies partial failures the same way single calls do.
		for _, r := range results {
			if r.Err != nil {
				err = r.Err
				break
			}
		}
	}
	h.Led.Finish(err)
	return err
}

// CallExfil drives one mosaic attack through the pool: the service reads
// identifying data from the store (tainting the chain) and then tries to
// egress it. The policy engine on every replica must refuse the egress —
// the no-tainted-egress invariant records any outcome where it did not.
func (h *Harness) CallExfil(id, key string) error {
	h.Led.Start()
	_, err := h.Pool.Do(key, core.Message{Op: "exfil", Data: []byte(id)})
	h.Led.Finish(err)
	h.Policy.RecordExfil(id, err)
	return err
}

// CallStall drives one budgeted request whose handler wedges: the request
// is issued on its own goroutine, and as soon as a handler gates itself
// the virtual clock is advanced past the deadline so the watchdog
// abandons it. Abandoned handlers are then released and awaited, so the
// harness is quiesced when CallStall returns. Returns the caller-visible
// error (ErrDeadline when a handler gated).
func (h *Harness) CallStall(id, key string, budget time.Duration) error {
	h.Led.Start()
	h.stallMu.Lock()
	h.awaited[id] = true
	h.stallMu.Unlock()
	defer func() {
		h.stallMu.Lock()
		delete(h.awaited, id)
		h.stallMu.Unlock()
	}()
	deadline := h.Clock.Now().Add(budget)
	res := make(chan error, 1)
	go func() {
		_, err := h.Pool.DoDeadline(key, core.Message{Op: "stall", Data: []byte(id)}, deadline)
		h.Led.Finish(err)
		res <- err
	}()
	gated := 0
	var err error
	for {
		select {
		case <-h.entered:
			gated++
			// The handler holds its execution slot; the watchdog's expiry
			// timer is armed by the delivering goroutine. Wait for it,
			// then advance past the deadline to abandon the handler.
			h.Clock.WaitTimers(1)
			h.Clock.AdvanceTo(deadline.Add(time.Millisecond))
			continue
		case err = <-res:
		}
		break
	}
	for i := 0; i < gated; i++ {
		h.gate <- struct{}{}
	}
	for i := 0; i < gated; i++ {
		<-h.done
	}
	return err
}

// Quiesce verifies no operation is in flight (stall ops self-quiesce, so
// this is a cheap assertion point before checking invariants).
func (h *Harness) Quiesce() {
	// All harness operations are synchronous by construction; nothing to
	// wait for. The method exists so future asynchronous op types have a
	// single place to drain.
}

// ---- components ------------------------------------------------------

// simSvc is the front service: it records the budget it runs under,
// calls the backend store (so every operation exercises a two-level call
// tree), and can wedge on demand. With Buggy set it models an
// async-completion bug: the critical section of each invocation is closed
// only after the NEXT invocation has begun — the serialization mutation
// the smoke test expects the checkers to catch.
type simSvc struct {
	h     *Harness
	ctx   *core.Ctx
	guard *SerialGuard
	buggy bool
	carry bool // buggy mode: an Enter from the previous invocation is still open
}

func (s *simSvc) CompName() string    { return "svc" }
func (s *simSvc) CompVersion() string { return "1.0" }

func (s *simSvc) Init(ctx *core.Ctx) error {
	s.ctx = ctx
	return nil
}

func (s *simSvc) Handle(env core.Envelope) (core.Message, error) {
	s.guard.Enter()
	if s.buggy {
		if s.carry {
			// Close the previous invocation's critical section only now —
			// after this invocation already entered it.
			s.guard.Exit()
		}
		s.carry = true
	} else {
		defer s.guard.Exit()
	}
	return s.serve(env)
}

func (s *simSvc) serve(env core.Envelope) (core.Message, error) {
	id := string(env.Msg.Data)
	switch env.Msg.Op {
	case "work", "slow":
		if env.Msg.Op == "slow" {
			// Real — not virtual — service time. The coalesce soak races
			// concurrent callers against one stub, and coalescing needs a
			// window during which later arrivals can pile onto the queue
			// behind the flush leader; the virtual clock never moves here,
			// so the window has to be wall time.
			time.Sleep(50 * time.Microsecond)
		}
		s.h.Budget.RecordParent(id, env.Deadline)
		return s.ctx.Call("store", core.Message{Op: "get", Data: env.Msg.Data})
	case "exfil":
		// Mosaic attack: each step is individually permitted — reading ids
		// taints the chain, and the egress call must then be refused by the
		// system, not by this (deliberately unscrupulous) component.
		if _, err := s.ctx.Call("store", core.Message{Op: "ids", Data: env.Msg.Data}); err != nil {
			return core.Message{}, err
		}
		return s.ctx.Call("to-net", core.Message{Op: "send", Data: env.Msg.Data})
	case "stall":
		s.h.stallMu.Lock()
		live := s.h.awaited[id]
		s.h.stallMu.Unlock()
		if !live {
			// A delayed or duplicated stall frame surfacing after its
			// driver returned (a 500-seed soak found this as a deadlock):
			// nobody will release the gate, so ack immediately.
			return core.Message{Op: "ack"}, nil
		}
		s.h.entered <- id
		<-s.h.gate
		s.h.done <- id
		return core.Message{Op: "ack"}, nil
	default:
		return core.Message{}, core.ErrRefused
	}
}

// simStore is the backend: it records the budget that arrived, proving
// inheritance down the call tree.
type simStore struct {
	h     *Harness
	guard *SerialGuard
}

func (s *simStore) CompName() string     { return "store" }
func (s *simStore) CompVersion() string  { return "1.0" }
func (s *simStore) Init(*core.Ctx) error { return nil }

func (s *simStore) Handle(env core.Envelope) (core.Message, error) {
	s.guard.Enter()
	defer s.guard.Exit()
	switch env.Msg.Op {
	case "get":
		s.h.Budget.RecordChild(string(env.Msg.Data), env.Deadline)
		return core.Message{Op: "ok", Data: env.Msg.Data}, nil
	case "ids":
		// Identifying data: the channel's taint rule marks the chain.
		return core.Message{Op: "ok", Data: []byte("meter-ids")}, nil
	default:
		return core.Message{}, core.ErrRefused
	}
}

// simEgress models the network boundary: any invocation reaching it has
// left the deployment. It reports every arrival (with the chain taint it
// came with) to the policy checker — if enforcement works, no tainted
// chain ever gets this far.
type simEgress struct {
	h       *Harness
	replica string
	guard   *SerialGuard
}

func (e *simEgress) CompName() string     { return "egress" }
func (e *simEgress) CompVersion() string  { return "1.0" }
func (e *simEgress) Init(*core.Ctx) error { return nil }

func (e *simEgress) Handle(env core.Envelope) (core.Message, error) {
	e.guard.Enter()
	defer e.guard.Exit()
	e.h.Policy.RecordEgress(e.replica, env.Taint)
	if env.Msg.Op != "send" {
		return core.Message{}, core.ErrRefused
	}
	return core.Message{Op: "sent"}, nil
}

// cellBackend is one logical shard cell's dispatch surface: it reports
// every arriving reading to the placement invariant, then dispatches into
// the simulated pool. (*shard.Router's Backend contract.)
type cellBackend struct {
	h    *Harness
	name string
}

func (b *cellBackend) DoDeadline(key string, msg core.Message, deadline time.Time) (core.Message, error) {
	b.h.Sharding.RecordDispatch(string(msg.Data), key, b.name)
	if deadline.IsZero() {
		return b.h.Pool.Do(key, msg)
	}
	return b.h.Pool.DoDeadline(key, msg, deadline)
}

func (b *cellBackend) DoBatch(key string, readings []distributed.Reading, results []distributed.BatchResult, deadline time.Time) ([]distributed.BatchResult, error) {
	for _, r := range readings {
		b.h.Sharding.RecordDispatch(string(r.Data), key, b.name)
	}
	return b.h.Pool.DoBatch(key, readings, results, deadline)
}

func (b *cellBackend) Healthy() int                    { return b.h.Pool.Healthy() }
func (b *cellBackend) Replicas() []cluster.ReplicaInfo { return b.h.Pool.Replicas() }

// ---- targeted adversaries -------------------------------------------

// linkTamperer flips one bit in every payload the configured endpoint
// sends (empty target = off). Unlike the stock netsim.Tamperer it targets
// a single sender, so a schedule can corrupt exactly one replica's
// traffic and watch attestation quarantine it.
type linkTamperer struct {
	mu   sync.Mutex
	from string
}

func (t *linkTamperer) Set(from string) {
	t.mu.Lock()
	t.from = from
	t.mu.Unlock()
}

func (t *linkTamperer) Intercept(d netsim.Datagram) []netsim.Datagram {
	t.mu.Lock()
	from := t.from
	t.mu.Unlock()
	if from == "" || d.From != from || len(d.Payload) == 0 {
		return []netsim.Datagram{d}
	}
	p := make([]byte, len(d.Payload))
	copy(p, d.Payload)
	p[len(p)-1] ^= 0x01
	d.Payload = p
	return []netsim.Datagram{d}
}

// duplicator re-sends the next N datagrams the configured endpoint emits
// — at-least-once delivery misbehavior the secure channel's replay
// protection must absorb.
type duplicator struct {
	mu   sync.Mutex
	from string
	n    int
}

func (u *duplicator) Arm(from string, n int) {
	u.mu.Lock()
	u.from, u.n = from, n
	u.mu.Unlock()
}

func (u *duplicator) Intercept(d netsim.Datagram) []netsim.Datagram {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.n <= 0 || u.from == "" || d.From != u.from {
		return []netsim.Datagram{d}
	}
	u.n--
	return []netsim.Datagram{d, d}
}
