package simtest

import (
	"fmt"
	"sync"

	"lateral/internal/cluster"
)

// ---- Invariant 8: epoch membership is enforced -----------------------

// EpochChecker verifies the dynamic-membership contract: no call ever
// completes against an evicted replica, and no replica serves while
// stale-keyed. Two observation points:
//
//   - the harness's cluster monitor reports every per-replica call
//     outcome; one recorded against a name that left the fleet means the
//     pool dispatched past an eviction (the drain leaked);
//   - every check snapshots the fleet and demands each healthy replica's
//     session epoch equals the pool's active epoch — a healthy member
//     keyed at an older epoch would accept traffic the epoch rekey was
//     supposed to make unauthenticatable.
//
// Both findings are sticky: a transient breach at any step still fails
// the run at quiesce.
type EpochChecker struct {
	epoch    func() uint64
	snapshot func() []cluster.ReplicaInfo

	mu      sync.Mutex
	evicted map[string]bool
	seen    map[string]bool // dedup: Check is idempotent, breaches sticky
	viols   []Violation
}

// NewEpochChecker builds an unbound checker; Bind wires it to a pool once
// the pool exists (the harness's cluster monitor needs the checker before
// the pool is constructed).
func NewEpochChecker() *EpochChecker {
	return &EpochChecker{evicted: make(map[string]bool), seen: make(map[string]bool)}
}

// Bind wires the checker to the live pool's epoch and fleet snapshot.
func (c *EpochChecker) Bind(epoch func() uint64, snapshot func() []cluster.ReplicaInfo) {
	c.epoch = epoch
	c.snapshot = snapshot
}

// MarkEvicted records that a replica left the fleet; any call the pool
// accounts against it from now on is a violation.
func (c *EpochChecker) MarkEvicted(name string) {
	c.mu.Lock()
	c.evicted[name] = true
	c.mu.Unlock()
}

// RecordCall notes one per-replica call outcome from the pool's monitor.
func (c *EpochChecker) RecordCall(replica string, failed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.evicted[replica] {
		return
	}
	verb := "completed against"
	if failed {
		verb = "dispatched to"
	}
	c.viols = append(c.viols, Violation{
		Invariant: c.Name(),
		Detail:    fmt.Sprintf("call %s evicted replica %s", verb, replica),
	})
}

// Name implements Checker.
func (c *EpochChecker) Name() string { return "epoch-membership" }

// Check implements Checker.
func (c *EpochChecker) Check() []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch == nil {
		return append([]Violation(nil), c.viols...)
	}
	active := c.epoch()
	for _, r := range c.snapshot() {
		if r.State != cluster.StateHealthy || r.Epoch == active {
			continue
		}
		detail := fmt.Sprintf("replica %s healthy with session epoch %d, active epoch %d",
			r.Name, r.Epoch, active)
		if c.seen[detail] {
			continue
		}
		c.seen[detail] = true
		c.viols = append(c.viols, Violation{Invariant: c.Name(), Detail: detail})
	}
	return append([]Violation(nil), c.viols...)
}
