package simtest

// The coalesced-record soak and its pinned unit tests. Coalescing only
// happens when callers actually race — the deterministic explorer's
// synchronous operations seal single-sub plain records, which is exactly
// why its traces stay byte-identical with the coalescer in the stack — so
// this soak runs real concurrent drivers against the virtual-clocked
// deployment and checks every invariant at quiesce instead of replaying a
// trace. The tenth invariant (every sub-frame of a coalesced record
// completes exactly once or its caller sees a typed error) is the
// headline assertion; the drop/tamper coalesce faults are what put it
// under attack.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"lateral/internal/cluster"
	"lateral/internal/core"
	"lateral/internal/distributed"
)

// typedCoalesceOutcome reports whether a caller-visible error is one of
// the typed sentinels the stack promises. A dropped sub-frame must
// surface as ErrTransport (the caller's reply never arrives), a tampered
// one as a remote error status — anything unclassifiable is an invariant
// breach in its own right.
func typedCoalesceOutcome(err error) bool {
	for _, sentinel := range []error{
		core.ErrDeadline, core.ErrCanceled, core.ErrOverloaded, core.ErrPolicy,
		distributed.ErrTransport, distributed.ErrRemote, distributed.ErrNotConnected,
		cluster.ErrNoReplicas, cluster.ErrExhausted,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// runCoalesceSeed drives one seeded deployment: rounds of concurrent
// callers racing through the pool (so stubs coalesce for real), each
// round with one one-shot drop or tamper fault armed on a random
// replica's exporter. After every round the fleet is quiesced, all ten
// invariants checked, and the wire healed (a drop marks its replica Down;
// healing keeps the next round on a full fleet so a mid-call total outage
// can never park a backoff on the un-advanced virtual clock).
func runCoalesceSeed(t *testing.T, seed uint64) {
	t.Helper()
	h, err := NewHarness(HarnessConfig{Replicas: 3, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	const workers, callsPer, rounds = 12, 12, 3
	r := &rng{state: seed}
	for round := 0; round < rounds; round++ {
		mode := "drop"
		if r.next()%2 == 0 {
			mode = "tamper"
		}
		h.Apply(Fault{Kind: FaultCoalesce, Target: ReplicaName(1 + r.intn(3)), Peer: mode, N: r.intn(4)})
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start // all workers fire together: maximum racing
				for i := 0; i < callsPer; i++ {
					id := fmt.Sprintf("op-%d-%d-%d", round, w, i)
					key := fmt.Sprintf("key-%02d", (w*callsPer+i)%16)
					var err error
					if i%2 == 0 {
						// Slow ops hold a replica for real service time, so
						// the other workers' frames pile up behind the flush
						// leader and coalesce.
						err = h.CallSlowWork(id, key)
					} else {
						err = h.CallWork(id, key, 0)
					}
					if err != nil && !typedCoalesceOutcome(err) {
						t.Errorf("seed %d round %d %s: untyped caller error: %v", seed, round, id, err)
					}
				}
			}(w)
		}
		close(start)
		wg.Wait()
		h.Quiesce()
		if v := h.CheckAll(); len(v) != 0 {
			t.Fatalf("seed %d round %d (mode %s): invariant violations: %v", seed, round, mode, v)
		}
		h.Apply(Fault{Kind: FaultHeal})
	}
	// The soak is only a soak if records actually coalesced: across
	// workers*callsPer*rounds racing calls over three stubs, at least some
	// must have shared a sealed record.
	var coalesced uint64
	for _, rep := range h.Pool.Replicas() {
		coalesced += rep.Stub.CoalescedRecords
	}
	if coalesced == 0 {
		t.Fatalf("seed %d: no coalesced records across the fleet — the soak exercised nothing", seed)
	}
}

// TestCoalesceSoak is the coalesced-record soak: many seeds of concurrent
// callers whose frames share sealed records while one-shot coalesce
// faults drop or tamper individual sub-frames — the tenth invariant must
// hold at every quiesce, and every caller outcome must be nil or typed.
// `make coalesce-soak` runs this over 500 seeds (-simtest.soak); plain
// `go test` covers a smaller batch.
func TestCoalesceSoak(t *testing.T) {
	seeds := 25
	if *soakFlag > 0 {
		seeds = *soakFlag
	} else if testing.Short() {
		seeds = 5
	}
	for seed := 1; seed <= seeds; seed++ {
		runCoalesceSeed(t, uint64(seed))
	}
}

// TestCoalesceFaultCodecRoundTrips pins the DSL: the coalesce verb
// encodes, decodes, and validates like every other fault, and the decoder
// rejects malformed modes, counts, and arity.
func TestCoalesceFaultCodecRoundTrips(t *testing.T) {
	sched := []Schedule{
		{At: 0, Fault: Fault{Kind: FaultCoalesce, Target: "svc-1", Peer: "drop", N: 0}},
		{At: 9 * time.Millisecond, Fault: Fault{Kind: FaultCoalesce, Target: "svc-2", Peer: "tamper", N: 3}},
	}
	if err := Validate(sched); err != nil {
		t.Fatalf("coalesce schedule does not validate: %v", err)
	}
	text := EncodeSchedule(sched)
	for _, verb := range []string{"coalesce svc-1 drop 0", "coalesce svc-2 tamper 3"} {
		if !strings.Contains(text, verb) {
			t.Fatalf("encoded schedule missing %q:\n%s", verb, text)
		}
	}
	dec, err := DecodeSchedule("@5ms coalesce svc-3 drop 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 1 || dec[0].Fault.Kind != FaultCoalesce ||
		dec[0].Fault.Target != "svc-3" || dec[0].Fault.Peer != "drop" || dec[0].Fault.N != 2 {
		t.Fatalf("decoded %+v", dec)
	}
	for _, bad := range []string{
		"@5ms coalesce svc-1 drop\n",        // missing index
		"@5ms coalesce svc-1 explode 0\n",   // unknown mode
		"@5ms coalesce svc-1 drop 0 9\n",    // too many args
		"@5ms coalesce svc-1 drop -1\n",     // negative index
		"@5ms coalesce sv c-1 drop 0 0 0\n", // mangled name splits into extra args
	} {
		if _, err := DecodeSchedule(bad); err == nil {
			t.Fatalf("decoder accepted %q", bad)
		}
	}
}

// TestCoalesceCheckerCatchesMisaccounting is the mutation smoke test for
// the tenth invariant: cooked stub counters for a double-flushed frame, a
// completion without a sealed sub-frame, a single-sub "coalesced" record,
// and coalesced records exceeding total records must each be flagged,
// while balanced books and mid-flight snapshots must not.
func TestCoalesceCheckerCatchesMisaccounting(t *testing.T) {
	check := func(st distributed.StubStats) []Violation {
		snap := func() []cluster.ReplicaInfo {
			return []cluster.ReplicaInfo{{Name: "svc-1", Stub: st}}
		}
		return NewCoalesceChecker(snap).Check()
	}
	good := distributed.StubStats{Issued: 10, Completed: 10, Records: 4, CoalescedRecords: 2, CoalescedSubs: 8}
	if v := check(good); len(v) != 0 {
		t.Fatalf("balanced books flagged: %v", v)
	}
	inflight := good
	inflight.Inflight = 1
	inflight.Issued = 3 // wildly unbalanced, but mid-flight: must be skipped
	if v := check(inflight); len(v) != 0 {
		t.Fatalf("mid-flight snapshot flagged: %v", v)
	}
	bad := []struct {
		st   distributed.StubStats
		want string
	}{
		{distributed.StubStats{Issued: 5, Completed: 5, Records: 4, CoalescedRecords: 2, CoalescedSubs: 8}, "flushed twice"},
		{distributed.StubStats{Issued: 10, Completed: 9, Records: 2, CoalescedRecords: 1, CoalescedSubs: 2}, "were ever sealed"},
		{distributed.StubStats{Issued: 10, Completed: 5, Records: 4, CoalescedRecords: 2, CoalescedSubs: 3}, "want >= 2 each"},
		{distributed.StubStats{Issued: 4, Completed: 4, Records: 1, CoalescedRecords: 2, CoalescedSubs: 4}, "exceed"},
	}
	for _, tc := range bad {
		v := check(tc.st)
		if len(v) == 0 {
			t.Errorf("misaccounting %+v not flagged", tc.st)
			continue
		}
		if !strings.Contains(v[0].Detail, tc.want) {
			t.Errorf("misaccounting %+v flagged as %q, want detail containing %q", tc.st, v[0].Detail, tc.want)
		}
	}
}
