package simtest

import (
	"crypto/ed25519"
	"fmt"
	"sync"

	"lateral/internal/journal"
)

// ---- Invariant 6: auditor replay equals ground truth -----------------

// JournalChecker replays the harness journal from genesis after every
// step and demands the auditor's view equals the live pool's trust state
// — the fleet black box is complete, tamper-evident, and sufficient to
// reconstruct who is admitted, down, and quarantined. Once a
// journal-tamper fault has fired, the obligation inverts: every
// subsequent replay MUST fail, or the auditor missed an attack.
type JournalChecker struct {
	j       *journal.Journal
	pub     ed25519.PublicKey
	counter journal.Counter
	live    func() map[string]string

	mu       sync.Mutex
	tampered bool
}

// NewJournalChecker wires the auditor invariant: j is replayed against
// pub and counter, and its derived states diffed against live.
func NewJournalChecker(j *journal.Journal, pub ed25519.PublicKey, counter journal.Counter, live func() map[string]string) *JournalChecker {
	return &JournalChecker{j: j, pub: pub, counter: counter, live: live}
}

// MarkTampered records that a journal-tamper fault mutated the log; from
// now on a successful replay is the violation.
func (c *JournalChecker) MarkTampered() {
	c.mu.Lock()
	c.tampered = true
	c.mu.Unlock()
}

// Name implements Checker.
func (c *JournalChecker) Name() string { return "journal-audit" }

// Check implements Checker.
func (c *JournalChecker) Check() []Violation {
	c.mu.Lock()
	tampered := c.tampered
	c.mu.Unlock()
	trusted, err := c.counter.Value()
	if err != nil {
		return []Violation{{Invariant: c.Name(), Detail: "trusted counter: " + err.Error()}}
	}
	audit, err := journal.Replay(c.j.Export(), c.pub, trusted)
	if tampered {
		if err == nil {
			return []Violation{{Invariant: c.Name(), Detail: "tampered journal passed verification"}}
		}
		return nil
	}
	if err != nil {
		return []Violation{{Invariant: c.Name(), Detail: "replay failed: " + err.Error()}}
	}
	var out []Violation
	for _, d := range audit.Diff(c.live()) {
		out = append(out, Violation{
			Invariant: c.Name(),
			Detail:    fmt.Sprintf("replayed trust state diverges from live pool: %s", d),
		})
	}
	return out
}
