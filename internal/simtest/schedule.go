package simtest

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// FaultKind enumerates the faults a schedule can inject.
type FaultKind uint8

const (
	// FaultCrash isolates a replica's machine endpoint: nothing in,
	// nothing out (netsim.Partitioner.Isolate).
	FaultCrash FaultKind = iota

	// FaultHeal removes every cut involving the target (Partitioner.Heal);
	// an empty target heals all cuts.
	FaultHeal

	// FaultPartition cuts the directed link Target→Peer only; the reverse
	// direction keeps working (the in-flight-reply failure mode).
	FaultPartition

	// FaultDelay enables a seeded time-based Delayer: each datagram is
	// detained with probability Pct% and re-enters the wire after Dur of
	// virtual time. N=0 disables an active delayer.
	FaultDelay

	// FaultTamper flips a bit in every payload the target endpoint sends,
	// modeling an on-path integrity attack against one replica. An empty
	// target disables tampering.
	FaultTamper

	// FaultSkew jumps the virtual clock forward by Dur — the sudden-NTP-step
	// event that expires every in-flight budget at once.
	FaultSkew

	// FaultDup duplicates the next N datagrams the target endpoint sends
	// (at-least-once delivery misbehavior the secure channel must absorb).
	FaultDup

	// FaultJournalTamper flips one byte in the N-th recorded journal entry
	// (0-based) — an attacker mutating the black box at rest. The auditor
	// invariant must detect it on every subsequent replay; a no-op when
	// the journal has no such entry yet.
	FaultJournalTamper

	// FaultJoin admits a freshly built replica under the target name as a
	// full config-epoch transition (Pool.Join: propose, admit, rekey every
	// member, activate). Names are single-use within one run — joining a
	// name that already has a machine (admitted, left, or quarantined) is
	// a scripted no-op, so schedules stay safe to fuzz.
	FaultJoin

	// FaultLeave removes the target replica as a full config-epoch
	// transition (Pool.Leave: drain, evict, rekey the survivors). Leaving
	// an unknown or quarantined name is refused by the pool and the fault
	// is a no-op — the quarantine record is the fleet's memory.
	FaultLeave

	// FaultShardSplit joins a new shard cell to the harness's shard
	// router, bumping the shard-map epoch and pulling ~K/N of the keyspace
	// onto the joiner. Joining a name already mapped is refused by the
	// router and the fault is a no-op, so schedules stay safe to fuzz.
	FaultShardSplit

	// FaultShardMerge removes a shard cell from the router, folding its
	// keyspace back into the ring successors. Merging an unmapped cell or
	// the last remaining cell is refused and the fault is a no-op.
	FaultShardMerge

	// FaultCoalesce arms a one-shot coalesce fault on the target replica's
	// exporter: the next coalesced record it opens has the sub-frame
	// selected by N dropped from the reply (Peer carries mode "drop") or
	// tampered before dispatch (mode "tamper"). Sibling sub-frames must be
	// unaffected — the coalesce invariant and the affected caller's typed
	// error are the assertions. Unknown replica names attack nothing.
	FaultCoalesce
)

// String returns the kind's schedule-text verb.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultHeal:
		return "heal"
	case FaultPartition:
		return "partition"
	case FaultDelay:
		return "delay"
	case FaultTamper:
		return "tamper"
	case FaultSkew:
		return "skew"
	case FaultDup:
		return "dup"
	case FaultJournalTamper:
		return "journal-tamper"
	case FaultJoin:
		return "join"
	case FaultLeave:
		return "leave"
	case FaultShardSplit:
		return "shard-split"
	case FaultShardMerge:
		return "shard-merge"
	case FaultCoalesce:
		return "coalesce"
	default:
		return "unknown"
	}
}

// Fault is one injectable event. Which fields matter depends on Kind; the
// codec below is the authoritative field-per-kind map.
type Fault struct {
	Kind   FaultKind
	Target string        // endpoint (crash/heal/tamper/dup) or link tail (partition)
	Peer   string        // link head (partition), or coalesce mode (drop/tamper)
	Dur    time.Duration // skew jump, or delay detention time
	N      int           // dup count, delay on/off (0 disables), or coalesce sub-frame index
	Seed   uint64        // delay PRNG seed
	Pct    int           // delay detention probability, percent
}

// Schedule places one fault at a virtual-time offset from simulation
// start. The explorer applies every schedule entry whose At has been
// reached before executing the next operation.
type Schedule struct {
	At    time.Duration
	Fault Fault
}

// Codec limits: schedules are adversarial inputs (fuzzed, loaded from
// files), so the decoder bounds everything it allocates or loops on.
const (
	maxScheduleLines = 4096
	maxScheduleAt    = 24 * time.Hour
	maxScheduleN     = 1 << 20
	maxScheduleName  = 128
)

// EncodeSchedule renders a schedule in its line-oriented text form:
//
//	@150ms crash svc-2
//	@200ms heal svc-2
//	@10ms partition lb-svc-1 svc-1
//	@5ms delay 7 25 2ms 1
//	@1ms tamper svc-3
//	@2ms skew 250ms
//	@0s dup svc-1 2
//	@40ms join svc-4
//	@60ms leave svc-1
//
// Decode(Encode(s)) is the identity for any schedule Validate accepts.
func EncodeSchedule(sched []Schedule) string {
	var b strings.Builder
	for _, s := range sched {
		f := s.Fault
		fmt.Fprintf(&b, "@%s %s", s.At, f.Kind)
		switch f.Kind {
		case FaultCrash, FaultJoin, FaultLeave, FaultShardSplit, FaultShardMerge:
			fmt.Fprintf(&b, " %s", f.Target)
		case FaultHeal, FaultTamper:
			if f.Target != "" {
				fmt.Fprintf(&b, " %s", f.Target)
			}
		case FaultPartition:
			fmt.Fprintf(&b, " %s %s", f.Target, f.Peer)
		case FaultDelay:
			fmt.Fprintf(&b, " %d %d %s %d", f.Seed, f.Pct, f.Dur, f.N)
		case FaultSkew:
			fmt.Fprintf(&b, " %s", f.Dur)
		case FaultDup:
			fmt.Fprintf(&b, " %s %d", f.Target, f.N)
		case FaultJournalTamper:
			fmt.Fprintf(&b, " %d", f.N)
		case FaultCoalesce:
			fmt.Fprintf(&b, " %s %s %d", f.Target, f.Peer, f.N)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DecodeSchedule parses the text form. Blank lines and #-comments are
// skipped. Every numeric and duration field is bounds-checked, so the
// decoder is safe on adversarial input (FuzzScheduleDecode's property).
func DecodeSchedule(text string) ([]Schedule, error) {
	var out []Schedule
	lines := strings.Split(text, "\n")
	if len(lines) > maxScheduleLines {
		return nil, fmt.Errorf("simtest: schedule too long (%d lines > %d)", len(lines), maxScheduleLines)
	}
	for ln, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "@") {
			return nil, fmt.Errorf("simtest: line %d: want '@<offset> <fault> ...'", ln+1)
		}
		at, err := parseDur(strings.TrimPrefix(fields[0], "@"), maxScheduleAt)
		if err != nil {
			return nil, fmt.Errorf("simtest: line %d: offset: %v", ln+1, err)
		}
		f := Fault{}
		args := fields[2:]
		switch fields[1] {
		case "crash", "join", "leave", "shard-split", "shard-merge":
			switch fields[1] {
			case "crash":
				f.Kind = FaultCrash
			case "join":
				f.Kind = FaultJoin
			case "leave":
				f.Kind = FaultLeave
			case "shard-split":
				f.Kind = FaultShardSplit
			case "shard-merge":
				f.Kind = FaultShardMerge
			}
			if len(args) != 1 {
				return nil, fmt.Errorf("simtest: line %d: %s wants 1 arg", ln+1, fields[1])
			}
			if f.Target, err = parseName(args[0]); err != nil {
				return nil, fmt.Errorf("simtest: line %d: %v", ln+1, err)
			}
		case "heal", "tamper":
			// Both take an optional target: bare heal lifts every cut,
			// bare tamper turns tampering off.
			if fields[1] == "heal" {
				f.Kind = FaultHeal
			} else {
				f.Kind = FaultTamper
			}
			switch len(args) {
			case 0:
			case 1:
				if f.Target, err = parseName(args[0]); err != nil {
					return nil, fmt.Errorf("simtest: line %d: %v", ln+1, err)
				}
			default:
				return nil, fmt.Errorf("simtest: line %d: %s wants 0 or 1 args", ln+1, fields[1])
			}
		case "partition":
			f.Kind = FaultPartition
			if len(args) != 2 {
				return nil, fmt.Errorf("simtest: line %d: partition wants 2 args", ln+1)
			}
			if f.Target, err = parseName(args[0]); err != nil {
				return nil, fmt.Errorf("simtest: line %d: %v", ln+1, err)
			}
			if f.Peer, err = parseName(args[1]); err != nil {
				return nil, fmt.Errorf("simtest: line %d: %v", ln+1, err)
			}
		case "delay":
			f.Kind = FaultDelay
			if len(args) != 4 {
				return nil, fmt.Errorf("simtest: line %d: delay wants 'seed pct dur n'", ln+1)
			}
			seed, err := strconv.ParseUint(args[0], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("simtest: line %d: seed: %v", ln+1, err)
			}
			f.Seed = seed
			if f.Pct, err = parseInt(args[1], 100); err != nil {
				return nil, fmt.Errorf("simtest: line %d: pct: %v", ln+1, err)
			}
			if f.Dur, err = parseDur(args[2], maxScheduleAt); err != nil {
				return nil, fmt.Errorf("simtest: line %d: dur: %v", ln+1, err)
			}
			if f.N, err = parseInt(args[3], maxScheduleN); err != nil {
				return nil, fmt.Errorf("simtest: line %d: n: %v", ln+1, err)
			}
		case "skew":
			f.Kind = FaultSkew
			if len(args) != 1 {
				return nil, fmt.Errorf("simtest: line %d: skew wants 1 arg", ln+1)
			}
			if f.Dur, err = parseDur(args[0], maxScheduleAt); err != nil {
				return nil, fmt.Errorf("simtest: line %d: %v", ln+1, err)
			}
		case "dup":
			f.Kind = FaultDup
			if len(args) != 2 {
				return nil, fmt.Errorf("simtest: line %d: dup wants 2 args", ln+1)
			}
			if f.Target, err = parseName(args[0]); err != nil {
				return nil, fmt.Errorf("simtest: line %d: %v", ln+1, err)
			}
			if f.N, err = parseInt(args[1], maxScheduleN); err != nil {
				return nil, fmt.Errorf("simtest: line %d: %v", ln+1, err)
			}
		case "journal-tamper":
			f.Kind = FaultJournalTamper
			if len(args) != 1 {
				return nil, fmt.Errorf("simtest: line %d: journal-tamper wants 1 arg", ln+1)
			}
			if f.N, err = parseInt(args[0], maxScheduleN); err != nil {
				return nil, fmt.Errorf("simtest: line %d: %v", ln+1, err)
			}
		case "coalesce":
			f.Kind = FaultCoalesce
			if len(args) != 3 {
				return nil, fmt.Errorf("simtest: line %d: coalesce wants 'target mode n'", ln+1)
			}
			if f.Target, err = parseName(args[0]); err != nil {
				return nil, fmt.Errorf("simtest: line %d: %v", ln+1, err)
			}
			if args[1] != "drop" && args[1] != "tamper" {
				return nil, fmt.Errorf("simtest: line %d: coalesce mode %q (want drop or tamper)", ln+1, args[1])
			}
			f.Peer = args[1]
			if f.N, err = parseInt(args[2], maxScheduleN); err != nil {
				return nil, fmt.Errorf("simtest: line %d: %v", ln+1, err)
			}
		default:
			return nil, fmt.Errorf("simtest: line %d: unknown fault %q", ln+1, fields[1])
		}
		out = append(out, Schedule{At: at, Fault: f})
	}
	return out, nil
}

// Validate checks a schedule built in code against the same bounds the
// decoder enforces, so Encode/Decode roundtrips exactly.
func Validate(sched []Schedule) error {
	if len(sched) > maxScheduleLines {
		return fmt.Errorf("simtest: schedule too long")
	}
	enc := EncodeSchedule(sched)
	dec, err := DecodeSchedule(enc)
	if err != nil {
		return err
	}
	if EncodeSchedule(dec) != enc {
		return fmt.Errorf("simtest: schedule does not roundtrip")
	}
	return nil
}

// SortSchedule orders entries by At (stable, so same-instant faults keep
// their script order). The explorer requires sorted schedules.
func SortSchedule(sched []Schedule) {
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].At < sched[j].At })
}

func parseDur(s string, max time.Duration) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d < 0 || d > max {
		return 0, fmt.Errorf("duration %s out of range [0, %s]", d, max)
	}
	return d, nil
}

func parseInt(s string, max int) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if n < 0 || n > max {
		return 0, fmt.Errorf("count %d out of range [0, %d]", n, max)
	}
	return n, nil
}

func parseName(s string) (string, error) {
	if len(s) > maxScheduleName {
		return "", fmt.Errorf("name too long (%d > %d)", len(s), maxScheduleName)
	}
	for _, r := range s {
		if r == '#' || r == '@' || r <= ' ' || r > '~' {
			return "", fmt.Errorf("name %q has invalid characters", s)
		}
	}
	return s, nil
}
