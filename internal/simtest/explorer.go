package simtest

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"lateral/internal/core"
)

// rng is a splitmix64 stream — the explorer's only randomness source, so
// one seed is one exact operation sequence.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// ExploreConfig parameterizes one simulated run.
type ExploreConfig struct {
	// Seed fixes the deployment and the operation sequence.
	Seed uint64

	// Ops is how many operations the run executes (default 24).
	Ops int

	// Replicas sizes the fleet (default 3).
	Replicas int

	// Schedule is the scripted fault sequence (sorted by At; entries are
	// applied once their At is reached). Nil runs fault-free.
	Schedule []Schedule

	// Buggy builds the harness with the deliberate serialization
	// mutation, for the smoke test that proves checkers catch it.
	Buggy bool

	// Sharded routes the operation mix through the harness's shard
	// router — single readings and batch frames against tenant/meter
	// keys — so the shard-placement invariant sees live traffic across
	// shard-split/shard-merge rebalances.
	Sharded bool
}

// Result is one run's outcome: the byte-exact event trace and every
// invariant violation found.
type Result struct {
	Seed       uint64
	Ops        int
	Faults     int
	Violations []Violation
	Trace      []string
}

// TraceBytes returns the canonical trace rendering — the byte string the
// replay determinism criterion compares.
func (r *Result) TraceBytes() string { return strings.Join(r.Trace, "\n") + "\n" }

// Failed reports whether any invariant was violated.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// Explore runs one seeded simulation: a fresh deployment, Ops random
// operations interleaved with the scripted schedule, every invariant
// checked after every step. Identical configs produce byte-identical
// traces — the whole stack runs on the virtual clock and the operation
// stream is a pure function of the seed.
func Explore(cfg ExploreConfig) (*Result, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 24
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	sched := make([]Schedule, len(cfg.Schedule))
	copy(sched, cfg.Schedule)
	SortSchedule(sched)

	h, err := NewHarness(HarnessConfig{Replicas: cfg.Replicas, Seed: cfg.Seed, Buggy: cfg.Buggy})
	if err != nil {
		return nil, err
	}
	res := &Result{Seed: cfg.Seed, Ops: cfg.Ops}
	r := &rng{state: cfg.Seed}
	trace := func(format string, args ...any) {
		line := fmt.Sprintf("t=%-8s %s", h.Clock.Elapsed(), fmt.Sprintf(format, args...))
		res.Trace = append(res.Trace, line)
	}
	check := func(step string) {
		if v := h.CheckAll(); len(v) > 0 && !res.Failed() {
			for _, violation := range v {
				trace("VIOLATION after %s: %s", step, violation)
			}
			res.Violations = v
		}
	}

	trace("start seed=%d replicas=%d ops=%d faults=%d", cfg.Seed, cfg.Replicas, cfg.Ops, len(sched))
	nextFault := 0
	for i := 0; i < cfg.Ops; i++ {
		// Apply every scheduled fault whose time has come.
		for nextFault < len(sched) && sched[nextFault].At <= h.Clock.Elapsed() {
			f := sched[nextFault].Fault
			trace("fault %s target=%q peer=%q dur=%s n=%d", f.Kind, f.Target, f.Peer, f.Dur, f.N)
			h.Apply(f)
			res.Faults++
			nextFault++
		}

		id := fmt.Sprintf("op-%04d", i)
		key := fmt.Sprintf("key-%02d", r.intn(16))
		if cfg.Sharded {
			// Sharded mix: tenant/meter-keyed readings through the router.
			tenant := fmt.Sprintf("tenant-%d", r.intn(4))
			key = fmt.Sprintf("%s/meter-%02d", tenant, r.intn(16))
			switch r.intn(12) {
			case 0, 1: // batch frame: many readings, one sealed datagram
				n := 2 + r.intn(7)
				budget := time.Duration(5+r.intn(20)) * time.Millisecond
				err := h.CallShardBatch(id, tenant, key, n, budget)
				trace("step=%d shard-batch key=%s n=%d budget=%s -> %s", i, key, n, budget, outcome(err))
			case 2: // unbounded reading
				err := h.CallShardWork(id, tenant, key, 0)
				trace("step=%d shard-call key=%s budget=none -> %s", i, key, outcome(err))
			case 3: // idle time: health intervals and delayer holds elapse
				d := time.Duration(1+r.intn(20)) * time.Millisecond
				h.Clock.Advance(d)
				trace("step=%d advance %s", i, d)
			default: // budgeted reading, the common case
				budget := time.Duration(1+r.intn(20)) * time.Millisecond
				err := h.CallShardWork(id, tenant, key, budget)
				trace("step=%d shard-call key=%s budget=%s -> %s", i, key, budget, outcome(err))
			}
			check(fmt.Sprintf("step %d", i))
			continue
		}
		switch r.intn(12) {
		case 0, 1: // wedged handler under budget: watchdog must contain it
			budget := time.Duration(1+r.intn(10)) * time.Millisecond
			err := h.CallStall(id, key, budget)
			trace("step=%d stall key=%s budget=%s -> %s", i, key, budget, outcome(err))
		case 2: // unbounded call: the pre-backpressure fast path
			err := h.CallWork(id, key, 0)
			trace("step=%d call key=%s budget=none -> %s", i, key, outcome(err))
		case 10, 11: // mosaic attack: tainted egress, the policy must deny
			err := h.CallExfil(id, key)
			trace("step=%d exfil key=%s -> %s", i, key, outcome(err))
		case 3: // idle time: health intervals and delayer holds elapse
			d := time.Duration(1+r.intn(20)) * time.Millisecond
			h.Clock.Advance(d)
			trace("step=%d advance %s", i, d)
		default: // budgeted call, the common case
			budget := time.Duration(1+r.intn(20)) * time.Millisecond
			err := h.CallWork(id, key, budget)
			trace("step=%d call key=%s budget=%s -> %s", i, key, budget, outcome(err))
		}
		check(fmt.Sprintf("step %d", i))
	}
	// Fire any faults scheduled past the last op, then quiesce and do the
	// final sweep so late schedule entries are still covered.
	for nextFault < len(sched) {
		f := sched[nextFault].Fault
		trace("fault %s target=%q peer=%q dur=%s n=%d", f.Kind, f.Target, f.Peer, f.Dur, f.N)
		h.Apply(f)
		res.Faults++
		nextFault++
	}
	h.Quiesce()
	check("quiesce")
	trace("end healthy=%d quarantined=%d", h.Pool.Healthy(), h.Pool.Quarantined())
	return res, nil
}

// outcome maps an operation error to its stable trace label. Labels, not
// error strings, go into the trace: they are the deterministic contract.
func outcome(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, core.ErrDeadline):
		return "deadline"
	case errors.Is(err, core.ErrCanceled):
		return "canceled"
	case errors.Is(err, core.ErrOverloaded):
		return "overloaded"
	case errors.Is(err, core.ErrPolicy):
		return "denied"
	default:
		return "failed"
	}
}

// DefaultSchedule returns the mixed-fault script the soak and experiment
// runs use when the caller does not bring one: a crash with heal, a
// one-way partition with heal, congestion, tampering (which quarantines),
// clock skew, and duplication — every fault kind, composed.
func DefaultSchedule(replicas int) []Schedule {
	if replicas < 2 {
		replicas = 2
	}
	r1, r2 := ReplicaName(1), ReplicaName(2)
	return []Schedule{
		{At: 2 * time.Millisecond, Fault: Fault{Kind: FaultDup, Target: r1, N: 2}},
		{At: 5 * time.Millisecond, Fault: Fault{Kind: FaultCrash, Target: r2}},
		{At: 12 * time.Millisecond, Fault: Fault{Kind: FaultHeal, Target: r2}},
		{At: 18 * time.Millisecond, Fault: Fault{Kind: FaultDelay, Seed: 7, Pct: 25, Dur: 3 * time.Millisecond, N: 1}},
		{At: 30 * time.Millisecond, Fault: Fault{Kind: FaultDelay, N: 0}},
		{At: 34 * time.Millisecond, Fault: Fault{Kind: FaultSkew, Dur: 250 * time.Millisecond}},
		{At: 300 * time.Millisecond, Fault: Fault{Kind: FaultTamper, Target: r1}},
		{At: 320 * time.Millisecond, Fault: Fault{Kind: FaultHeal, Target: r1}},
		{At: 330 * time.Millisecond, Fault: Fault{Kind: FaultTamper}},
		{At: 340 * time.Millisecond, Fault: Fault{Kind: FaultJournalTamper, N: 3}},
	}
}

// ShardSchedule returns the sharded-fabric script the shard soak runs:
// splits growing the fabric and merges shrinking it, threaded through
// crashes, duplication, congestion, and clock skew — every reading in
// flight across each rebalance is audited by the shard-placement
// invariant (routed where the current map says, never double-counted).
func ShardSchedule(replicas int) []Schedule {
	if replicas < 2 {
		replicas = 2
	}
	r1, r2 := ReplicaName(1), ReplicaName(2)
	return []Schedule{
		{At: 2 * time.Millisecond, Fault: Fault{Kind: FaultDup, Target: r1, N: 2}},
		{At: 6 * time.Millisecond, Fault: Fault{Kind: FaultShardSplit, Target: CellName(3)}},
		{At: 10 * time.Millisecond, Fault: Fault{Kind: FaultCrash, Target: r2}},
		{At: 16 * time.Millisecond, Fault: Fault{Kind: FaultHeal, Target: r2}},
		{At: 22 * time.Millisecond, Fault: Fault{Kind: FaultShardMerge, Target: CellName(1)}},
		{At: 26 * time.Millisecond, Fault: Fault{Kind: FaultDelay, Seed: 13, Pct: 25, Dur: 3 * time.Millisecond, N: 1}},
		{At: 38 * time.Millisecond, Fault: Fault{Kind: FaultDelay, N: 0}},
		{At: 42 * time.Millisecond, Fault: Fault{Kind: FaultSkew, Dur: 250 * time.Millisecond}},
		{At: 60 * time.Millisecond, Fault: Fault{Kind: FaultShardSplit, Target: CellName(4)}},
		// Refused transitions must be no-ops on both the router and the
		// checker's shadow: a duplicate split and a merge of an unmapped cell.
		{At: 70 * time.Millisecond, Fault: Fault{Kind: FaultShardSplit, Target: CellName(3)}},
		{At: 80 * time.Millisecond, Fault: Fault{Kind: FaultShardMerge, Target: CellName(1)}},
		{At: 300 * time.Millisecond, Fault: Fault{Kind: FaultShardMerge, Target: CellName(2)}},
	}
}

// EpochSchedule returns the dynamic-membership script the epoch soak
// runs: a rolling replace (join a fresh member, drain an original out)
// threaded through crashes, duplication, congestion, and clock skew, then
// a tamper-quarantine followed by a leave the pool must refuse — the
// quarantine record is fleet memory, and the epoch-membership invariant
// watches every step for calls reaching evicted or stale-keyed members.
func EpochSchedule(replicas int) []Schedule {
	if replicas < 2 {
		replicas = 2
	}
	r1, r2 := ReplicaName(1), ReplicaName(2)
	joiner := ReplicaName(replicas + 1)
	return []Schedule{
		{At: 2 * time.Millisecond, Fault: Fault{Kind: FaultDup, Target: r1, N: 2}},
		{At: 6 * time.Millisecond, Fault: Fault{Kind: FaultJoin, Target: joiner}},
		{At: 10 * time.Millisecond, Fault: Fault{Kind: FaultCrash, Target: r2}},
		{At: 16 * time.Millisecond, Fault: Fault{Kind: FaultHeal, Target: r2}},
		{At: 22 * time.Millisecond, Fault: Fault{Kind: FaultLeave, Target: r1}},
		{At: 26 * time.Millisecond, Fault: Fault{Kind: FaultDelay, Seed: 11, Pct: 25, Dur: 3 * time.Millisecond, N: 1}},
		{At: 38 * time.Millisecond, Fault: Fault{Kind: FaultDelay, N: 0}},
		{At: 42 * time.Millisecond, Fault: Fault{Kind: FaultSkew, Dur: 250 * time.Millisecond}},
		{At: 300 * time.Millisecond, Fault: Fault{Kind: FaultTamper, Target: r2}},
		{At: 320 * time.Millisecond, Fault: Fault{Kind: FaultHeal, Target: r2}},
		{At: 330 * time.Millisecond, Fault: Fault{Kind: FaultTamper}},
		{At: 335 * time.Millisecond, Fault: Fault{Kind: FaultLeave, Target: r2}},
	}
}
