package simtest

import (
	"testing"

	"lateral/internal/cluster"
)

// TestEpochSoak is the dynamic-membership soak: across many seeds, the
// epoch schedule rolls the fleet (join a fresh member, drain originals
// out, refuse a quarantined leave) under crashes, duplication, congestion,
// and clock skew, and every invariant — including the eighth, no call
// completing against an evicted or stale-keyed replica — must hold on
// every seed. `make epoch-soak` runs this over 500 seeds (-simtest.soak);
// plain `go test` covers a smaller batch.
func TestEpochSoak(t *testing.T) {
	seeds := 25
	if *soakFlag > 0 {
		seeds = *soakFlag
	} else if testing.Short() {
		seeds = 5
	}
	for seed := 1; seed <= seeds; seed++ {
		res, err := Explore(ExploreConfig{Seed: uint64(seed), Ops: 30, Replicas: 3, Schedule: EpochSchedule(3)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Failed() {
			t.Fatalf("seed %d violated invariants (replay with -simtest.seed=%d):\n%s",
				seed, seed, res.TraceBytes())
		}
	}
}

// TestEpochScheduleTransitions pins the schedule's effect on one seed:
// the fleet actually rotates (the joiner is admitted and keyed at the
// active epoch, a departed original is gone), the pool's epoch advanced,
// and the journal's replayed membership history shows every transition.
func TestEpochScheduleTransitions(t *testing.T) {
	h, err := NewHarness(HarnessConfig{Replicas: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Pool.Epoch(); got != 0 {
		t.Fatalf("fresh fleet at epoch %d, want 0", got)
	}
	h.Apply(Fault{Kind: FaultJoin, Target: ReplicaName(4)})
	if got := h.Pool.Epoch(); got != 1 {
		t.Fatalf("after join: epoch %d, want 1", got)
	}
	h.Apply(Fault{Kind: FaultLeave, Target: ReplicaName(1)})
	if got := h.Pool.Epoch(); got != 2 {
		t.Fatalf("after leave: epoch %d, want 2", got)
	}
	var joiner *cluster.ReplicaInfo
	fleet := h.Pool.Replicas()
	for i, r := range fleet {
		if r.Name == ReplicaName(1) {
			t.Fatalf("departed %s still in fleet", r.Name)
		}
		if r.Name == ReplicaName(4) {
			joiner = &fleet[i]
		}
	}
	if joiner == nil {
		t.Fatal("joiner missing from fleet")
	}
	if joiner.State != cluster.StateHealthy || joiner.Epoch != 2 {
		t.Fatalf("joiner %s epoch %d, want healthy at epoch 2", joiner.State, joiner.Epoch)
	}
	if err := h.CallWork("op-1", "key-a", 0); err != nil {
		t.Fatalf("CallWork on rotated fleet: %v", err)
	}
	if v := h.CheckAll(); len(v) != 0 {
		t.Fatalf("invariant violations after rotation: %v", v)
	}
}
