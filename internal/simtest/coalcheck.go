package simtest

// The tenth invariant: coalesced-record accounting. The distributed
// stub's frame coalescer lets concurrent callers share one sealed wire
// record, so the books it keeps are the proof that sharing never loses or
// duplicates a call: every issued call's request frame is sealed exactly
// once (alone in a plain record or as one sub-frame of a coalesced
// record), every coalesced record carries at least two sub-frames, and —
// combined with the pipeline checker's Issued == Completed + Failed
// equation — every sub-frame of a coalesced record completes exactly once
// or its caller sees a typed error.

import (
	"fmt"

	"lateral/internal/cluster"
)

// CoalesceChecker audits the per-stub coalescing counters across the
// fleet. Let plain = Records - CoalescedRecords; then the sub-frames the
// stub ever sealed is subs = plain + CoalescedSubs, and at any quiescent
// observation:
//
//	Completed <= subs <= Issued
//
// subs > Issued means some call's frame was flushed twice (a duplicate
// the remote would execute twice); subs < Completed means a call
// completed whose frame was never sealed (a reply conjured from
// nothing). Records below CoalescedRecords or a coalesced record with
// fewer than two sub-frames are bookkeeping corruption outright. Stubs
// with calls still in flight are skipped — the counters are only
// consistent at a quiesce point, which is when the explorer and the
// coalesce soak run checks.
type CoalesceChecker struct {
	snapshot func() []cluster.ReplicaInfo
}

// NewCoalesceChecker builds the checker over a fleet snapshot function
// (typically pool.Replicas).
func NewCoalesceChecker(snapshot func() []cluster.ReplicaInfo) *CoalesceChecker {
	return &CoalesceChecker{snapshot: snapshot}
}

// Name implements Checker.
func (c *CoalesceChecker) Name() string { return "coalesce-exactly-once" }

// Check implements Checker.
func (c *CoalesceChecker) Check() []Violation {
	var out []Violation
	for _, r := range c.snapshot() {
		st := r.Stub
		if st.Inflight != 0 {
			// Not quiescent: a caller between its issue and its flush makes
			// the counters legitimately unbalanced.
			continue
		}
		if st.CoalescedRecords > st.Records {
			out = append(out, Violation{
				Invariant: c.Name(),
				Detail: fmt.Sprintf("replica %s: %d coalesced records exceed %d records sealed",
					r.Name, st.CoalescedRecords, st.Records),
			})
			continue
		}
		if st.CoalescedSubs < 2*st.CoalescedRecords {
			out = append(out, Violation{
				Invariant: c.Name(),
				Detail: fmt.Sprintf("replica %s: %d coalesced records carried only %d sub-frames (want >= 2 each)",
					r.Name, st.CoalescedRecords, st.CoalescedSubs),
			})
		}
		subs := (st.Records - st.CoalescedRecords) + st.CoalescedSubs
		if subs > st.Issued {
			out = append(out, Violation{
				Invariant: c.Name(),
				Detail: fmt.Sprintf("replica %s: %d sub-frames sealed for %d issued calls (a frame flushed twice)",
					r.Name, subs, st.Issued),
			})
		}
		if subs < st.Completed {
			out = append(out, Violation{
				Invariant: c.Name(),
				Detail: fmt.Sprintf("replica %s: %d calls completed but only %d sub-frames were ever sealed",
					r.Name, st.Completed, subs),
			})
		}
	}
	return out
}
