// Package simtest is the deterministic simulation harness: a seeded
// virtual clock, a scripted fault-schedule DSL, invariant checkers, and a
// random-operation explorer with seed replay and failing-schedule
// minimization (FoundationDB-style simulation testing, scaled to this
// repo). The paper's containment claims — serialization, budget
// monotonicity, absorbing quarantine, telemetry conservation — become
// machine-checked properties explored across thousands of seeded fault
// interleavings instead of one wall-clock interleaving per test run.
package simtest

import (
	"runtime"
	"sync"
	"time"
)

// Epoch is the fixed instant every simulation starts at. It is far from
// the zero time (so IsZero-means-unbounded logic is never tripped) and
// identical across runs, which is what makes event traces byte-identical.
var Epoch = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)

// Clock is a deterministic virtual time source. It satisfies core.Clock
// (Now + After) and netsim.Clock (Now) structurally, and its Sleep/Now
// methods slot straight into cluster.Config's func seams — one clock
// drives the whole stack.
//
// Time only moves when the simulation driver advances it: Advance steps
// the clock to each armed timer's deadline in order before firing it, so
// every timer observes a consistent Now and firing order is a pure
// function of the arming order. Sleep (the cluster backoff seam) advances
// the clock itself: in a simulation the sleeping goroutine is the actor
// whose waiting IS the passage of time.
type Clock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*simTimer
	seq    uint64
}

type simTimer struct {
	at    time.Time
	seq   uint64
	ch    chan time.Time
	fired bool
}

// NewClock builds a virtual clock at Epoch, offset by skew. Schedules use
// a nonzero skew to model machines whose clocks disagree; most harnesses
// pass 0.
func NewClock(skew time.Duration) *Clock {
	return &Clock{now: Epoch.Add(skew)}
}

// Now returns the current virtual instant.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After arms a virtual timer: the returned channel receives once the
// clock has been advanced past d from now. A non-positive d fires
// immediately, matching time.NewTimer. The stop function disarms the
// timer and reports whether it was still pending.
func (c *Clock) After(d time.Duration) (<-chan time.Time, func() bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &simTimer{at: c.now.Add(d), seq: c.seq, ch: make(chan time.Time, 1)}
	c.seq++
	if d <= 0 {
		t.fired = true
		t.ch <- c.now
		return t.ch, func() bool { return false }
	}
	c.timers = append(c.timers, t)
	stop := func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		for i, tt := range c.timers {
			if tt == t {
				c.timers = append(c.timers[:i], c.timers[i+1:]...)
				return true
			}
		}
		return false
	}
	return t.ch, stop
}

// Sleep advances virtual time by d. It is the drop-in for
// cluster.Config.Sleep: the pool's backoff sleeps become instantaneous
// clock advances, deterministic and free of wall-clock flake.
func (c *Clock) Sleep(d time.Duration) { c.Advance(d) }

// Advance moves virtual time forward by d, firing due timers in deadline
// order (ties broken by arming order).
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	c.mu.Unlock()
	c.AdvanceTo(target)
}

// AdvanceTo moves virtual time forward to target (no-op if target is in
// the past), firing every timer due on the way. The clock steps to each
// timer's deadline before delivering it, so a timer callback that reads
// Now sees exactly its own deadline.
func (c *Clock) AdvanceTo(target time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		idx := -1
		for i, t := range c.timers {
			if t.at.After(target) {
				continue
			}
			if idx < 0 || t.at.Before(c.timers[idx].at) ||
				(t.at.Equal(c.timers[idx].at) && t.seq < c.timers[idx].seq) {
				idx = i
			}
		}
		if idx < 0 {
			break
		}
		t := c.timers[idx]
		c.timers = append(c.timers[:idx], c.timers[idx+1:]...)
		if t.at.After(c.now) {
			c.now = t.at
		}
		t.fired = true
		t.ch <- c.now
	}
	if target.After(c.now) {
		c.now = target
	}
}

// Pending reports how many timers are armed and not yet fired.
func (c *Clock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

// WaitTimers blocks (yielding the scheduler) until at least n timers are
// armed. Simulation drivers use it to synchronize with a watchdog that
// arms its expiry on another goroutine before advancing time past it.
func (c *Clock) WaitTimers(n int) {
	for {
		c.mu.Lock()
		got := len(c.timers)
		c.mu.Unlock()
		if got >= n {
			return
		}
		runtime.Gosched()
	}
}

// Elapsed returns how much virtual time has passed since Epoch (plus any
// initial skew) — the timestamp event traces print.
func (c *Clock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now.Sub(Epoch)
}
