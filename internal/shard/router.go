package shard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lateral/internal/cluster"
	"lateral/internal/core"
	"lateral/internal/distributed"
)

// KindShardAssign is the journal event kind for shard-map transitions.
// Actor is fleet/shard; detail is "epoch=N join|leave" so the auditor's
// epoch parser reads placement history straight out of an export.
const KindShardAssign = "shard-assign"

// Monitor is the structural telemetry hook (implemented by
// telemetry.Metrics, declared here rather than imported — the same
// inversion cluster.Monitor uses). Implementations must be safe for
// concurrent use.
type Monitor interface {
	// ShardMembership reports a shard-map transition: the new epoch and
	// the mapped shard count after it.
	ShardMembership(fleet string, epoch uint64, shards int)
	// ShardRoute reports readings routed to a shard: n=1 for a single
	// call, n=len(batch) for a batch.
	ShardRoute(fleet, shard string, readings int)
	// ShardBatch reports one batched dispatch of n readings.
	ShardBatch(fleet, shard string, readings int)
	// ShardQuotaDeny reports a tenant refused at its admission quota.
	ShardQuotaDeny(fleet, tenant string)
}

type nopMonitor struct{}

func (nopMonitor) ShardMembership(string, uint64, int) {}
func (nopMonitor) ShardRoute(string, string, int)      {}
func (nopMonitor) ShardBatch(string, string, int)      {}
func (nopMonitor) ShardQuotaDeny(string, string)       {}

// EventRecorder is the structural journal hook, identical in shape to
// cluster.EventRecorder.
type EventRecorder interface {
	RecordEvent(kind, actor, detail string, trace, span uint64)
}

// Backend is the dispatch surface one shard's pool exposes to the
// router; *cluster.Pool satisfies it. Routing against the interface
// keeps quota/placement logic testable without standing up a fleet.
type Backend interface {
	DoDeadline(key string, msg core.Message, deadline time.Time) (core.Message, error)
	DoBatch(key string, readings []distributed.Reading, results []distributed.BatchResult, deadline time.Time) ([]distributed.BatchResult, error)
	Healthy() int
	Replicas() []cluster.ReplicaInfo
}

// Config parameterizes a Router.
type Config struct {
	// Fleet labels this shard fabric in telemetry and journal events.
	// Default "shards".
	Fleet string

	// Vnodes is the ring points per shard; <= 0 selects DefaultVnodes.
	Vnodes int

	// TenantQuota bounds a single tenant's in-flight readings across the
	// whole fabric, layered above each pool's SetAdmissionLimit: the pool
	// limit protects a replica from everyone, the tenant quota protects
	// everyone from one tenant. 0 means unbounded.
	TenantQuota int

	// Monitor receives routing/quota/membership telemetry. Optional.
	Monitor Monitor

	// Journal records shard-assign events. Optional.
	Journal EventRecorder
}

// Router owns the shard map and the pools behind it: it routes every
// tenant/meter key to the pool the current epoch assigns, enforces
// per-tenant quotas before any pool work, and rebalances on Join/Leave
// with the map's ~K/N movement guarantee.
type Router struct {
	cfg Config

	mu     sync.RWMutex
	m      *Map
	pools  map[string]Backend
	routed map[string]*atomic.Int64 // per-shard readings routed

	tmu     sync.Mutex
	tenants map[string]*tenantGate
}

type tenantGate struct {
	inflight atomic.Int64
	denied   atomic.Int64
}

// NewRouter builds an empty router; shards join via Join.
func NewRouter(cfg Config) *Router {
	if cfg.Fleet == "" {
		cfg.Fleet = "shards"
	}
	if cfg.Monitor == nil {
		cfg.Monitor = nopMonitor{}
	}
	return &Router{
		cfg:     cfg,
		m:       NewMap(cfg.Vnodes),
		pools:   make(map[string]Backend),
		routed:  make(map[string]*atomic.Int64),
		tenants: make(map[string]*tenantGate),
	}
}

// Epoch returns the shard map's configuration epoch.
func (rt *Router) Epoch() uint64 {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.m.Epoch()
}

// Size returns the number of shards mapped.
func (rt *Router) Size() int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.m.Size()
}

// Members returns the mapped shard names, sorted.
func (rt *Router) Members() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.m.Members()
}

// Owner returns the shard the current epoch assigns key to ("" if none).
func (rt *Router) Owner(key string) string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.m.Owner(key)
}

// Join maps a shard backed by pool, bumping the map epoch. ~K/N of the
// keyspace moves onto the joiner; nothing else is reassigned.
func (rt *Router) Join(shard string, pool Backend) error {
	if pool == nil {
		return fmt.Errorf("shard %s: nil pool for %s", rt.cfg.Fleet, shard)
	}
	rt.mu.Lock()
	if err := rt.m.Add(shard); err != nil {
		rt.mu.Unlock()
		return err
	}
	rt.pools[shard] = pool
	rt.routed[shard] = new(atomic.Int64)
	epoch, size := rt.m.Epoch(), rt.m.Size()
	rt.mu.Unlock()
	rt.record(shard, epoch, "join")
	rt.cfg.Monitor.ShardMembership(rt.cfg.Fleet, epoch, size)
	return nil
}

// Leave unmaps a shard, bumping the map epoch. Its keyspace redistributes
// to ring successors; removing the last shard is refused (ErrLastShard).
// The departed pool is returned so the caller can drain or close it.
func (rt *Router) Leave(shard string) (Backend, error) {
	rt.mu.Lock()
	if err := rt.m.Remove(shard); err != nil {
		rt.mu.Unlock()
		return nil, err
	}
	pool := rt.pools[shard]
	delete(rt.pools, shard)
	delete(rt.routed, shard)
	epoch, size := rt.m.Epoch(), rt.m.Size()
	rt.mu.Unlock()
	rt.record(shard, epoch, "leave")
	rt.cfg.Monitor.ShardMembership(rt.cfg.Fleet, epoch, size)
	return pool, nil
}

func (rt *Router) record(shard string, epoch uint64, action string) {
	if rt.cfg.Journal != nil {
		rt.cfg.Journal.RecordEvent(KindShardAssign, rt.cfg.Fleet+"/"+shard,
			fmt.Sprintf("epoch=%d %s", epoch, action), 0, 0)
	}
}

// Do routes one reading with no deadline.
func (rt *Router) Do(tenant, key string, msg core.Message) (core.Message, error) {
	return rt.DoDeadline(tenant, key, msg, time.Time{})
}

// DoDeadline routes one reading for tenant to the shard owning key. The
// tenant quota is checked before any pool work: an exhausted tenant is
// refused with a core.ErrOverloaded-typed error without touching a
// replica — no retry is burned, no failover provoked.
func (rt *Router) DoDeadline(tenant, key string, msg core.Message, deadline time.Time) (core.Message, error) {
	release, err := rt.admitTenant(tenant, 1)
	if err != nil {
		return core.Message{}, err
	}
	defer release()
	shard, pool, err := rt.route(key, 1)
	if err != nil {
		return core.Message{}, err
	}
	rt.cfg.Monitor.ShardRoute(rt.cfg.Fleet, shard, 1)
	return pool.DoDeadline(key, msg, deadline)
}

// DoBatch routes a batch of readings for tenant to the shard owning key
// (one tenant's meters batch together; the key — typically the tenant or
// meter ID — picks the shard for the whole frame, so one sealed datagram
// carries all of them through a single AEAD pass per hop). The tenant
// quota charges the full batch size up front; results follows the
// distributed.BatchResult contract.
func (rt *Router) DoBatch(tenant, key string, readings []distributed.Reading, results []distributed.BatchResult, deadline time.Time) ([]distributed.BatchResult, error) {
	release, err := rt.admitTenant(tenant, len(readings))
	if err != nil {
		return results, err
	}
	defer release()
	shard, pool, err := rt.route(key, len(readings))
	if err != nil {
		return results, err
	}
	rt.cfg.Monitor.ShardRoute(rt.cfg.Fleet, shard, len(readings))
	rt.cfg.Monitor.ShardBatch(rt.cfg.Fleet, shard, len(readings))
	return pool.DoBatch(key, readings, results, deadline)
}

// route resolves key to its owning shard and pool under the current
// epoch, charging the per-shard routed counter.
func (rt *Router) route(key string, readings int) (string, Backend, error) {
	rt.mu.RLock()
	shard := rt.m.Owner(key)
	pool := rt.pools[shard]
	counter := rt.routed[shard]
	rt.mu.RUnlock()
	if shard == "" || pool == nil {
		return "", nil, ErrNoShards
	}
	counter.Add(int64(readings))
	return shard, pool, nil
}

// admitTenant charges n readings against tenant's quota, returning the
// release closure, or a typed overload refusal if the quota is exhausted.
func (rt *Router) admitTenant(tenant string, n int) (func(), error) {
	if rt.cfg.TenantQuota <= 0 {
		return func() {}, nil
	}
	g := rt.gate(tenant)
	if g.inflight.Add(int64(n)) > int64(rt.cfg.TenantQuota) {
		g.inflight.Add(int64(-n))
		g.denied.Add(1)
		rt.cfg.Monitor.ShardQuotaDeny(rt.cfg.Fleet, tenant)
		return nil, fmt.Errorf("shard %s: tenant %s over quota %d: %w",
			rt.cfg.Fleet, tenant, rt.cfg.TenantQuota, core.ErrOverloaded)
	}
	return func() { g.inflight.Add(int64(-n)) }, nil
}

func (rt *Router) gate(tenant string) *tenantGate {
	rt.tmu.Lock()
	defer rt.tmu.Unlock()
	g := rt.tenants[tenant]
	if g == nil {
		g = &tenantGate{}
		rt.tenants[tenant] = g
	}
	return g
}

// Info is one shard's routing snapshot.
type Info struct {
	Name     string
	Healthy  int
	Replicas int
	Routed   int64 // readings routed since join
}

// Shards snapshots the fabric, sorted by shard name.
func (rt *Router) Shards() []Info {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]Info, 0, len(rt.pools))
	for name, pool := range rt.pools {
		out = append(out, Info{
			Name:     name,
			Healthy:  pool.Healthy(),
			Replicas: len(pool.Replicas()),
			Routed:   rt.routed[name].Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TenantStat is one tenant's quota snapshot.
type TenantStat struct {
	Tenant   string
	Inflight int64
	Denied   int64
}

// Tenants snapshots per-tenant quota state, sorted by tenant.
func (rt *Router) Tenants() []TenantStat {
	rt.tmu.Lock()
	defer rt.tmu.Unlock()
	out := make([]TenantStat, 0, len(rt.tenants))
	for name, g := range rt.tenants {
		out = append(out, TenantStat{
			Tenant:   name,
			Inflight: g.inflight.Load(),
			Denied:   g.denied.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
