package shard

import (
	"errors"
	"sync"
	"time"

	"lateral/internal/core"
	"lateral/internal/distributed"
)

// Batcher accumulates one tenant's readings and flushes them through
// Router.DoBatch in frames sized by the adaptive window controller the
// distributed layer's frame coalescer uses — replacing the fixed
// 256-reading frame the first sharded fleet shipped with. The controller
// grows the frame while arrivals saturate it (AIMD additive increase,
// slow-start doubling under backlog) and halves it when the fabric sheds
// (a quota refusal or deadline verdict), so frame size tracks the
// observed arrival rate instead of a hand-tuned constant: slow meters pay
// near-zero latency, hot tenants amortize one AEAD pass over ever-larger
// frames, and an overloaded shard immediately sees smaller frames.
//
// A Batcher is safe for concurrent use; frames never mix routing keys
// (a frame lands on one shard), so a key change flushes the frame in
// progress.
type Batcher struct {
	rt     *Router
	tenant string
	win    *distributed.WindowController

	mu      sync.Mutex
	key     string
	pending []distributed.Reading
	results []distributed.BatchResult
	frames  int
}

// NewBatcher builds an adaptive batcher for tenant's readings. max caps
// the frame size exactly as distributed.NewWindowController interprets it
// (0 selects the default ceiling; the hard cap, distributed.MaxCoalesce,
// matches the old fixed 256-reading frame). clock is the controller's
// time source (nil = time.Now); simulations inject a virtual clock so the
// observed arrival rate is deterministic.
func NewBatcher(rt *Router, tenant string, max int, clock func() time.Time) *Batcher {
	return &Batcher{rt: rt, tenant: tenant, win: distributed.NewWindowController(max, clock)}
}

// Add appends one reading bound for the shard owning key, flushing first
// when the key changes and after when the frame reaches the adaptive
// window. It returns the flushed frame's results (nil when nothing
// flushed). The results slice is reused across flushes — callers consume
// it before the next Add.
func (b *Batcher) Add(key string, r distributed.Reading, deadline time.Time) ([]distributed.BatchResult, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if key != b.key && len(b.pending) > 0 {
		if res, err := b.flushLocked(deadline); err != nil {
			b.key = key
			b.pending = append(b.pending[:0], r)
			return res, err
		}
	}
	b.key = key
	b.pending = append(b.pending, r)
	if len(b.pending) >= b.win.Window() {
		return b.flushLocked(deadline)
	}
	return nil, nil
}

// Flush drains everything pending, in window-sized frames.
func (b *Batcher) Flush(deadline time.Time) ([]distributed.BatchResult, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var last []distributed.BatchResult
	for len(b.pending) > 0 {
		res, err := b.flushLocked(deadline)
		if err != nil {
			return res, err
		}
		last = res
	}
	return last, nil
}

// flushLocked sends one frame of at most a window of readings and adapts
// the controller: the drain observation grows the window while arrivals
// saturate it, a shed verdict from the fabric (tenant quota, admission
// limit, deadline) halves it. A failed frame's readings are consumed —
// the caller owns stream-level retry, same as a direct DoBatch.
func (b *Batcher) flushLocked(deadline time.Time) ([]distributed.BatchResult, error) {
	n := len(b.pending)
	if win := b.win.Window(); n > win {
		n = win
	}
	frame := b.pending[:n]
	rest := copy(b.pending, b.pending[n:])
	backlog := len(b.pending) - n

	res, err := b.rt.DoBatch(b.tenant, b.key, frame, b.results[:0], deadline)
	b.pending = b.pending[:rest]
	b.results = res
	b.frames++
	if err != nil {
		if errors.Is(err, core.ErrOverloaded) || errors.Is(err, core.ErrDeadline) {
			b.win.ObserveShed()
		}
		return res, err
	}
	b.win.ObserveFlush(n, backlog)
	return res, nil
}

// Stats snapshots the controller: current window, AIMD adaptation counts,
// achieved frame sizes, and the observed arrival rate.
func (b *Batcher) Stats() distributed.WindowStats {
	return b.win.Stats()
}

// Frames returns how many frames the batcher has dispatched.
func (b *Batcher) Frames() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.frames
}
