// Package shard scales the attested replica fleet past a single flat
// pool: a consistent-hash shard map assigns every tenant/meter key to one
// of many cluster.Pools, per-tenant admission quotas bound what any one
// tenant may have in flight across the fabric, and batched ingestion
// (distributed's batch frame) carries many readings per sealed datagram.
// This is the shape the paper's anonymizer argument needs at population
// scale — millions of meters cannot terminate on one pool's balancer.
//
// The shard map is epoch-versioned exactly like fleet membership
// (internal/cluster's config epochs): every Add/Remove bumps the map
// epoch, moves only ~K/N of the keyspace (the consistent-hash property,
// maintained with the same incremental reconcile the cluster balancer
// uses), and is journaled as a shard-assign event so an auditor holding
// only the export can replay placement history.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"

	"lateral/internal/core"
)

// Errors.
var (
	// ErrNoShards is returned when routing with an empty shard map.
	ErrNoShards = fmt.Errorf("shard: no shards in map")

	// ErrUnknownShard is returned for operations naming an absent shard.
	ErrUnknownShard = fmt.Errorf("shard: unknown shard")

	// ErrDuplicateShard is returned when adding a name already mapped.
	ErrDuplicateShard = fmt.Errorf("shard: shard already mapped")

	// ErrLastShard refuses removing the final shard: a fabric with zero
	// shards routes nothing, and a transition must never strand the keys
	// it is supposed to move.
	ErrLastShard = fmt.Errorf("shard: cannot remove the last shard")
)

// ErrOverloaded re-exports the typed overload error tenant-quota refusals
// wrap, so callers can errors.Is against either package.
var ErrOverloaded = core.ErrOverloaded

// DefaultVnodes is the ring points per shard when unset. More vnodes
// flatten the keyspace split and tighten the ~K/N movement bound's
// constant at the cost of a longer (still binary-searched) ring.
const DefaultVnodes = 64

// Map is an epoch-versioned consistent-hash shard map over shard names.
// Every membership change bumps the epoch and reshuffles only the keys
// the change itself owns: a joiner claims ~K/N keys from across the ring,
// a leaver's keys redistribute to its ring successors, and every other
// key keeps its owner (the table tests pin the bound). A Map is not
// safe for concurrent use; Router wraps it in a lock, and the simulation
// harness drives it single-threaded.
type Map struct {
	vnodes  int
	epoch   uint64
	ring    []point
	members map[string]bool
	points  map[string][]uint64 // per-name vnode hashes, pure in the name
}

type point struct {
	h    uint64
	name string
}

// NewMap builds a shard map over the given shards at epoch 0 (the initial
// configuration is not a transition). vnodes <= 0 selects DefaultVnodes.
// The resulting assignment is a pure function of the member set — build
// order does not matter — which is what lets an independent checker
// rebuild the map from a membership snapshot and demand agreement.
func NewMap(vnodes int, shards ...string) *Map {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	m := &Map{
		vnodes:  vnodes,
		members: make(map[string]bool),
		points:  make(map[string][]uint64),
	}
	for _, s := range shards {
		if !m.members[s] {
			m.insert(s)
		}
	}
	return m
}

// Epoch returns the map's configuration epoch: 0 at construction, +1 per
// Add/Remove.
func (m *Map) Epoch() uint64 { return m.epoch }

// Size returns the number of shards mapped.
func (m *Map) Size() int { return len(m.members) }

// Members returns the mapped shard names, sorted.
func (m *Map) Members() []string {
	out := make([]string, 0, len(m.members))
	for s := range m.members {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Contains reports whether shard is mapped.
func (m *Map) Contains(shard string) bool { return m.members[shard] }

// Add maps a new shard, bumping the epoch. Only keys the joiner's ring
// points claim move to it; every other assignment is untouched.
func (m *Map) Add(shard string) error {
	if shard == "" {
		return fmt.Errorf("shard: empty shard name")
	}
	if m.members[shard] {
		return fmt.Errorf("%w: %s", ErrDuplicateShard, shard)
	}
	m.insert(shard)
	m.epoch++
	return nil
}

// Remove unmaps a shard, bumping the epoch. Its keys redistribute to the
// ring successors of its points; all other assignments are untouched.
// The last shard cannot be removed.
func (m *Map) Remove(shard string) error {
	if !m.members[shard] {
		return fmt.Errorf("%w: %s", ErrUnknownShard, shard)
	}
	if len(m.members) == 1 {
		return fmt.Errorf("%w: %s", ErrLastShard, shard)
	}
	// Removal is one filtering pass over the ring, order among survivors
	// preserved — the same incremental reconcile the cluster balancer
	// runs on membership churn.
	kept := m.ring[:0]
	for _, pt := range m.ring {
		if pt.name != shard {
			kept = append(kept, pt)
		}
	}
	m.ring = kept
	delete(m.members, shard)
	m.epoch++
	return nil
}

// Owner returns the shard the current epoch assigns key to, or "" when
// the map is empty.
func (m *Map) Owner(key string) string {
	if len(m.ring) == 0 {
		return ""
	}
	kh := hash64(key)
	i := sort.Search(len(m.ring), func(i int) bool { return m.ring[i].h >= kh })
	if i == len(m.ring) {
		i = 0
	}
	return m.ring[i].name
}

// insert merges one shard's (cached or freshly hashed) points into the
// sorted ring: sort just the additions, then one backwards in-place merge.
func (m *Map) insert(shard string) {
	pts := m.pointsFor(shard)
	added := make([]point, len(pts))
	for i, h := range pts {
		added[i] = point{h, shard}
	}
	sort.Slice(added, func(i, j int) bool { return added[i].h < added[j].h })
	n, a := len(m.ring), len(added)
	m.ring = append(m.ring, added...)
	i, j, k := n-1, a-1, n+a-1
	for j >= 0 {
		if i >= 0 && m.ring[i].h > added[j].h {
			m.ring[k] = m.ring[i]
			i--
		} else {
			m.ring[k] = added[j]
			j--
		}
		k--
	}
	m.members[shard] = true
}

// pointsFor returns (computing and caching on first use) the vnode hashes
// for a shard name. A name's points never change, so a shard that leaves
// and rejoins reclaims exactly its old keyspace.
func (m *Map) pointsFor(name string) []uint64 {
	if pts, ok := m.points[name]; ok {
		return pts
	}
	pts := make([]uint64, m.vnodes)
	for v := 0; v < m.vnodes; v++ {
		pts[v] = hash64(name + "#" + strconv.Itoa(v))
	}
	m.points[name] = pts
	return pts
}

// hash64 is FNV-1a with a splitmix64 finalizer, the same construction the
// cluster balancer uses (restated here: the ring layout is part of this
// package's contract, not an import of a balancer detail). The finalizer
// keeps near-identical short keys ("tenant-001/…", "tenant-002/…") from
// clustering in one ring gap.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
