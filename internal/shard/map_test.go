package shard

import (
	"errors"
	"fmt"
	"testing"
)

func shardNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("shard-%02d", i)
	}
	return out
}

func meterKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("tenant-%03d/meter-%04d", i%64, i)
	}
	return out
}

// TestShardMapMembershipMovesBoundedKeys pins the rebalancing contract
// across fabric sizes: a Join moves ~K/N keys (all onto the joiner), a
// Leave moves only the departed shard's keys, and reversing the change
// restores the exact prior assignment.
func TestShardMapMembershipMovesBoundedKeys(t *testing.T) {
	const nkeys = 2000
	keys := meterKeys(nkeys)
	cases := []struct {
		name   string
		shards int
	}{
		{"pair", 2},
		{"small fabric", 4},
		{"e23 fabric", 16},
		{"large fabric", 48},
	}
	for _, tc := range cases {
		t.Run(tc.name+" join", func(t *testing.T) {
			m := NewMap(0, shardNames(tc.shards)...)
			before := make(map[string]string, nkeys)
			for _, k := range keys {
				before[k] = m.Owner(k)
			}
			joiner := fmt.Sprintf("shard-%02d", tc.shards)
			if err := m.Add(joiner); err != nil {
				t.Fatal(err)
			}
			if m.Epoch() != 1 {
				t.Fatalf("epoch after join = %d, want 1", m.Epoch())
			}
			moved := 0
			for _, k := range keys {
				now := m.Owner(k)
				if now == before[k] {
					continue
				}
				moved++
				if now != joiner {
					t.Fatalf("key %s moved %s -> %s, not to the joiner", k, before[k], now)
				}
			}
			// ~K/N movement: expect about nkeys/(shards+1), allow 2x slack
			// for vnode placement variance. Zero movement means the joiner
			// got no keyspace at all.
			bound := 2 * nkeys / (tc.shards + 1)
			if moved == 0 || moved > bound {
				t.Fatalf("join moved %d of %d keys, want (0, %d]", moved, nkeys, bound)
			}
			// Reversing the join restores the prior assignment exactly.
			if err := m.Remove(joiner); err != nil {
				t.Fatal(err)
			}
			for _, k := range keys {
				if m.Owner(k) != before[k] {
					t.Fatalf("key %s not restored after join+leave", k)
				}
			}
		})
		t.Run(tc.name+" leave", func(t *testing.T) {
			m := NewMap(0, shardNames(tc.shards)...)
			before := make(map[string]string, nkeys)
			for _, k := range keys {
				before[k] = m.Owner(k)
			}
			departed := "shard-00"
			if err := m.Remove(departed); err != nil {
				t.Fatal(err)
			}
			moved := 0
			for _, k := range keys {
				now := m.Owner(k)
				if now == departed {
					t.Fatalf("key %s still owned by departed shard", k)
				}
				if now != before[k] {
					moved++
					if before[k] != departed {
						t.Fatalf("key %s moved %s -> %s though its shard stayed", k, before[k], now)
					}
				}
			}
			bound := 2 * nkeys / tc.shards
			if moved > bound {
				t.Fatalf("leave moved %d of %d keys, want <= %d", moved, nkeys, bound)
			}
			if tc.shards > 1 && moved == 0 {
				t.Fatal("leave moved no keys; departed shard owned nothing")
			}
		})
	}
}

// TestShardMapMatchesScratchRebuild is the property the simulation
// checker leans on: after any incremental Add/Remove history, the map
// agrees everywhere with a from-scratch build over the same member set.
func TestShardMapMatchesScratchRebuild(t *testing.T) {
	m := NewMap(0, shardNames(4)...)
	ops := []struct {
		add   bool
		shard string
	}{
		{true, "shard-04"}, {true, "shard-05"}, {false, "shard-01"},
		{true, "shard-06"}, {false, "shard-04"}, {false, "shard-00"},
		{true, "shard-01"}, // rejoin reclaims its old keyspace
	}
	for _, op := range ops {
		var err error
		if op.add {
			err = m.Add(op.shard)
		} else {
			err = m.Remove(op.shard)
		}
		if err != nil {
			t.Fatal(err)
		}
		fresh := NewMap(0, m.Members()...)
		for _, k := range meterKeys(500) {
			if got, want := m.Owner(k), fresh.Owner(k); got != want {
				t.Fatalf("after %+v: incremental owner %s != scratch owner %s for %s",
					op, got, want, k)
			}
		}
	}
	if m.Epoch() != uint64(len(ops)) {
		t.Fatalf("epoch = %d after %d transitions", m.Epoch(), len(ops))
	}
}

func TestShardMapEdges(t *testing.T) {
	t.Run("empty map owns nothing", func(t *testing.T) {
		m := NewMap(0)
		if got := m.Owner("tenant-0/meter-0"); got != "" {
			t.Fatalf("empty map assigned owner %q", got)
		}
		if m.Size() != 0 || m.Epoch() != 0 {
			t.Fatalf("empty map size=%d epoch=%d", m.Size(), m.Epoch())
		}
	})
	t.Run("single shard owns everything", func(t *testing.T) {
		m := NewMap(0, "only")
		for _, k := range meterKeys(200) {
			if m.Owner(k) != "only" {
				t.Fatalf("single-shard map sent %s elsewhere", k)
			}
		}
		if err := m.Remove("only"); !errors.Is(err, ErrLastShard) {
			t.Fatalf("removing last shard: got %v, want ErrLastShard", err)
		}
	})
	t.Run("duplicate and unknown refused", func(t *testing.T) {
		m := NewMap(0, "a", "b")
		if err := m.Add("a"); !errors.Is(err, ErrDuplicateShard) {
			t.Fatalf("duplicate add: %v", err)
		}
		if err := m.Add(""); err == nil {
			t.Fatal("empty shard name accepted")
		}
		if err := m.Remove("ghost"); !errors.Is(err, ErrUnknownShard) {
			t.Fatalf("unknown remove: %v", err)
		}
		if m.Epoch() != 0 {
			t.Fatalf("refused transitions bumped epoch to %d", m.Epoch())
		}
	})
	t.Run("construction is order independent", func(t *testing.T) {
		a := NewMap(0, "s0", "s1", "s2", "s3")
		b := NewMap(0, "s3", "s1", "s0", "s2", "s1")
		for _, k := range meterKeys(500) {
			if a.Owner(k) != b.Owner(k) {
				t.Fatalf("build order changed owner of %s", k)
			}
		}
	})
}
