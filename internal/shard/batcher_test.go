package shard

// Tests for the adaptive ingestion batcher: frame sizes must grow with the
// observed arrival rate (AIMD additive increase while frames saturate the
// window) and halve on a shed verdict, all pinned on a virtual clock.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"lateral/internal/core"
	"lateral/internal/distributed"
)

// shedBackend answers batches OK until armed, then refuses one frame with
// a typed overload error — the fabric's shed verdict.
type shedBackend struct {
	fakeBackend
	shedNext bool
	frames   []int
}

func (s *shedBackend) DoBatch(key string, readings []distributed.Reading, results []distributed.BatchResult, deadline time.Time) ([]distributed.BatchResult, error) {
	s.mu.Lock()
	s.frames = append(s.frames, len(readings))
	shed := s.shedNext
	s.shedNext = false
	s.mu.Unlock()
	if shed {
		return results, fmt.Errorf("replica refusing: %w", core.ErrOverloaded)
	}
	return s.fakeBackend.DoBatch(key, readings, results, deadline)
}

func (s *shedBackend) frameSizes() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.frames...)
}

func newBatcherFixture(t *testing.T, max int, clock func() time.Time) (*Batcher, *shedBackend) {
	t.Helper()
	rt := NewRouter(Config{})
	b := &shedBackend{}
	if err := rt.Join("cell-0", b); err != nil {
		t.Fatal(err)
	}
	return NewBatcher(rt, "t00", max, clock), b
}

var _ Backend = (*shedBackend)(nil)

// TestBatcherGrowsWithArrivalRate feeds a steady stream through one key
// and pins the frame-size trajectory: every frame saturates the window, so
// the controller adds one each flush — 1, 2, 3, 4, ... — instead of
// holding a fixed 256.
func TestBatcherGrowsWithArrivalRate(t *testing.T) {
	now := time.Unix(2000, 0)
	clock := func() time.Time { return now }
	ba, be := newBatcherFixture(t, 8, clock)

	reading := distributed.Reading{Op: "reading", Data: []byte("m=1")}
	for i := 0; i < 1+2+3+4+5; i++ {
		now = now.Add(10 * time.Millisecond)
		if _, err := ba.Add("t00/b0", reading, time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	want := []int{1, 2, 3, 4, 5}
	got := be.frameSizes()
	if len(got) != len(want) {
		t.Fatalf("frames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frames = %v, want %v", got, want)
		}
	}
	st := ba.Stats()
	if st.Window != 6 || st.Grows != 5 || st.Shrinks != 0 {
		t.Errorf("stats = %+v, want window 6 after 5 grows", st)
	}
	// 15 readings between the first flush (t+10ms) and the fifth (t+150ms).
	if want := 15.0 / 0.14; st.RateHz < want-0.01 || st.RateHz > want+0.01 {
		t.Errorf("rate = %.2f Hz, want %.2f", st.RateHz, want)
	}
	if ba.Frames() != 5 {
		t.Errorf("frames dispatched = %d, want 5", ba.Frames())
	}
}

// TestBatcherShrinksOnShed halves the window when the fabric sheds a
// frame, then re-grows additively — the AIMD sawtooth.
func TestBatcherShrinksOnShed(t *testing.T) {
	ba, be := newBatcherFixture(t, 8, nil)
	reading := distributed.Reading{Op: "reading", Data: []byte("m=1")}

	// Grow the window to 4: frames of 1, 2, 3.
	for i := 0; i < 1+2+3; i++ {
		if _, err := ba.Add("t00/b0", reading, time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	if win := ba.Stats().Window; win != 4 {
		t.Fatalf("window = %d after warm-up, want 4", win)
	}

	// The next frame is shed: its readings are consumed, the window halves.
	be.mu.Lock()
	be.shedNext = true
	be.mu.Unlock()
	var err error
	for i := 0; i < 4; i++ {
		if _, err = ba.Add("t00/b0", reading, time.Time{}); err != nil {
			break
		}
	}
	if !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("shed frame err = %v, want ErrOverloaded", err)
	}
	st := ba.Stats()
	if st.Window != 2 || st.Shrinks != 1 {
		t.Errorf("stats after shed = %+v, want window 2, 1 shrink", st)
	}

	// Service recovers; the very next saturated frame grows again.
	for i := 0; i < 2; i++ {
		if _, err := ba.Add("t00/b0", reading, time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	if win := ba.Stats().Window; win != 3 {
		t.Errorf("window = %d after recovery, want 3", win)
	}
}

// TestBatcherFlushesOnKeyChange pins that frames never mix routing keys:
// a key change flushes the partial frame so every sealed frame lands on
// exactly one shard.
func TestBatcherFlushesOnKeyChange(t *testing.T) {
	ba, be := newBatcherFixture(t, 8, nil)
	reading := distributed.Reading{Op: "reading", Data: []byte("m=1")}

	// Window is 1: first Add flushes. Grow to 2, then change key with one
	// reading pending.
	if _, err := ba.Add("t00/b0", reading, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ba.Add("t00/b0", reading, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ba.Add("t00/b1", reading, time.Time{}); err != nil {
		t.Fatal(err)
	}
	res, err := ba.Flush(time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("final flush returned %d results, want 1", len(res))
	}
	// Frames: [1] (window 1), [1] (partial, key change), [1] (flush).
	got := be.frameSizes()
	if len(got) != 3 {
		t.Fatalf("frames = %v, want 3 single-reading frames", got)
	}
	total := 0
	for _, n := range got {
		total += n
	}
	if total != 3 {
		t.Fatalf("readings dispatched = %d, want 3", total)
	}
}
