package shard

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"lateral/internal/cluster"
	"lateral/internal/core"
	"lateral/internal/distributed"
	"lateral/internal/telemetry"
)

// The telemetry collector must satisfy the structural Monitor hook.
var _ Monitor = (*telemetry.Metrics)(nil)

// fakeBackend counts dispatches and can block in-flight calls, standing
// in for a cluster.Pool so quota/placement behavior is tested without a
// fleet. Retries counts simulated retry burns: the quota tests assert it
// never moves when a tenant is refused at admission.
type fakeBackend struct {
	mu       sync.Mutex
	calls    int
	readings int
	retries  int
	block    chan struct{} // non-nil: calls park here until closed
}

func (f *fakeBackend) DoDeadline(key string, msg core.Message, deadline time.Time) (core.Message, error) {
	f.mu.Lock()
	f.calls++
	f.readings++
	block := f.block
	f.mu.Unlock()
	if block != nil {
		<-block
	}
	return core.Message{Op: "ok"}, nil
}

func (f *fakeBackend) DoBatch(key string, readings []distributed.Reading, results []distributed.BatchResult, deadline time.Time) ([]distributed.BatchResult, error) {
	f.mu.Lock()
	f.calls++
	f.readings += len(readings)
	block := f.block
	f.mu.Unlock()
	if block != nil {
		<-block
	}
	for range readings {
		results = append(results, distributed.BatchResult{Msg: core.Message{Op: "ok"}})
	}
	return results, nil
}

func (f *fakeBackend) Healthy() int                    { return 1 }
func (f *fakeBackend) Replicas() []cluster.ReplicaInfo { return nil }

func (f *fakeBackend) stats() (calls, readings, retries int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls, f.readings, f.retries
}

type countingMonitor struct {
	mu         sync.Mutex
	membership int
	routed     int
	batches    int
	denies     int
}

func (c *countingMonitor) ShardMembership(string, uint64, int) {
	c.mu.Lock()
	c.membership++
	c.mu.Unlock()
}

func (c *countingMonitor) ShardRoute(_, _ string, n int) {
	c.mu.Lock()
	c.routed += n
	c.mu.Unlock()
}

func (c *countingMonitor) ShardBatch(string, string, int) {
	c.mu.Lock()
	c.batches++
	c.mu.Unlock()
}

func (c *countingMonitor) ShardQuotaDeny(string, string) {
	c.mu.Lock()
	c.denies++
	c.mu.Unlock()
}

type memJournal struct {
	mu     sync.Mutex
	events []string
}

func (j *memJournal) RecordEvent(kind, actor, detail string, trace, span uint64) {
	j.mu.Lock()
	j.events = append(j.events, fmt.Sprintf("%s %s %s", kind, actor, detail))
	j.mu.Unlock()
}

func buildRouter(t *testing.T, shards int, cfg Config) (*Router, map[string]*fakeBackend) {
	t.Helper()
	rt := NewRouter(cfg)
	backends := make(map[string]*fakeBackend, shards)
	for _, name := range shardNames(shards) {
		b := &fakeBackend{}
		if err := rt.Join(name, b); err != nil {
			t.Fatal(err)
		}
		backends[name] = b
	}
	return rt, backends
}

func TestRouterRoutesByOwner(t *testing.T) {
	jnl := &memJournal{}
	mon := &countingMonitor{}
	rt, backends := buildRouter(t, 4, Config{Monitor: mon, Journal: jnl})
	perShard := make(map[string]int)
	for _, k := range meterKeys(400) {
		owner := rt.Owner(k)
		if _, err := rt.Do("tenant-a", k, core.Message{Op: "reading"}); err != nil {
			t.Fatal(err)
		}
		perShard[owner]++
	}
	for name, b := range backends {
		if calls, _, _ := b.stats(); calls != perShard[name] {
			t.Fatalf("shard %s saw %d calls, owner map assigned %d", name, calls, perShard[name])
		}
	}
	if mon.routed != 400 {
		t.Fatalf("monitor counted %d routed readings, want 400", mon.routed)
	}
	// Every shard of a 4-way fabric should own a visible slice of 400 keys.
	for name := range backends {
		if perShard[name] == 0 {
			t.Fatalf("shard %s owned no keys", name)
		}
	}
	// Join events were journaled with parseable epoch details.
	if len(jnl.events) != 4 {
		t.Fatalf("journaled %d events, want 4 joins", len(jnl.events))
	}
	if want := "shard-assign shards/shard-00 epoch=1 join"; jnl.events[0] != want {
		t.Fatalf("journal[0] = %q, want %q", jnl.events[0], want)
	}
}

// TestRouterQuotaExhaustionBurnsNoRetry is the satellite contract: a
// tenant at its quota is refused with a typed core.ErrOverloaded before
// the router touches any pool — the refused reading consumes no backend
// call, no retry, and other tenants are unaffected.
func TestRouterQuotaExhaustionBurnsNoRetry(t *testing.T) {
	mon := &countingMonitor{}
	rt, backends := buildRouter(t, 2, Config{TenantQuota: 2, Monitor: mon})
	block := make(chan struct{})
	for _, b := range backends {
		b.block = block
	}
	// Fill tenant-a's quota with two parked in-flight readings.
	started := make(chan struct{}, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		key := fmt.Sprintf("tenant-a/meter-%d", i)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			if _, err := rt.Do("tenant-a", key, core.Message{Op: "reading"}); err != nil {
				t.Error(err)
			}
		}()
	}
	<-started
	<-started
	waitInflight(t, rt, "tenant-a", 2)

	calls0 := totalCalls(backends)
	if _, err := rt.Do("tenant-a", "tenant-a/meter-9", core.Message{Op: "reading"}); !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("over-quota reading: got %v, want core.ErrOverloaded", err)
	}
	// Batches are charged whole: a 3-reading batch cannot squeeze under a
	// quota of 2 even with zero in flight, and is refused the same way.
	if _, err := rt.DoBatch("tenant-b", "tenant-b/meters",
		[]distributed.Reading{{Op: "r"}, {Op: "r"}, {Op: "r"}}, nil, time.Time{}); !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("over-quota batch: got %v, want core.ErrOverloaded", err)
	}
	if got := totalCalls(backends); got != calls0 {
		t.Fatalf("quota refusal reached a backend: %d calls, want %d", got, calls0)
	}
	for _, b := range backends {
		if _, _, retries := b.stats(); retries != 0 {
			t.Fatalf("quota refusal burned %d retries", retries)
		}
	}
	if mon.denies != 2 {
		t.Fatalf("monitor counted %d quota denies, want 2", mon.denies)
	}
	// An under-quota tenant still flows while tenant-a is saturated.
	done := make(chan error, 1)
	go func() {
		_, err := rt.Do("tenant-c", "tenant-c/meter-0", core.Message{Op: "reading"})
		done <- err
	}()
	waitInflight(t, rt, "tenant-c", 1)
	close(block)
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatalf("unrelated tenant blocked by tenant-a's quota: %v", err)
	}
	// Quota slots released: tenant-a admits again.
	if _, err := rt.Do("tenant-a", "tenant-a/meter-0", core.Message{Op: "reading"}); err != nil {
		t.Fatalf("quota not released after completion: %v", err)
	}
	stats := rt.Tenants()
	if len(stats) != 3 {
		t.Fatalf("tenant stats tracked %d tenants, want 3", len(stats))
	}
	for _, s := range stats {
		if s.Inflight != 0 {
			t.Fatalf("tenant %s leaked %d in-flight quota", s.Tenant, s.Inflight)
		}
	}
}

func totalCalls(backends map[string]*fakeBackend) int {
	n := 0
	for _, b := range backends {
		calls, _, _ := b.stats()
		n += calls
	}
	return n
}

func waitInflight(t *testing.T, rt *Router, tenant string, want int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		for _, s := range rt.Tenants() {
			if s.Tenant == tenant && s.Inflight == want {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("tenant %s never reached %d in-flight", tenant, want)
}

func TestRouterRebalanceOnLeave(t *testing.T) {
	jnl := &memJournal{}
	rt, backends := buildRouter(t, 4, Config{Journal: jnl})
	keys := meterKeys(400)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = rt.Owner(k)
	}
	departed, err := rt.Leave("shard-02")
	if err != nil {
		t.Fatal(err)
	}
	if departed != backends["shard-02"] {
		t.Fatal("Leave returned the wrong backend")
	}
	if rt.Epoch() != 5 { // 4 joins + 1 leave
		t.Fatalf("epoch = %d, want 5", rt.Epoch())
	}
	moved := 0
	for _, k := range keys {
		now := rt.Owner(k)
		if now != before[k] {
			moved++
			if before[k] != "shard-02" {
				t.Fatalf("key %s moved off a surviving shard", k)
			}
		}
		if _, err := rt.Do("t", k, core.Message{Op: "reading"}); err != nil {
			t.Fatal(err)
		}
	}
	if moved == 0 || moved > 2*len(keys)/4 {
		t.Fatalf("leave moved %d keys, want (0, %d]", moved, 2*len(keys)/4)
	}
	if calls, _, _ := backends["shard-02"].stats(); calls != 0 {
		t.Fatalf("departed shard still received %d calls", calls)
	}
	last := jnl.events[len(jnl.events)-1]
	if want := "shard-assign shards/shard-02 epoch=5 leave"; last != want {
		t.Fatalf("leave journal = %q, want %q", last, want)
	}
	// Edge: a router reduced to one shard refuses the final leave.
	if _, err := rt.Leave("shard-00"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Leave("shard-01"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Leave("shard-03"); !errors.Is(err, ErrLastShard) {
		t.Fatalf("last leave: got %v, want ErrLastShard", err)
	}
	// Edge: an empty router (never joined) refuses routing typed.
	empty := NewRouter(Config{})
	if _, err := empty.Do("t", "k", core.Message{Op: "reading"}); !errors.Is(err, ErrNoShards) {
		t.Fatalf("empty router: got %v, want ErrNoShards", err)
	}
	if _, err := empty.Leave("ghost"); !errors.Is(err, ErrUnknownShard) {
		t.Fatalf("empty router leave: got %v, want ErrUnknownShard", err)
	}
}

func TestRouterBatchRouting(t *testing.T) {
	mon := &countingMonitor{}
	rt, backends := buildRouter(t, 4, Config{Monitor: mon})
	readings := make([]distributed.Reading, 8)
	for i := range readings {
		readings[i] = distributed.Reading{Op: "reading", Data: []byte{byte(i)}}
	}
	key := "tenant-a/meters"
	results, err := rt.DoBatch("tenant-a", key, readings, nil, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(readings) {
		t.Fatalf("got %d results, want %d", len(results), len(readings))
	}
	owner := rt.Owner(key)
	if calls, got, _ := backends[owner].stats(); calls != 1 || got != len(readings) {
		t.Fatalf("owner %s saw calls=%d readings=%d, want 1 call with %d readings", owner, calls, got, len(readings))
	}
	if mon.batches != 1 || mon.routed != len(readings) {
		t.Fatalf("monitor batches=%d routed=%d", mon.batches, mon.routed)
	}
	infos := rt.Shards()
	var routed int64
	for _, inf := range infos {
		routed += inf.Routed
	}
	if routed != int64(len(readings)) {
		t.Fatalf("shard infos count %d routed readings, want %d", routed, len(readings))
	}
}
