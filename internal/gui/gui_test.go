package gui

import (
	"errors"
	"testing"

	"lateral/internal/hw"
)

func newMux(t *testing.T) (*Mux, *hw.Display, *hw.InputDevice) {
	t.Helper()
	d := hw.NewDisplay("fb0")
	in := hw.NewInputDevice("kbd0")
	return NewMux(d, in), d, in
}

func TestCreateViewAndReservedName(t *testing.T) {
	m, _, _ := newMux(t)
	if err := m.CreateView("bank", true); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateView(IndicatorOwner, true); !errors.Is(err, ErrReserved) {
		t.Errorf("reserved name: got %v", err)
	}
	if err := m.Draw("ghost", "x"); !errors.Is(err, ErrNoView) {
		t.Errorf("draw without view: got %v", err)
	}
	if err := m.Focus("ghost"); !errors.Is(err, ErrNoView) {
		t.Errorf("focus without view: got %v", err)
	}
}

func TestLabelsAreMuxAssigned(t *testing.T) {
	m, d, _ := newMux(t)
	if err := m.CreateView("evil-app", false); err != nil {
		t.Fatal(err)
	}
	// The client draws content CLAIMING to be the bank.
	if err := m.Draw("evil-app", "== BANK LOGIN == enter password:"); err != nil {
		t.Fatal(err)
	}
	for _, r := range d.Regions() {
		if r.Origin == "evil-app" && r.Label != "evil-app" {
			t.Errorf("mux let a client control its label: %q", r.Label)
		}
		if r.Origin == "bank" {
			t.Error("a region with forged origin appeared")
		}
	}
}

func TestIndicatorTracksFocusAndTrust(t *testing.T) {
	m, d, _ := newMux(t)
	if err := m.CreateView("bank", true); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateView("game", false); err != nil {
		t.Fatal(err)
	}
	if err := m.Focus("bank"); err != nil {
		t.Fatal(err)
	}
	if got := indicatorContent(d); got != "focus:bank trust:GREEN" {
		t.Errorf("indicator = %q", got)
	}
	if err := m.Focus("game"); err != nil {
		t.Fatal(err)
	}
	if got := indicatorContent(d); got != "focus:game trust:RED" {
		t.Errorf("indicator = %q", got)
	}
	if m.Focused() != "game" {
		t.Errorf("Focused = %q", m.Focused())
	}
}

func indicatorContent(d *hw.Display) string {
	for _, r := range d.Regions() {
		if r.Origin == IndicatorOwner {
			return r.Content
		}
	}
	return ""
}

func TestInputRoutedToFocusedViewOnly(t *testing.T) {
	m, _, in := newMux(t)
	if err := m.CreateView("bank", true); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateView("spy", false); err != nil {
		t.Fatal(err)
	}
	if err := m.Focus("bank"); err != nil {
		t.Fatal(err)
	}
	in.Inject("key:p")
	in.Inject("key:w")
	if n := m.PumpInput(); n != 2 {
		t.Errorf("pumped %d events", n)
	}
	if ev, ok, _ := m.ReadInput("bank"); !ok || ev != "key:p" {
		t.Errorf("bank input = %q, %v", ev, ok)
	}
	if _, ok, _ := m.ReadInput("spy"); ok {
		t.Error("unfocused view received input")
	}
	if _, _, err := m.ReadInput("ghost"); !errors.Is(err, ErrNoView) {
		t.Errorf("input for unknown view: got %v", err)
	}
}

func TestInputWithNoFocusIsDropped(t *testing.T) {
	m, _, in := newMux(t)
	if err := m.CreateView("a", false); err != nil {
		t.Fatal(err)
	}
	in.Inject("key:x")
	m.PumpInput()
	if ev, ok, _ := m.ReadInput("a"); ok {
		t.Errorf("unfocused system delivered input %q", ev)
	}
}

func TestPhishingOverlayDefeatedByMux(t *testing.T) {
	// The E13 scenario. A compromised app draws a fake bank login and
	// grabs focus. On the mux path the indicator exposes it.
	m, d, in := newMux(t)
	if err := m.CreateView("bank", true); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateView("evil", false); err != nil {
		t.Fatal(err)
	}
	if err := m.Draw("evil", "== BANK LOGIN == password:"); err != nil {
		t.Fatal(err)
	}
	if err := m.Focus("evil"); err != nil {
		t.Fatal(err)
	}
	user := User{TrustPolicy: "bank"}
	if user.WouldTypeSecretMux(d.Regions()) {
		t.Error("user typed the secret despite the indicator showing evil/RED")
	}
	// Legitimate case still works: focus the real bank.
	if err := m.Draw("bank", "enter password:"); err != nil {
		t.Fatal(err)
	}
	if err := m.Focus("bank"); err != nil {
		t.Fatal(err)
	}
	if !user.WouldTypeSecretMux(d.Regions()) {
		t.Error("user refused to type in the legitimate dialog")
	}
	in.Inject("key:hunter2")
	m.PumpInput()
	if ev, ok, _ := m.ReadInput("bank"); !ok || ev != "key:hunter2" {
		t.Errorf("bank did not get the password: %q %v", ev, ok)
	}
	if _, ok, _ := m.ReadInput("evil"); ok {
		t.Error("evil app captured input while bank was focused")
	}
}

func TestPhishingOverlaySucceedsOnRawDisplay(t *testing.T) {
	// Same attack on a raw framebuffer: the forged origin fools the user.
	d := hw.NewDisplay("fb0")
	d.Draw(hw.DisplayRegion{Origin: "bank", Content: "== BANK LOGIN == password:"}) // forged by evil
	user := User{TrustPolicy: "bank"}
	if !user.WouldTypeSecretRaw(d.Regions()) {
		t.Error("raw-display phishing should succeed (that is the point of the mux)")
	}
}
