// Package gui implements a minimal-complexity secure GUI multiplexer in
// the spirit of Nitpicker (§III-D "Secure Path to the User"): a single
// trusted component owns the display and input hardware; clients get
// views whose identity labels are drawn BY THE MULTIPLEXER, not by the
// client; input is routed only to the focused view; and a reserved
// indicator region truthfully shows who is focused — the paper's "very
// obvious indication of a secure mode, like a simple traffic-light
// display".
//
// The contrast case is a raw framebuffer: any client can draw anything,
// including a pixel-perfect fake of another application's login dialog,
// and read input it should never see. Experiment E13 runs the same
// phishing overlay against both paths.
package gui

import (
	"errors"
	"fmt"
	"sync"

	"lateral/internal/hw"
)

// IndicatorOwner is the reserved origin name of the trusted indicator.
const IndicatorOwner = "nitpicker"

// Errors.
var (
	// ErrNoView is returned when a client has no registered view.
	ErrNoView = errors.New("gui: no such view")

	// ErrReserved is returned when a client tries to register the
	// multiplexer's reserved identity.
	ErrReserved = errors.New("gui: reserved name")
)

// view is one client's window.
type view struct {
	owner   string
	trusted bool
	content string
	inbox   []string
}

// Mux is the secure GUI multiplexer. It must be the EXCLUSIVE owner of the
// display and input devices (enforce with kernel.AssignDevice).
type Mux struct {
	display *hw.Display
	input   *hw.InputDevice

	mu      sync.Mutex
	views   map[string]*view
	order   []string
	focused string
}

// NewMux takes ownership of a display and input device.
func NewMux(display *hw.Display, input *hw.InputDevice) *Mux {
	return &Mux{
		display: display,
		input:   input,
		views:   make(map[string]*view),
	}
}

// CreateView registers a client window. The trusted flag is established at
// registration (by the system integrator), not claimable at draw time.
func (m *Mux) CreateView(owner string, trusted bool) error {
	if owner == IndicatorOwner {
		return fmt.Errorf("view %q: %w", owner, ErrReserved)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.views[owner]; !ok {
		m.order = append(m.order, owner)
	}
	m.views[owner] = &view{owner: owner, trusted: trusted}
	return nil
}

// Draw updates a client's view content. The origin and label on screen are
// set by the multiplexer from the registered identity — whatever identity
// claims the CONTENT makes, the label next to it tells the truth.
func (m *Mux) Draw(owner, content string) error {
	m.mu.Lock()
	v, ok := m.views[owner]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("draw by %q: %w", owner, ErrNoView)
	}
	v.content = content
	m.mu.Unlock()
	m.compose()
	return nil
}

// Focus gives a view the input focus and refreshes the indicator.
func (m *Mux) Focus(owner string) error {
	m.mu.Lock()
	if _, ok := m.views[owner]; !ok {
		m.mu.Unlock()
		return fmt.Errorf("focus %q: %w", owner, ErrNoView)
	}
	m.focused = owner
	m.mu.Unlock()
	m.compose()
	return nil
}

// Focused returns the owner of the focused view ("" if none).
func (m *Mux) Focused() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.focused
}

// compose redraws the entire screen: the trusted indicator first, then
// every view with its mux-assigned label.
func (m *Mux) compose() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.display.Clear()
	indicator := "focus:none trust:none"
	if v, ok := m.views[m.focused]; ok {
		light := "RED"
		if v.trusted {
			light = "GREEN"
		}
		indicator = fmt.Sprintf("focus:%s trust:%s", v.owner, light)
	}
	m.display.Draw(hw.DisplayRegion{
		Origin:  IndicatorOwner,
		Label:   IndicatorOwner,
		Content: indicator,
	})
	for _, owner := range m.order {
		v := m.views[owner]
		m.display.Draw(hw.DisplayRegion{
			Origin:  v.owner,
			Label:   v.owner, // assigned by the mux, not the client
			Content: v.content,
		})
	}
}

// PumpInput drains pending hardware input events and routes each to the
// FOCUSED view only. Unfocused views never see a keystroke.
func (m *Mux) PumpInput() int {
	n := 0
	for {
		ev, ok := m.input.Next()
		if !ok {
			return n
		}
		m.mu.Lock()
		if v, ok := m.views[m.focused]; ok {
			v.inbox = append(v.inbox, ev)
		}
		m.mu.Unlock()
		n++
	}
}

// ReadInput pops the oldest input event routed to the client's view.
func (m *Mux) ReadInput(owner string) (string, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.views[owner]
	if !ok {
		return "", false, fmt.Errorf("input for %q: %w", owner, ErrNoView)
	}
	if len(v.inbox) == 0 {
		return "", false, nil
	}
	ev := v.inbox[0]
	v.inbox = v.inbox[1:]
	return ev, true, nil
}

// User simulates the paper's careful human: before typing a secret they
// glance at the trusted indicator (on the mux path) or at whatever the
// screen claims (on a raw framebuffer, where there is nothing better).
type User struct {
	// TrustPolicy names the application the user intends to give the
	// secret to.
	TrustPolicy string
}

// WouldTypeSecretMux decides whether the user types, given a mux-composed
// screen: they check the indicator's focus line — which the mux
// guarantees truthful — and type only if focus is on the intended app
// with a GREEN light.
func (u User) WouldTypeSecretMux(regions []hw.DisplayRegion) bool {
	for _, r := range regions {
		if r.Origin == IndicatorOwner {
			return r.Content == fmt.Sprintf("focus:%s trust:GREEN", u.TrustPolicy)
		}
	}
	return false
}

// WouldTypeSecretRaw decides on a raw framebuffer: the user can only judge
// by what the screen CLAIMS — a region that says it is the intended app.
// This is exactly the judgment phishing exploits.
func (u User) WouldTypeSecretRaw(regions []hw.DisplayRegion) bool {
	for _, r := range regions {
		if r.Origin == u.TrustPolicy {
			return true
		}
	}
	return false
}
