package meter

import (
	"errors"
	"strings"
	"testing"

	"lateral/internal/attack"
	"lateral/internal/core"
	"lateral/internal/netsim"
)

func TestHappyPathEndToEnd(t *testing.T) {
	d, err := Deploy(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(); err != nil {
		t.Fatalf("genuine connect failed: %v", err)
	}
	for _, kwh := range []int{10, 5, 7} {
		if err := d.SendReading(kwh); err != nil {
			t.Fatalf("send reading: %v", err)
		}
	}
	total, err := d.BillingTotal()
	if err != nil || total != 22 {
		t.Errorf("billing total = %d, %v, want 22", total, err)
	}
	// The Android UI shows the billing summary without any credential.
	summary, err := d.ShowBillingOnAndroid()
	if err != nil || !strings.Contains(summary, "billed:22") {
		t.Errorf("android summary = %q, %v", summary, err)
	}
}

func TestDatabaseSeesOnlyAnonymizedAggregates(t *testing.T) {
	d, err := Deploy(Options{CustomerID: "customer-SECRETID"})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(); err != nil {
		t.Fatal(err)
	}
	if err := d.SendReading(9); err != nil {
		t.Fatal(err)
	}
	dump, err := d.DatabaseContents()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(dump, "SECRETID") {
		t.Errorf("customer identity reached the untrusted database: %q", dump)
	}
	if !strings.Contains(dump, "aggregate-total:9") {
		t.Errorf("anonymized aggregate missing: %q", dump)
	}
}

func TestTamperedAnonymizerRefusedByMeter(t *testing.T) {
	d, err := Deploy(Options{TamperAnonymizer: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(); !errors.Is(err, ErrRefusedPeer) {
		t.Errorf("tampered anonymizer: got %v, want ErrRefusedPeer", err)
	}
	// No readings can flow after a refused connect.
	if err := d.SendReading(5); err == nil {
		t.Error("reading sent without an attested channel")
	}
}

func TestEmulatedMeterRefusedByUtility(t *testing.T) {
	d, err := Deploy(Options{EmulateMeter: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(); err == nil {
		t.Error("software meter emulation connected; fused-key attestation should refuse it")
	}
}

func TestWireAdversaryLearnsNoReadings(t *testing.T) {
	rec := &netsim.Recorder{}
	d, err := Deploy(Options{CustomerID: "customer-EAVESDROP", WireAdversary: rec})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(); err != nil {
		t.Fatal(err)
	}
	if err := d.SendReading(1234); err != nil {
		t.Fatal(err)
	}
	if rec.Saw([]byte("customer-EAVESDROP")) {
		t.Error("customer identity visible on the wire")
	}
	if rec.Saw([]byte("1234")) {
		t.Error("reading visible on the wire")
	}
}

func TestWireTampererDetected(t *testing.T) {
	d, err := Deploy(Options{WireAdversary: netsim.Tamperer{}})
	if err != nil {
		t.Fatal(err)
	}
	// Either the handshake or the first record must fail — silently
	// accepting tampered data is the only wrong outcome.
	if err := d.Connect(); err != nil {
		return
	}
	if err := d.SendReading(5); err == nil {
		t.Error("tampered traffic accepted end to end")
	}
}

func TestCompromisedAndroidCannotReadMeterIdentity(t *testing.T) {
	d, err := Deploy(Options{CustomerID: "customer-HIDDEN"})
	if err != nil {
		t.Fatal(err)
	}
	adv := attack.New()
	d.Appliance.SetObserver(adv)
	if err := d.Appliance.Compromise("android"); err != nil {
		t.Fatal(err)
	}
	_, _ = d.Appliance.Deliver("android", core.Message{Op: "trigger"})
	if adv.Saw([]byte("customer-HIDDEN")) {
		t.Error("compromised Android read the meter's customer identity across the TrustZone boundary")
	}
}

func TestGatewayPolicies(t *testing.T) {
	net := netsim.New()
	ep := net.Attach("appliance")
	net.Attach("utility")
	net.Attach("victim")
	gw := NewGateway(ep, []string{"utility"}, 2)
	if err := gw.Forward("victim", []byte("x")); !errors.Is(err, core.ErrRefused) {
		t.Errorf("non-whitelisted forward: got %v", err)
	}
	if err := gw.Forward("utility", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := gw.Forward("utility", []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := gw.Forward("utility", []byte("c")); !errors.Is(err, core.ErrRefused) {
		t.Errorf("over-budget forward: got %v", err)
	}
	gw.Tick()
	if err := gw.Forward("utility", []byte("d")); err != nil {
		t.Errorf("forward after refill: %v", err)
	}
	fwd, bd, br := gw.Stats()
	if fwd != 3 || bd != 1 || br != 1 {
		t.Errorf("stats = %d,%d,%d", fwd, bd, br)
	}
}

func TestFloodContainment(t *testing.T) {
	off := Flood(1000, 10, false)
	on := Flood(1000, 10, true)
	if off.DeliveredVictim != 1000 {
		t.Errorf("ungated flood delivered %d/1000 to victim", off.DeliveredVictim)
	}
	if on.DeliveredVictim != 0 {
		t.Errorf("gated flood delivered %d to victim, want 0 (whitelist)", on.DeliveredVictim)
	}
	// Legitimate telemetry still flows, rate-limited.
	if on.DeliveredUtility == 0 {
		t.Error("gateway blocked all legitimate traffic")
	}
	if on.DeliveredUtility >= off.DeliveredUtility {
		t.Errorf("token bucket did not limit egress: %d vs %d", on.DeliveredUtility, off.DeliveredUtility)
	}
}

func TestPhishingCampaignOutcomes(t *testing.T) {
	pw, err := PhishingCampaign(40, 0.4, false, "trial")
	if err != nil {
		t.Fatal(err)
	}
	hw, err := PhishingCampaign(40, 0.4, true, "trial")
	if err != nil {
		t.Fatal(err)
	}
	if pw.Lured == 0 {
		t.Fatal("no users lured; lure rate broken")
	}
	if pw.Compromised != pw.Lured {
		t.Errorf("password auth: %d lured but %d compromised (every captured password should work)",
			pw.Lured, pw.Compromised)
	}
	if hw.Compromised != 0 {
		t.Errorf("hardware auth: %d accounts compromised, want 0", hw.Compromised)
	}
	if hw.Lured != pw.Lured {
		t.Errorf("same seed should lure the same users: %d vs %d", hw.Lured, pw.Lured)
	}
}

func TestMeasurementsDistinguishBuilds(t *testing.T) {
	if GoodAnonymizerMeasurement() == ([32]byte{}) {
		t.Error("zero measurement")
	}
	evil := &anonymizerComp{evil: true}
	good := &anonymizerComp{}
	if core.CodeOf(evil)[0] == 0 {
		t.Error("bad code")
	}
	if string(core.CodeOf(evil)) == string(core.CodeOf(good)) {
		t.Error("evil and good builds share a measurement")
	}
}

func TestSendReadingRequiresConnect(t *testing.T) {
	d, err := Deploy(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SendReading(5); !errors.Is(err, ErrRefusedPeer) {
		t.Errorf("unconnected reading: %v", err)
	}
}

func TestMeterRefusesGarbageOps(t *testing.T) {
	d, err := Deploy(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Appliance.Deliver("meter", core.Message{Op: "tick-usage", Data: []byte("not-a-number")}); err == nil {
		t.Error("non-numeric usage accepted")
	}
	if _, err := d.Appliance.Deliver("meter", core.Message{Op: "weird"}); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := d.Server.Deliver("anonymizer", core.Message{Op: "reading", Data: []byte("malformed")}); err == nil {
		t.Error("malformed reading accepted")
	}
	if _, err := d.Server.Deliver("anonymizer", core.Message{Op: "reading", Data: []byte("c|NaN")}); err == nil {
		t.Error("non-numeric kwh accepted")
	}
	if _, err := d.Server.Deliver("database", core.Message{Op: "drop-tables"}); err == nil {
		t.Error("unknown db op accepted")
	}
}

func TestAndroidRefusesUnknownOps(t *testing.T) {
	d, err := Deploy(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Appliance.Deliver("android", core.Message{Op: "install-malware"}); err == nil {
		t.Error("unknown android op accepted")
	}
}

func TestEvilAnonymizerWouldLeakIfTrusted(t *testing.T) {
	// Bypass attestation deliberately (a naive deployment): the unaudited
	// build annotates database records with the customer identity — the
	// exact failure the measurement check prevents.
	d, err := Deploy(Options{CustomerID: "customer-NAIVE", TamperAnonymizer: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Server.Deliver("anonymizer", core.Message{Op: "reading", Data: []byte("customer-NAIVE|7")}); err != nil {
		t.Fatal(err)
	}
	dump, err := d.DatabaseContents()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump, "customer-NAIVE") {
		t.Error("evil anonymizer should leak identities when not kept out by attestation")
	}
}

func TestFloodAccounting(t *testing.T) {
	res := Flood(100, 10, true)
	if res.Attempted != 200 {
		t.Errorf("attempted = %d", res.Attempted)
	}
	if res.DeliveredVictim != 0 {
		t.Errorf("victim = %d", res.DeliveredVictim)
	}
	if res.DeliveredUtility <= 0 || res.DeliveredUtility > 100 {
		t.Errorf("utility = %d", res.DeliveredUtility)
	}
}

func TestPhishingZeroLureRate(t *testing.T) {
	res, err := PhishingCampaign(20, 0, false, "none")
	if err != nil {
		t.Fatal(err)
	}
	if res.Lured != 0 || res.Compromised != 0 {
		t.Errorf("zero lure rate: %+v", res)
	}
}
