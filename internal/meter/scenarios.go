package meter

import (
	"crypto/ed25519"
	"fmt"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/netsim"
	"lateral/internal/securechan"
)

// This file implements the two quantitative scenarios §III-C sketches
// around the smart meter: the gateway's DDoS containment (E10) and
// password-less authentication's phishing resistance (E9).

// Gateway is the isolated component with exclusive network-hardware
// access: "it can reliably enforce domain whitelists and bandwidth
// policies to prevent the smart meter appliance from participating in
// distributed denial-of-service attacks".
type Gateway struct {
	ep        *netsim.Endpoint
	whitelist map[string]bool
	tokens    int
	rate      int

	blockedDest int
	blockedRate int
	forwarded   int
}

// NewGateway wraps an endpoint with a destination whitelist and a
// token-bucket egress budget of rate packets per Tick.
func NewGateway(ep *netsim.Endpoint, whitelist []string, rate int) *Gateway {
	wl := make(map[string]bool, len(whitelist))
	for _, w := range whitelist {
		wl[w] = true
	}
	return &Gateway{ep: ep, whitelist: wl, tokens: rate, rate: rate}
}

// Tick refills the token bucket (one virtual time unit).
func (g *Gateway) Tick() {
	g.tokens = g.rate
}

// Forward applies policy and transmits. Rejections are counted, not
// errors the caller can bypass.
func (g *Gateway) Forward(to string, payload []byte) error {
	if !g.whitelist[to] {
		g.blockedDest++
		return fmt.Errorf("gateway: destination %q not whitelisted: %w", to, core.ErrRefused)
	}
	if g.tokens <= 0 {
		g.blockedRate++
		return fmt.Errorf("gateway: egress budget exhausted: %w", core.ErrRefused)
	}
	g.tokens--
	g.forwarded++
	return g.ep.Send(to, payload)
}

// Stats reports (forwarded, blocked-by-whitelist, blocked-by-rate).
func (g *Gateway) Stats() (forwarded, blockedDest, blockedRate int) {
	return g.forwarded, g.blockedDest, g.blockedRate
}

// FloodResult scores one DDoS trial.
type FloodResult struct {
	GatewayOn        bool
	Attempted        int
	DeliveredVictim  int
	DeliveredUtility int
}

// Flood simulates a compromised Android sending `packets` datagrams to an
// Internet victim plus `packets` legitimate-looking datagrams to the
// utility, with ticks/Tick refills spread evenly. With the gateway off the
// bot drives the NIC directly.
func Flood(packets int, rate int, gatewayOn bool) FloodResult {
	net := netsim.New()
	bot := net.Attach("appliance")
	net.Attach("victim")
	net.Attach("utility")
	res := FloodResult{GatewayOn: gatewayOn, Attempted: 2 * packets}
	var gw *Gateway
	if gatewayOn {
		gw = NewGateway(bot, []string{"utility"}, rate)
	}
	// The bucket refills once per 2*rate attempted packets, so a flood
	// burning the budget on junk also starves its own telemetry — egress
	// is capped regardless of destination mix.
	for i := 0; i < packets; i++ {
		if gatewayOn && i%(2*rate) == 0 {
			gw.Tick()
		}
		if gatewayOn {
			_ = gw.Forward("victim", []byte("junk"))
			_ = gw.Forward("utility", []byte("telemetry"))
		} else {
			_ = bot.Send("victim", []byte("junk"))
			_ = bot.Send("utility", []byte("telemetry"))
		}
	}
	res.DeliveredVictim = net.Attach("victim").Pending()
	res.DeliveredUtility = net.Attach("utility").Pending()
	return res
}

// PhishingResult scores one campaign (experiment E9).
type PhishingResult struct {
	HardwareAuth bool
	Users        int
	Lured        int // users who fell for the fake dialog
	Compromised  int // accounts the attacker could subsequently access
}

// PhishingCampaign simulates a phishing wave against `users` households.
// Every lured user interacts with the attacker's fake portal:
//
//   - With password authentication, the lured user types the account
//     password into the fake dialog; the attacker then authenticates to
//     the utility with it. The server cannot tell captured credentials
//     from the real thing.
//   - With hardware-key authentication there is no credential to type —
//     "the user does not need to remember a credential" — so the attacker
//     gets nothing reusable; its emulated quote fails verification.
//
// Both branches run the REAL securechan handshake against a server
// enforcing the respective policy; the numbers are outcomes of the
// protocol, not assumptions.
func PhishingCampaign(users int, lureRate float64, hardwareAuth bool, seed string) (PhishingResult, error) {
	prng := cryptoutil.NewPRNG("phishing:" + seed)
	res := PhishingResult{HardwareAuth: hardwareAuth, Users: users}

	socVendor := cryptoutil.NewSigner("soc-vendor")
	serverID := cryptoutil.NewSigner("utility-tls-identity")
	meterMeas := GoodMeterMeasurement()

	// Per-user credentials.
	passwords := make([][]byte, users)
	devices := make([]*cryptoutil.Signer, users)
	for u := 0; u < users; u++ {
		passwords[u] = []byte(fmt.Sprintf("pw-%s-%d", seed, u))
		devices[u] = cryptoutil.NewSigner(fmt.Sprintf("meter-%s-%d", seed, u))
	}

	// The utility's client-auth policy.
	verifyClient := func(evidence []byte, tr [32]byte) error {
		if hardwareAuth {
			q, err := core.DecodeQuote(evidence)
			if err != nil {
				return err
			}
			return core.VerifyQuote(q, tr[:], socVendor.Public(), meterMeas)
		}
		for _, pw := range passwords {
			if string(evidence) == string(pw) {
				return nil
			}
		}
		return fmt.Errorf("bad password: %w", ErrRefusedPeer)
	}

	attackerConnect := func(evidence func([32]byte) ([]byte, error)) bool {
		server, err := securechan.NewServer(securechan.ServerConfig{
			Rand:         cryptoutil.NewPRNG("srv:" + seed + fmt.Sprint(res.Lured)),
			Identity:     serverID,
			VerifyClient: verifyClient,
		})
		if err != nil {
			return false
		}
		client, err := securechan.NewClient(securechan.ClientConfig{
			Rand: cryptoutil.NewPRNG("atk:" + seed + fmt.Sprint(res.Lured)),
			VerifyServer: func(pub ed25519.PublicKey, _ [32]byte, _ []byte) error {
				return nil // the attacker trusts the real server just fine
			},
			Evidence: evidence,
		})
		if err != nil {
			return false
		}
		resp, pending, err := server.Respond(client.Hello())
		if err != nil {
			return false
		}
		_, finish, err := client.Finish(resp)
		if err != nil {
			return false
		}
		_, err = pending.Complete(finish)
		return err == nil
	}

	for u := 0; u < users; u++ {
		if prng.Float64() >= lureRate {
			continue
		}
		res.Lured++
		if hardwareAuth {
			// The lured user has nothing to divulge; the attacker tries a
			// software emulation with a made-up key.
			fake := cryptoutil.NewSigner(fmt.Sprintf("emul-%d", u))
			ok := attackerConnect(func(tr [32]byte) ([]byte, error) {
				return core.SignQuote("tz-rom", meterMeas, tr[:], fake,
					core.IssueVendorCert(fake, fake.Public())).Encode(), nil
			})
			if ok {
				res.Compromised++
			}
		} else {
			// The fake dialog captured the real password; replaying it
			// authenticates.
			captured := passwords[u]
			ok := attackerConnect(func([32]byte) ([]byte, error) {
				return captured, nil
			})
			if ok {
				res.Compromised++
			}
		}
	}
	return res, nil
}
