// Package meter implements the paper's §III-C / Figure 3 distributed
// scenario end to end: a smart-meter appliance (virtualized Android on a
// TrustZone SoC, the meter isolated from it, attestation rooted in a fused
// per-device key) talking across an untrusted network to a utility server
// (an SGX enclave hosting an attested anonymizer in front of an untrusted
// database).
//
// The properties the deployment demonstrates, each tested and measured:
//
//   - The utility accepts readings only from genuine meters: a software
//     emulation without the fused key cannot connect (password-less,
//     phishing-resistant client authentication).
//   - The meter sends readings only to the audited anonymizer build: a
//     tampered anonymizer has a different measurement and is refused.
//   - The untrusted database — and the utility operator reading it — sees
//     only anonymized aggregates, never customer identities ("engineered
//     privacy instead of blind belief").
//   - A compromised Android cannot read or fake meter state, and its
//     network reach is policed by the gateway component (§III-C's DDoS
//     paragraph), see scenarios.go.
package meter

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/netsim"
	"lateral/internal/securechan"
	"lateral/internal/sgx"
	"lateral/internal/trustzone"
)

// Errors.
var (
	// ErrRefusedPeer is returned when attestation-based peer verification
	// fails during connection setup.
	ErrRefusedPeer = errors.New("meter: peer attestation refused")
)

// --- appliance-side components ---

// androidComp is the untrusted legacy UI. When compromised it becomes a
// flooding bot (the "unfortunate reality with today's IoT devices").
type androidComp struct {
	ctx *core.Ctx
}

func (a *androidComp) CompName() string         { return "android" }
func (a *androidComp) CompVersion() string      { return "9.0" }
func (a *androidComp) Init(ctx *core.Ctx) error { a.ctx = ctx; return nil }

func (a *androidComp) Handle(env core.Envelope) (core.Message, error) {
	switch env.Msg.Op {
	case "show-billing":
		// The UI may only ask the meter for a display string; it never
		// holds credentials (password-less design).
		return a.ctx.Call("meter", core.Message{Op: "billing-summary"})
	default:
		return core.Message{}, fmt.Errorf("android: op %q: %w", env.Msg.Op, core.ErrRefused)
	}
}

func (a *androidComp) HandleCompromised(env core.Envelope) (core.Message, error) {
	for _, ch := range a.ctx.Channels() {
		_, _ = a.ctx.Call(ch, core.Message{Op: "probe"})
	}
	return core.Message{Op: "pwned"}, nil
}

// meterComp is the isolated metering component: it owns the usage counter
// and the customer identity, so "Android vulnerabilities cannot harm the
// integrity and privacy of the meter readings".
type meterComp struct {
	ctx      *core.Ctx
	customer string
	usage    int
	billing  string
}

func (m *meterComp) CompName() string    { return "meter" }
func (m *meterComp) CompVersion() string { return "fw-1.0" }

func (m *meterComp) Init(ctx *core.Ctx) error {
	m.ctx = ctx
	return ctx.StoreAsset("customer-id", []byte(m.customer))
}

func (m *meterComp) Handle(env core.Envelope) (core.Message, error) {
	switch env.Msg.Op {
	case "tick-usage":
		kwh, err := strconv.Atoi(string(env.Msg.Data))
		if err != nil {
			return core.Message{}, fmt.Errorf("meter: bad usage %q: %w", env.Msg.Data, core.ErrRefused)
		}
		m.usage += kwh
		return core.Message{Op: "reading", Data: []byte(m.customer + "|" + strconv.Itoa(kwh))}, nil
	case "billing-summary":
		return core.Message{Op: "summary", Data: []byte(m.billing)}, nil
	case "billing-update":
		m.billing = string(env.Msg.Data)
		return core.Message{Op: "ok"}, nil
	default:
		return core.Message{}, fmt.Errorf("meter: op %q: %w", env.Msg.Op, core.ErrRefused)
	}
}

// --- server-side components ---

// anonymizerComp runs inside the SGX enclave. The good build keeps
// per-customer totals for billing INSIDE the enclave and writes only
// ID-free aggregates to the database. The evil build (a different,
// unaudited binary, hence a different measurement) leaks customer IDs —
// which is exactly what the meter's attestation check prevents it from
// ever receiving.
type anonymizerComp struct {
	ctx    *core.Ctx
	evil   bool
	totals map[string]int
	sum    int
}

func (a *anonymizerComp) CompName() string { return "anonymizer" }

func (a *anonymizerComp) CompVersion() string {
	if a.evil {
		return "1.0-unaudited"
	}
	return "1.0"
}

func (a *anonymizerComp) Init(ctx *core.Ctx) error {
	a.ctx = ctx
	a.totals = make(map[string]int)
	return nil
}

func (a *anonymizerComp) Handle(env core.Envelope) (core.Message, error) {
	switch env.Msg.Op {
	case "reading":
		parts := strings.SplitN(string(env.Msg.Data), "|", 2)
		if len(parts) != 2 {
			return core.Message{}, fmt.Errorf("anonymizer: malformed reading: %w", core.ErrRefused)
		}
		customer := parts[0]
		kwh, err := strconv.Atoi(parts[1])
		if err != nil {
			return core.Message{}, fmt.Errorf("anonymizer: bad kwh: %w", core.ErrRefused)
		}
		a.totals[customer] += kwh
		a.sum += kwh
		record := "aggregate-total:" + strconv.Itoa(a.sum)
		if a.evil {
			// The unaudited build helpfully "annotates" records.
			record = "customer:" + customer + " total:" + strconv.Itoa(a.totals[customer])
		}
		if _, err := a.ctx.Call("db", core.Message{Op: "store", Data: []byte(record)}); err != nil {
			return core.Message{}, err
		}
		return core.Message{Op: "ack", Data: []byte("billed:" + strconv.Itoa(a.totals[customer]))}, nil
	case "billing":
		return core.Message{Op: "total", Data: []byte(strconv.Itoa(a.totals[string(env.Msg.Data)]))}, nil
	default:
		return core.Message{}, fmt.Errorf("anonymizer: op %q: %w", env.Msg.Op, core.ErrRefused)
	}
}

// databaseComp is the untrusted long-term store run by the (curious)
// utility operator.
type databaseComp struct {
	records []string
}

func (d *databaseComp) CompName() string     { return "database" }
func (d *databaseComp) CompVersion() string  { return "1.0" }
func (d *databaseComp) Init(*core.Ctx) error { return nil }

func (d *databaseComp) Handle(env core.Envelope) (core.Message, error) {
	switch env.Msg.Op {
	case "store":
		d.records = append(d.records, string(env.Msg.Data))
		return core.Message{Op: "stored"}, nil
	case "dump":
		return core.Message{Op: "records", Data: []byte(strings.Join(d.records, "\n"))}, nil
	default:
		return core.Message{}, fmt.Errorf("database: op %q: %w", env.Msg.Op, core.ErrRefused)
	}
}

// Options configures a deployment, including the attack variants the
// experiments need.
type Options struct {
	// CustomerID identifies the household (default "customer-4711").
	CustomerID string

	// TamperAnonymizer deploys the unaudited anonymizer build on the
	// server. Its measurement differs; genuine meters must refuse it.
	TamperAnonymizer bool

	// EmulateMeter connects with a software emulation of the meter that
	// has no fused device key. The utility must refuse it.
	EmulateMeter bool

	// WireAdversary is an optional in-path network attacker.
	WireAdversary netsim.Adversary
}

// Deployment is a running Figure-3 system.
type Deployment struct {
	Appliance *core.System // TrustZone SoC
	Server    *core.System // SGX host
	Net       *netsim.Network

	TZ  *trustzone.Substrate
	SGX *sgx.Substrate

	opts      Options
	socVendor *cryptoutil.Signer // certifies meter SoCs
	cpuVendor *cryptoutil.Signer // certifies server CPUs
	serverID  *cryptoutil.Signer

	meterEP   *netsim.Endpoint
	utilityEP *netsim.Endpoint

	meterSess   *securechan.Session
	utilitySess *securechan.Session

	db *databaseComp
}

// Deploy builds both machines, loads the components, and wires the
// network. Connect must be called before readings flow.
func Deploy(opts Options) (*Deployment, error) {
	if opts.CustomerID == "" {
		opts.CustomerID = "customer-4711"
	}
	d := &Deployment{
		opts:      opts,
		socVendor: cryptoutil.NewSigner("soc-vendor"),
		cpuVendor: cryptoutil.NewSigner("cpu-vendor"),
		serverID:  cryptoutil.NewSigner("utility-tls-identity"),
		Net:       netsim.New(),
		db:        &databaseComp{},
	}
	if opts.WireAdversary != nil {
		d.Net.SetAdversary(opts.WireAdversary)
	}
	// Appliance: TrustZone SoC.
	tz, err := trustzone.New(trustzone.Config{DeviceSeed: "meter-001", Vendor: d.socVendor})
	if err != nil {
		return nil, fmt.Errorf("deploy appliance: %w", err)
	}
	d.TZ = tz
	d.Appliance = core.NewSystem(tz)
	android := &androidComp{}
	mtr := &meterComp{customer: opts.CustomerID}
	if err := d.Appliance.Launch(android, false, 1); err != nil {
		return nil, err
	}
	if err := d.Appliance.Launch(mtr, true, 1); err != nil {
		return nil, err
	}
	if err := d.Appliance.Grant(core.ChannelSpec{Name: "meter", From: "android", To: "meter", Badge: 1}); err != nil {
		return nil, err
	}
	if err := d.Appliance.InitAll(); err != nil {
		return nil, err
	}
	// Server: SGX host.
	sg, err := sgx.New(sgx.Config{DeviceSeed: "utility-cpu", Vendor: d.cpuVendor})
	if err != nil {
		return nil, fmt.Errorf("deploy server: %w", err)
	}
	d.SGX = sg
	d.Server = core.NewSystem(sg)
	anon := &anonymizerComp{evil: opts.TamperAnonymizer}
	if err := d.Server.Launch(anon, true, 1); err != nil {
		return nil, err
	}
	if err := d.Server.Launch(d.db, false, 1); err != nil {
		return nil, err
	}
	if err := d.Server.Grant(core.ChannelSpec{Name: "db", From: "anonymizer", To: "database", Badge: 1, Declassify: true}); err != nil {
		return nil, err
	}
	if err := d.Server.InitAll(); err != nil {
		return nil, err
	}
	d.meterEP = d.Net.Attach("meter")
	d.utilityEP = d.Net.Attach("utility")
	return d, nil
}

// GoodAnonymizerMeasurement is the audited build's measurement — published
// by the utility "to encourage trust in its operation".
func GoodAnonymizerMeasurement() [32]byte {
	return cryptoutil.Hash(core.DomainImage(&anonymizerComp{}))
}

// GoodMeterMeasurement is the genuine meter firmware measurement.
func GoodMeterMeasurement() [32]byte {
	return cryptoutil.Hash(core.DomainImage(&meterComp{}))
}

// meterEvidence produces the appliance's channel-bound quote: the TZ
// anchor (fused key) signs the meter domain's measurement.
func (d *Deployment) meterEvidence(transcript [32]byte) ([]byte, error) {
	if d.opts.EmulateMeter {
		// "Users could disconnect the actual meter and instead have a
		// software emulation send fake data" — the emulator has no fused
		// key, so it signs with one it made up.
		fake := cryptoutil.NewSigner("meter-emulator")
		q := core.SignQuote("tz-rom", GoodMeterMeasurement(), transcript[:], fake,
			core.IssueVendorCert(fake, fake.Public()))
		return q.Encode(), nil
	}
	h, err := d.Appliance.HandleOf("meter")
	if err != nil {
		return nil, err
	}
	q, err := d.TZ.Anchor().Quote(h, transcript[:])
	if err != nil {
		return nil, err
	}
	return q.Encode(), nil
}

// anonymizerEvidence produces the server's channel-bound SGX quote.
func (d *Deployment) anonymizerEvidence(transcript [32]byte) ([]byte, error) {
	h, err := d.Server.HandleOf("anonymizer")
	if err != nil {
		return nil, err
	}
	q, err := d.SGX.Anchor().Quote(h, transcript[:])
	if err != nil {
		return nil, err
	}
	return q.Encode(), nil
}

// Connect runs the mutually attested handshake over the simulated network.
// It fails with ErrRefusedPeer when either side's evidence is unacceptable.
func (d *Deployment) Connect() error {
	client, err := securechan.NewClient(securechan.ClientConfig{
		Rand: cryptoutil.NewPRNG("meter-hs"),
		VerifyServer: func(_ ed25519.PublicKey, tr [32]byte, evidence []byte) error {
			q, err := core.DecodeQuote(evidence)
			if err != nil {
				return fmt.Errorf("%w: %v", ErrRefusedPeer, err)
			}
			if err := core.VerifyQuote(q, tr[:], d.cpuVendor.Public(), GoodAnonymizerMeasurement()); err != nil {
				return fmt.Errorf("%w: %v", ErrRefusedPeer, err)
			}
			return nil
		},
		Evidence: d.meterEvidence,
	})
	if err != nil {
		return err
	}
	server, err := securechan.NewServer(securechan.ServerConfig{
		Rand:     cryptoutil.NewPRNG("utility-hs"),
		Identity: d.serverID,
		Evidence: d.anonymizerEvidence,
		VerifyClient: func(evidence []byte, tr [32]byte) error {
			q, err := core.DecodeQuote(evidence)
			if err != nil {
				return fmt.Errorf("%w: %v", ErrRefusedPeer, err)
			}
			if err := core.VerifyQuote(q, tr[:], d.socVendor.Public(), GoodMeterMeasurement()); err != nil {
				return fmt.Errorf("%w: %v", ErrRefusedPeer, err)
			}
			return nil
		},
	})
	if err != nil {
		return err
	}
	// Three handshake flights over the wire.
	if err := d.meterEP.Send("utility", client.Hello()); err != nil {
		return err
	}
	dg, ok := d.utilityEP.Recv()
	if !ok {
		return fmt.Errorf("connect: hello lost: %w", ErrRefusedPeer)
	}
	resp, pending, err := server.Respond(dg.Payload)
	if err != nil {
		return err
	}
	if err := d.utilityEP.Send("meter", resp); err != nil {
		return err
	}
	dg, ok = d.meterEP.Recv()
	if !ok {
		return fmt.Errorf("connect: response lost: %w", ErrRefusedPeer)
	}
	cs, finish, err := client.Finish(dg.Payload)
	if err != nil {
		return err
	}
	if err := d.meterEP.Send("utility", finish); err != nil {
		return err
	}
	dg, ok = d.utilityEP.Recv()
	if !ok {
		return fmt.Errorf("connect: finish lost: %w", ErrRefusedPeer)
	}
	ss, err := pending.Complete(dg.Payload)
	if err != nil {
		return err
	}
	d.meterSess, d.utilitySess = cs, ss
	return nil
}

// SendReading meters kwh usage and ships the reading to the utility over
// the attested channel; the anonymizer's billing acknowledgment flows back
// to the meter component for display.
func (d *Deployment) SendReading(kwh int) error {
	return d.SendReadingDeadline(kwh, time.Time{})
}

// SendReadingDeadline is SendReading under a caller budget: both on-device
// handler executions (metering and the billing update) and the server-side
// anonymizer execution are bounded by deadline; a stall anywhere surfaces
// as core.ErrDeadline instead of a hung meter. A zero deadline is
// unbounded.
func (d *Deployment) SendReadingDeadline(kwh int, deadline time.Time) error {
	if d.meterSess == nil {
		return fmt.Errorf("send reading: not connected: %w", ErrRefusedPeer)
	}
	reading, err := d.Appliance.DeliverDeadline("meter", core.Message{
		Op: "tick-usage", Data: []byte(strconv.Itoa(kwh)),
	}, core.Span{}, deadline)
	if err != nil {
		return err
	}
	rec, err := d.meterSess.Seal(reading.Data)
	if err != nil {
		return err
	}
	if err := d.meterEP.Send("utility", rec); err != nil {
		return err
	}
	dg, ok := d.utilityEP.Recv()
	if !ok {
		return fmt.Errorf("send reading: record lost in transit")
	}
	plain, err := d.utilitySess.Open(dg.Payload)
	if err != nil {
		return err
	}
	ack, err := d.Server.DeliverDeadline("anonymizer", core.Message{Op: "reading", Data: plain}, core.Span{}, deadline)
	if err != nil {
		return err
	}
	ackRec, err := d.utilitySess.Seal(ack.Data)
	if err != nil {
		return err
	}
	if err := d.utilityEP.Send("meter", ackRec); err != nil {
		return err
	}
	dg, ok = d.meterEP.Recv()
	if !ok {
		return fmt.Errorf("send reading: ack lost in transit")
	}
	ackPlain, err := d.meterSess.Open(dg.Payload)
	if err != nil {
		return err
	}
	_, err = d.Appliance.DeliverDeadline("meter", core.Message{Op: "billing-update", Data: ackPlain}, core.Span{}, deadline)
	return err
}

// BillingTotal asks the enclave for the per-customer total (the utility's
// billing path — allowed, because billing is the agreed purpose).
func (d *Deployment) BillingTotal() (int, error) {
	reply, err := d.Server.Deliver("anonymizer", core.Message{Op: "billing", Data: []byte(d.opts.CustomerID)})
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(string(reply.Data))
}

// DatabaseContents dumps the untrusted long-term store — what the curious
// operator (or anyone who subpoenas the database) gets to see.
func (d *Deployment) DatabaseContents() (string, error) {
	reply, err := d.Server.Deliver("database", core.Message{Op: "dump"})
	if err != nil {
		return "", err
	}
	return string(reply.Data), nil
}

// ShowBillingOnAndroid drives the paper's password-less UI flow: the
// Android UI displays billing state it gets from the meter component —
// no credential ever passes through the legacy stack.
func (d *Deployment) ShowBillingOnAndroid() (string, error) {
	reply, err := d.Appliance.Deliver("android", core.Message{Op: "show-billing"})
	if err != nil {
		return "", err
	}
	return string(reply.Data), nil
}
