// Package attack is the adversary framework: a single observation sink
// that collects everything an attacker could see across all channels —
// compromised-domain memory dumps, traffic through compromised components,
// DRAM bus taps, and network wiretaps — plus the campaign drivers the
// experiments use to score outcomes.
//
// The central judgment call is byte-level: an asset counts as LEAKED when
// its secret value appears anywhere in the adversary's accumulated
// transcript. Isolation is therefore scored by what the substrate actually
// let the attacker read, not by what components promised.
package attack

import (
	"bytes"
	"sort"
	"sync"

	"lateral/internal/core"
	"lateral/internal/hw"
	"lateral/internal/netsim"
)

// Adversary accumulates everything the attacker observed.
type Adversary struct {
	mu         sync.Mutex
	transcript []byte
	contexts   []string
}

var _ core.Observer = (*Adversary)(nil)

// New creates an empty adversary.
func New() *Adversary {
	return &Adversary{}
}

// Observe implements core.Observer.
func (a *Adversary) Observe(context string, data []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.contexts = append(a.contexts, context)
	a.transcript = append(a.transcript, data...)
	a.transcript = append(a.transcript, 0)
}

// Saw reports whether the needle appeared anywhere in the transcript.
func (a *Adversary) Saw(needle []byte) bool {
	if len(needle) == 0 {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return bytes.Contains(a.transcript, needle)
}

// SawString is Saw for string needles.
func (a *Adversary) SawString(s string) bool { return a.Saw([]byte(s)) }

// Contexts returns the labels of all observations, in order.
func (a *Adversary) Contexts() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.contexts...)
}

// TranscriptSize returns the number of observed bytes.
func (a *Adversary) TranscriptSize() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.transcript)
}

// Reset clears all observations.
func (a *Adversary) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.transcript = nil
	a.contexts = nil
}

// BusTap returns a hw.BusTap that feeds the physical attacker's view of
// DRAM traffic into this adversary (experiment E12).
func (a *Adversary) BusTap() hw.BusTap {
	return busTap{a: a}
}

type busTap struct{ a *Adversary }

func (t busTap) OnRead(addr hw.PhysAddr, data []byte) []byte {
	t.a.Observe("bus-read", data)
	return nil
}

func (t busTap) OnWrite(addr hw.PhysAddr, data []byte) []byte {
	t.a.Observe("bus-write", data)
	return nil
}

// WireTap returns a netsim.Adversary that passively feeds network traffic
// into this adversary.
func (a *Adversary) WireTap() netsim.Adversary {
	return wireTap{a: a}
}

type wireTap struct{ a *Adversary }

func (t wireTap) Intercept(d netsim.Datagram) []netsim.Datagram {
	t.a.Observe("wire:"+d.From+"->"+d.To, d.Payload)
	return []netsim.Datagram{d}
}

// ContainmentResult scores one compromise trial (experiment E1).
type ContainmentResult struct {
	// Compromised is the component the exploit landed in.
	Compromised string

	// AssetsTotal is the number of assets in the system.
	AssetsTotal int

	// Leaked lists the assets whose values reached the adversary.
	Leaked []string
}

// LeakFraction is |Leaked| / AssetsTotal.
func (r ContainmentResult) LeakFraction() float64 {
	if r.AssetsTotal == 0 {
		return 0
	}
	return float64(len(r.Leaked)) / float64(r.AssetsTotal)
}

// BuildFunc constructs a fresh system under test together with its asset
// map (asset name → secret value). Each compromise trial gets a fresh
// build, because compromise is sticky.
type BuildFunc func() (*core.System, map[string][]byte, error)

// MeasureContainment compromises one component in a fresh system, triggers
// the compromised behaviour once per granted channel (by delivering a
// probe), and scores which assets leaked.
func MeasureContainment(build BuildFunc, target string) (ContainmentResult, error) {
	sys, assets, err := build()
	if err != nil {
		return ContainmentResult{}, err
	}
	adv := New()
	sys.SetObserver(adv)
	if err := sys.Compromise(target); err != nil {
		return ContainmentResult{}, err
	}
	// Give the implanted payload a chance to act (exfiltrate via its
	// channels); errors are the payload's problem, not the experiment's.
	_, _ = sys.Deliver(target, core.Message{Op: "attacker-trigger"})

	res := ContainmentResult{Compromised: target, AssetsTotal: len(assets)}
	names := make([]string, 0, len(assets))
	for name := range assets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if adv.Saw(assets[name]) {
			res.Leaked = append(res.Leaked, name)
		}
	}
	return res, nil
}

// ContainmentSweep runs MeasureContainment once per target and returns the
// per-target results in target order.
func ContainmentSweep(build BuildFunc, targets []string) ([]ContainmentResult, error) {
	out := make([]ContainmentResult, 0, len(targets))
	for _, target := range targets {
		r, err := MeasureContainment(build, target)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// MeanLeakFraction averages the leak fraction over a sweep.
func MeanLeakFraction(results []ContainmentResult) float64 {
	if len(results) == 0 {
		return 0
	}
	var sum float64
	for _, r := range results {
		sum += r.LeakFraction()
	}
	return sum / float64(len(results))
}
