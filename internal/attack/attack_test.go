package attack

import (
	"testing"

	"lateral/internal/core"
	"lateral/internal/hw"
	"lateral/internal/kernel"
	"lateral/internal/netsim"
)

// keeper stores one asset.
type keeper struct {
	name   string
	secret []byte
}

func (k *keeper) CompName() string    { return k.name }
func (k *keeper) CompVersion() string { return "1" }
func (k *keeper) Init(ctx *core.Ctx) error {
	return ctx.StoreAsset("secret", k.secret)
}
func (k *keeper) Handle(core.Envelope) (core.Message, error) {
	return core.Message{Op: "ok"}, nil
}

// exploitable is Subvertible.
type exploitable struct {
	name string
	ctx  *core.Ctx
}

func (e *exploitable) CompName() string         { return e.name }
func (e *exploitable) CompVersion() string      { return "1" }
func (e *exploitable) Init(ctx *core.Ctx) error { e.ctx = ctx; return nil }
func (e *exploitable) Handle(core.Envelope) (core.Message, error) {
	return core.Message{Op: "benign"}, nil
}
func (e *exploitable) HandleCompromised(core.Envelope) (core.Message, error) {
	for _, ch := range e.ctx.Channels() {
		_, _ = e.ctx.Call(ch, core.Message{Op: "probe"})
	}
	return core.Message{Op: "pwned"}, nil
}

func TestAdversaryTranscript(t *testing.T) {
	a := New()
	if a.Saw([]byte("x")) || a.Saw(nil) {
		t.Error("fresh adversary saw something")
	}
	a.Observe("ctx1", []byte("hello-world"))
	if !a.Saw([]byte("hello")) || !a.SawString("world") {
		t.Error("observed data not found")
	}
	if a.TranscriptSize() == 0 {
		t.Error("transcript empty")
	}
	if ctxs := a.Contexts(); len(ctxs) != 1 || ctxs[0] != "ctx1" {
		t.Errorf("contexts = %v", ctxs)
	}
	a.Reset()
	if a.Saw([]byte("hello")) || a.TranscriptSize() != 0 {
		t.Error("reset did not clear")
	}
}

func TestBusTapFeedsAdversary(t *testing.T) {
	a := New()
	mem := hw.NewMemory(hw.PageSize)
	mem.AttachTap(a.BusTap())
	secret := []byte("DRAM-RESIDENT-SECRET")
	if err := mem.WritePhys(0, secret); err != nil {
		t.Fatal(err)
	}
	if !a.Saw(secret) {
		t.Error("bus tap did not feed adversary")
	}
}

func TestWireTapFeedsAdversary(t *testing.T) {
	a := New()
	net := netsim.New()
	net.SetAdversary(a.WireTap())
	src := net.Attach("src")
	dst := net.Attach("dst")
	if err := src.Send("dst", []byte("WIRE-SECRET")); err != nil {
		t.Fatal(err)
	}
	if !a.Saw([]byte("WIRE-SECRET")) {
		t.Error("wire tap did not feed adversary")
	}
	if d, ok := dst.Recv(); !ok || string(d.Payload) != "WIRE-SECRET" {
		t.Error("wire tap disturbed delivery")
	}
}

// buildMail constructs a tiny 3-component system either vertically (all in
// one domain on a monolith) or horizontally (one domain each on a
// microkernel).
func buildSystem(horizontal bool) BuildFunc {
	return func() (*core.System, map[string][]byte, error) {
		assets := map[string][]byte{
			"tls-key": []byte("SECRET-TLS-KEY-0001"),
			"mailbox": []byte("SECRET-MAILBOX-0002"),
		}
		tls := &keeper{name: "tls", secret: assets["tls-key"]}
		store := &keeper{name: "store", secret: assets["mailbox"]}
		render := &exploitable{name: "render"}
		var sys *core.System
		var err error
		if horizontal {
			sys = core.NewSystem(kernel.New(kernel.Config{}))
			for _, c := range []core.Component{tls, store, render} {
				if err = sys.Launch(c, false, 1); err != nil {
					return nil, nil, err
				}
			}
		} else {
			sys = core.NewSystem(core.NewMonolith(0))
			if err = sys.Colocate("app", false, 4, tls, store, render); err != nil {
				return nil, nil, err
			}
		}
		if err := sys.InitAll(); err != nil {
			return nil, nil, err
		}
		return sys, assets, nil
	}
}

func TestContainmentVerticalLeaksAll(t *testing.T) {
	res, err := MeasureContainment(buildSystem(false), "render")
	if err != nil {
		t.Fatal(err)
	}
	if res.LeakFraction() != 1.0 {
		t.Errorf("vertical leak fraction = %.2f, want 1.0 (colocated)", res.LeakFraction())
	}
	if len(res.Leaked) != 2 {
		t.Errorf("leaked = %v", res.Leaked)
	}
}

func TestContainmentHorizontalContains(t *testing.T) {
	res, err := MeasureContainment(buildSystem(true), "render")
	if err != nil {
		t.Fatal(err)
	}
	if res.LeakFraction() != 0 {
		t.Errorf("horizontal leak fraction = %.2f, want 0 (render holds no assets)", res.LeakFraction())
	}
	// Compromising an asset holder leaks exactly its own asset.
	res, err = MeasureContainment(buildSystem(true), "tls")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Leaked) != 1 || res.Leaked[0] != "tls-key" {
		t.Errorf("tls compromise leaked %v, want [tls-key]", res.Leaked)
	}
}

func TestContainmentSweepAndMean(t *testing.T) {
	targets := []string{"tls", "store", "render"}
	vert, err := ContainmentSweep(buildSystem(false), targets)
	if err != nil {
		t.Fatal(err)
	}
	horiz, err := ContainmentSweep(buildSystem(true), targets)
	if err != nil {
		t.Fatal(err)
	}
	mv, mh := MeanLeakFraction(vert), MeanLeakFraction(horiz)
	if mv != 1.0 {
		t.Errorf("vertical mean = %.2f, want 1.0", mv)
	}
	// Horizontal: tls leaks 1/2, store leaks 1/2, render leaks 0 → 1/3.
	if mh < 0.3 || mh > 0.37 {
		t.Errorf("horizontal mean = %.2f, want ≈0.33", mh)
	}
	if mh >= mv {
		t.Error("horizontal design did not improve containment")
	}
	if MeanLeakFraction(nil) != 0 {
		t.Error("empty mean != 0")
	}
}

func TestMeasureContainmentUnknownTarget(t *testing.T) {
	if _, err := MeasureContainment(buildSystem(true), "ghost"); err == nil {
		t.Error("unknown target accepted")
	}
}
