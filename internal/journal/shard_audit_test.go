package journal

import (
	"errors"
	"reflect"
	"testing"
)

// TestReplayRederivesShardPlacement: the auditor reproduces a sharded
// fabric's full placement history — epochs, actions, and the member set
// active after every transition — from the export alone.
func TestReplayRederivesShardPlacement(t *testing.T) {
	j, signer, counter := newTestJournal(t, Config{CheckpointEvery: -1})
	j.RecordEvent(KindShardAssign, "shards/shard-00", "epoch=1 join", 0, 0)
	j.RecordEvent(KindShardAssign, "shards/shard-01", "epoch=2 join", 0, 0)
	j.RecordEvent(KindShardAssign, "shards/shard-02", "epoch=3 join", 0, 0)
	j.RecordEvent(KindShardAssign, "shards/shard-01", "epoch=4 leave", 0, 0)
	// A second fabric interleaves with its own epoch line.
	j.RecordEvent(KindShardAssign, "edge/cache-a", "epoch=1 join", 0, 0)
	trusted, _ := counter.Value()
	a, err := Replay(j.Export(), signer.Public(), trusted)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(a.Shards) != 5 {
		t.Fatalf("replayed %d shard records, want 5", len(a.Shards))
	}
	last := a.Shards[3]
	if last.Fabric != "shards" || last.Shard != "shard-01" || last.Epoch != 4 || last.Action != "leave" {
		t.Fatalf("record 3 = %+v", last)
	}
	if want := []string{"shard-00", "shard-02"}; !reflect.DeepEqual(last.Members, want) {
		t.Fatalf("members after leave = %v, want %v", last.Members, want)
	}
	if got := a.Shards[4]; got.Fabric != "edge" || !reflect.DeepEqual(got.Members, []string{"cache-a"}) {
		t.Fatalf("second fabric record = %+v", got)
	}
}

// TestReplayRejectsDoctoredPlacement: placement history no honest router
// produces — rewound epochs, double assignment, phantom leaves — fails
// the audit with ErrDivergence.
func TestReplayRejectsDoctoredPlacement(t *testing.T) {
	cases := []struct {
		name   string
		events [][2]string // actor, detail
	}{
		{"epoch rewound", [][2]string{
			{"shards/a", "epoch=2 join"},
			{"shards/b", "epoch=1 join"},
		}},
		{"epoch repeated", [][2]string{
			{"shards/a", "epoch=1 join"},
			{"shards/b", "epoch=1 join"},
		}},
		{"double join in epoch history", [][2]string{
			{"shards/a", "epoch=1 join"},
			{"shards/a", "epoch=2 join"},
		}},
		{"leave of unmapped shard", [][2]string{
			{"shards/a", "epoch=1 join"},
			{"shards/b", "epoch=2 leave"},
		}},
		{"malformed action", [][2]string{
			{"shards/a", "epoch=1 rebalance"},
		}},
		{"missing epoch", [][2]string{
			{"shards/a", "join"},
		}},
		{"empty shard name", [][2]string{
			{"shards/", "epoch=1 join"},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j, signer, counter := newTestJournal(t, Config{CheckpointEvery: -1})
			for _, ev := range tc.events {
				j.RecordEvent(KindShardAssign, ev[0], ev[1], 0, 0)
			}
			trusted, _ := counter.Value()
			if _, err := Replay(j.Export(), signer.Public(), trusted); !errors.Is(err, ErrDivergence) {
				t.Fatalf("got %v, want ErrDivergence", err)
			}
		})
	}
	// A shard that left may rejoin at a later epoch — that is honest churn,
	// not divergence.
	j, signer, counter := newTestJournal(t, Config{CheckpointEvery: -1})
	j.RecordEvent(KindShardAssign, "shards/a", "epoch=1 join", 0, 0)
	j.RecordEvent(KindShardAssign, "shards/b", "epoch=2 join", 0, 0)
	j.RecordEvent(KindShardAssign, "shards/a", "epoch=3 leave", 0, 0)
	j.RecordEvent(KindShardAssign, "shards/a", "epoch=4 join", 0, 0)
	trusted, _ := counter.Value()
	a, err := Replay(j.Export(), signer.Public(), trusted)
	if err != nil {
		t.Fatalf("rejoin replay: %v", err)
	}
	final := a.Shards[len(a.Shards)-1]
	if !reflect.DeepEqual(final.Members, []string{"a", "b"}) {
		t.Fatalf("members after rejoin = %v", final.Members)
	}
}
