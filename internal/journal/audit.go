package journal

// The auditor: Replay walks an exported journal from genesis and
// independently re-derives the fleet's trust state, trusting nothing but
// the checkpoint signing key and the monotonic counter's current value.
// Any of the following fails the audit with a typed error:
//
//   - framing violations (ErrTruncated / ErrBadRecord)
//   - a sequence gap, duplicate, or hash mismatch (ErrChainBreak)
//   - a checkpoint whose signature, chain head, position, or counter
//     ordering is wrong (ErrBadCheckpoint)
//   - a final checkpoint that does not match the trusted counter — the
//     log was rolled back, truncated, or the counter regressed
//     (ErrRollback)
//   - an event sequence no honest pool could have produced, e.g. a
//     quarantined replica transitioning again (ErrDivergence)
//
// There is deliberately no "mostly verified" result: the first violation
// aborts the replay.

import (
	"crypto/ed25519"
	"fmt"
	"sort"
	"strings"
)

// Trust-state values Replay derives — chosen to match the live pool's
// State.String() so the two views diff textually.
const (
	TrustHealthy     = "healthy"
	TrustDown        = "down"
	TrustQuarantined = "quarantined"
)

// Audit is the result of a successful replay.
type Audit struct {
	Entries     []Event
	Checkpoints []Checkpoint

	// States is the re-derived trust state per admitted actor:
	// TrustHealthy, TrustDown, or TrustQuarantined.
	States map[string]string

	// Epochs is the re-derived membership history: one record per config
	// epoch the fleet transitioned through, in order, each carrying the
	// membership (actor -> state) journaled at activation. Empty for a
	// static fleet that never transitioned.
	Epochs []EpochRecord

	// Shards is the re-derived shard-placement history: one record per
	// shard-map transition (join/leave) any sharded fabric journaled, in
	// order, each carrying the fabric's full member set after the
	// transition. Empty when no shard router wrote to the journal.
	Shards []ShardRecord

	// LastSeq and Head are the verified chain position.
	LastSeq uint64
	Head    [32]byte

	// shardLive is the running placement per fabric during replay.
	shardLive map[string]map[string]bool
}

// ShardRecord is one replayed shard-map transition.
type ShardRecord struct {
	// Fabric and Shard split the event actor "fabric/shard".
	Fabric string
	Shard  string

	// Epoch is the shard-map epoch the transition produced (strictly
	// increasing per fabric).
	Epoch uint64

	// Action is "join" or "leave".
	Action string

	// Members is the fabric's mapped shard set after the transition,
	// sorted — replaying the records therefore reproduces the exact
	// placement map active at any epoch.
	Members []string
}

// EpochRecord is one replayed config-epoch transition.
type EpochRecord struct {
	// Epoch is the config epoch number (strictly increasing).
	Epoch uint64

	// Reason is the transition's cause as journaled, e.g. "join svc-4".
	Reason string

	// Members maps each member actor to the state journaled for it when
	// the epoch activated. Replay has already checked every entry against
	// its independently derived trust state.
	Members map[string]string
}

// Replay verifies an exported journal against the checkpoint public key
// and the trusted counter's current value, and re-derives trust state.
func Replay(data []byte, pub ed25519.PublicKey, trustedCounter uint64) (*Audit, error) {
	recs, err := decodeExport(data)
	if err != nil {
		return nil, err
	}
	a := &Audit{States: make(map[string]string), Head: genesisHead()}
	var lastCkpt *Checkpoint
	for i := range recs {
		r := &recs[i]
		if r.ckpt {
			ck := r.ck
			if ck.Seq != a.LastSeq {
				return nil, fmt.Errorf("checkpoint for seq %d placed at seq %d: %w", ck.Seq, a.LastSeq, ErrBadCheckpoint)
			}
			if !ck.verifySig(pub) {
				return nil, fmt.Errorf("checkpoint at seq %d: bad signature: %w", ck.Seq, ErrBadCheckpoint)
			}
			if ck.Head != a.Head {
				return nil, fmt.Errorf("checkpoint at seq %d: head mismatch: %w", ck.Seq, ErrBadCheckpoint)
			}
			if lastCkpt != nil && ck.Counter <= lastCkpt.Counter {
				return nil, fmt.Errorf("checkpoint counter %d after %d: %w", ck.Counter, lastCkpt.Counter, ErrBadCheckpoint)
			}
			a.Checkpoints = append(a.Checkpoints, ck)
			lastCkpt = &a.Checkpoints[len(a.Checkpoints)-1]
			continue
		}
		e := r.ev
		if e.Seq != a.LastSeq+1 {
			return nil, fmt.Errorf("entry seq %d after %d: %w", e.Seq, a.LastSeq, ErrChainBreak)
		}
		next := chainNext(a.Head, r.enc)
		if e.Hash != next {
			return nil, fmt.Errorf("entry %d: stored hash does not extend chain: %w", e.Seq, ErrChainBreak)
		}
		a.Head = next
		a.LastSeq = e.Seq
		if err := applyTrust(a, &e); err != nil {
			return nil, err
		}
		a.Entries = append(a.Entries, e)
	}
	// Rollback anchor: the newest checkpoint must speak for the trusted
	// counter's current value. A counter ahead of the log means entries
	// (or whole checkpoints) were discarded; a counter behind it means
	// the counter itself regressed. Both are fatal.
	switch {
	case lastCkpt == nil && trustedCounter != 0:
		return nil, fmt.Errorf("no checkpoints but trusted counter is %d: %w", trustedCounter, ErrRollback)
	case lastCkpt != nil && lastCkpt.Counter != trustedCounter:
		return nil, fmt.Errorf("last checkpoint counter %d, trusted counter %d: %w", lastCkpt.Counter, trustedCounter, ErrRollback)
	}
	return a, nil
}

// applyTrust folds one event into the derived trust state, rejecting
// sequences no honest pool produces. Quarantine is absorbing and
// exactly-once: a second quarantine for an actor, or any transition out
// (including leaving the fleet), is a divergence.
func applyTrust(a *Audit, e *Event) error {
	states := a.States
	switch e.Kind {
	case KindEpochBegin:
		epoch, reason, ok := parseEpoch(e.Detail)
		if !ok {
			return fmt.Errorf("entry %d: malformed epoch-begin %q: %w", e.Seq, e.Detail, ErrDivergence)
		}
		last := uint64(0)
		if n := len(a.Epochs); n > 0 {
			last = a.Epochs[n-1].Epoch
		}
		if epoch <= last {
			return fmt.Errorf("entry %d: epoch %d after %d: %w", e.Seq, epoch, last, ErrDivergence)
		}
		a.Epochs = append(a.Epochs, EpochRecord{
			Epoch:   epoch,
			Reason:  reason,
			Members: make(map[string]string),
		})
		return nil
	case KindEpochMember:
		epoch, rest, ok := parseEpoch(e.Detail)
		state, stOK := strings.CutPrefix(rest, "state=")
		if !ok || !stOK {
			return fmt.Errorf("entry %d: malformed epoch-member %q: %w", e.Seq, e.Detail, ErrDivergence)
		}
		n := len(a.Epochs)
		if n == 0 || a.Epochs[n-1].Epoch != epoch {
			return fmt.Errorf("entry %d: epoch-member for unopened epoch %d: %w", e.Seq, epoch, ErrDivergence)
		}
		// The membership record must agree with the trust state replay
		// derived on its own from the transition events — a journal that
		// claims a healthy member the event stream says is down (or never
		// admitted) has been doctored.
		if cur, known := states[e.Actor]; !known || cur != state {
			got := "<unadmitted>"
			if _, known := states[e.Actor]; known {
				got = states[e.Actor]
			}
			return fmt.Errorf("entry %d: epoch %d claims %s %s, replay derives %s: %w",
				e.Seq, epoch, e.Actor, state, got, ErrDivergence)
		}
		a.Epochs[n-1].Members[e.Actor] = state
		return nil
	case KindShardAssign:
		return applyShardAssign(a, e)
	case KindAdmit, KindReplicaUp, KindReplicaDown, KindQuarantine, KindLeave:
	default:
		return nil // ops events carry no trust-state transition
	}
	cur, known := states[e.Actor]
	if known && cur == TrustQuarantined {
		return fmt.Errorf("entry %d: %s for quarantined %s: %w", e.Seq, e.Kind, e.Actor, ErrDivergence)
	}
	switch e.Kind {
	case KindAdmit:
		states[e.Actor] = TrustDown
	case KindReplicaUp:
		if !known {
			return fmt.Errorf("entry %d: %s for unadmitted %s: %w", e.Seq, e.Kind, e.Actor, ErrDivergence)
		}
		states[e.Actor] = TrustHealthy
	case KindReplicaDown:
		if !known {
			return fmt.Errorf("entry %d: %s for unadmitted %s: %w", e.Seq, e.Kind, e.Actor, ErrDivergence)
		}
		states[e.Actor] = TrustDown
	case KindQuarantine:
		if !known {
			return fmt.Errorf("entry %d: quarantine for unadmitted %s: %w", e.Seq, e.Actor, ErrDivergence)
		}
		states[e.Actor] = TrustQuarantined
	case KindLeave:
		if !known {
			return fmt.Errorf("entry %d: leave for unadmitted %s: %w", e.Seq, e.Actor, ErrDivergence)
		}
		delete(states, e.Actor)
	}
	return nil
}

// applyShardAssign folds one shard-map transition into the replayed
// placement history, rejecting sequences no honest router produces.
func applyShardAssign(a *Audit, e *Event) error {
	epoch, action, ok := parseEpoch(e.Detail)
	if !ok || (action != "join" && action != "leave") {
		return fmt.Errorf("entry %d: malformed shard-assign %q: %w", e.Seq, e.Detail, ErrDivergence)
	}
	fabric, shard := "", e.Actor
	if i := strings.LastIndex(e.Actor, "/"); i >= 0 {
		fabric, shard = e.Actor[:i], e.Actor[i+1:]
	}
	if shard == "" {
		return fmt.Errorf("entry %d: shard-assign with empty shard %q: %w", e.Seq, e.Actor, ErrDivergence)
	}
	// Per-fabric epochs are strictly increasing: a transition may never be
	// reordered or replayed at an old epoch.
	for i := len(a.Shards) - 1; i >= 0; i-- {
		if a.Shards[i].Fabric != fabric {
			continue
		}
		if epoch <= a.Shards[i].Epoch {
			return fmt.Errorf("entry %d: fabric %s shard epoch %d after %d: %w",
				e.Seq, fabric, epoch, a.Shards[i].Epoch, ErrDivergence)
		}
		break
	}
	if a.shardLive == nil {
		a.shardLive = make(map[string]map[string]bool)
	}
	live := a.shardLive[fabric]
	if live == nil {
		live = make(map[string]bool)
		a.shardLive[fabric] = live
	}
	switch action {
	case "join":
		if live[shard] {
			return fmt.Errorf("entry %d: fabric %s join of mapped shard %s: %w", e.Seq, fabric, shard, ErrDivergence)
		}
		live[shard] = true
	case "leave":
		if !live[shard] {
			return fmt.Errorf("entry %d: fabric %s leave of unmapped shard %s: %w", e.Seq, fabric, shard, ErrDivergence)
		}
		delete(live, shard)
	}
	members := make([]string, 0, len(live))
	for s := range live {
		members = append(members, s)
	}
	sort.Strings(members)
	a.Shards = append(a.Shards, ShardRecord{
		Fabric:  fabric,
		Shard:   shard,
		Epoch:   epoch,
		Action:  action,
		Members: members,
	})
	return nil
}

// parseEpoch extracts the leading "epoch=N" token from an epoch event's
// detail, returning N and the remainder after the separating space.
func parseEpoch(detail string) (uint64, string, bool) {
	rest, ok := strings.CutPrefix(detail, "epoch=")
	if !ok {
		return 0, "", false
	}
	i := 0
	var n uint64
	for i < len(rest) && rest[i] >= '0' && rest[i] <= '9' {
		n = n*10 + uint64(rest[i]-'0')
		i++
	}
	if i == 0 {
		return 0, "", false
	}
	rest = rest[i:]
	rest = strings.TrimPrefix(rest, " ")
	return n, rest, true
}

// Diff compares the replayed trust state against a live view and returns
// one line per disagreement, sorted — empty means the audit matches the
// running fleet exactly.
func (a *Audit) Diff(live map[string]string) []string {
	var out []string
	for actor, want := range a.States {
		got, ok := live[actor]
		switch {
		case !ok:
			out = append(out, fmt.Sprintf("%s: journal=%s live=<absent>", actor, want))
		case got != want:
			out = append(out, fmt.Sprintf("%s: journal=%s live=%s", actor, want, got))
		}
	}
	for actor, got := range live {
		if _, ok := a.States[actor]; !ok {
			out = append(out, fmt.Sprintf("%s: journal=<absent> live=%s", actor, got))
		}
	}
	sort.Strings(out)
	return out
}
