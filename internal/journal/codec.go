package journal

// Canonical binary format of an exported journal, shared by Export,
// Replay, and the fuzzer. The encoding is strict: decoders reject any
// non-canonical framing (oversized lengths, trailing bytes inside a
// record body, truncated streams) with typed errors, never a panic and
// never a silent "verified". That strictness buys the fuzz property
// Replay success ⇒ re-encode == input, the same discipline as the
// distributed frame and schedule codecs.
//
//	export  := magic record*
//	magic   := "LATJ" 0x01
//	record  := tag(1) len(u32) body
//	tag     := 0x01 (entry) | 0x02 (checkpoint)
//	entry   := seq(u64) at(i64 unix-ns) trace(u64) span(u64)
//	           str(kind) str(actor) str(detail) hash(32)
//	ckpt    := seq(u64) counter(u64) head(32) sig(64)
//	str     := len(u16) bytes
//
// All integers big-endian. The entry hash is the chain head AFTER the
// entry — SHA256(prev || entry-bytes-without-hash) — so verification
// pins a flipped byte to the exact entry it hit, even in the tail past
// the last signed checkpoint.

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"lateral/internal/cryptoutil"
)

var (
	// errConfig rejects a Journal built without signer or counter.
	errConfig = errors.New("journal: config requires Signer and Counter")

	// ErrTruncated: the export ends mid-record or mid-header.
	ErrTruncated = errors.New("journal: truncated export")

	// ErrBadRecord: a record violates the canonical framing.
	ErrBadRecord = errors.New("journal: malformed record")

	// ErrChainBreak: an entry's stored hash does not extend the chain.
	ErrChainBreak = errors.New("journal: hash chain break")

	// ErrBadCheckpoint: a checkpoint signature or head fails to verify.
	ErrBadCheckpoint = errors.New("journal: checkpoint verification failed")

	// ErrRollback: the journal's checkpoints do not reach the trusted
	// counter value — the log was rolled back or truncated.
	ErrRollback = errors.New("journal: rollback detected")

	// ErrDivergence: replayed trust state is internally inconsistent or
	// disagrees with the live view (e.g. a quarantined replica coming
	// back, or a duplicated quarantine event).
	ErrDivergence = errors.New("journal: trust state divergence")
)

const (
	tagEntry      = 0x01
	tagCheckpoint = 0x02

	maxRecordLen = 1 << 20
	maxStrLen    = 1 << 12

	ckptBodyLen = 8 + 8 + 32 + 64
)

var exportMagic = []byte{'L', 'A', 'T', 'J', 0x01}

// genesisHead is the fixed chain head before the first entry.
func genesisHead() [32]byte {
	return cryptoutil.Hash([]byte("lateral-journal-genesis-v1"))
}

// chainNext extends the chain over one canonical entry encoding.
func chainNext(prev [32]byte, enc []byte) [32]byte {
	return cryptoutil.Hash(prev[:], enc)
}

// checkpointMsg is the domain-separated byte string checkpoints sign.
func checkpointMsg(seq, counter uint64, head [32]byte) []byte {
	msg := make([]byte, 0, 28+16+32)
	msg = append(msg, []byte("lateral-journal-checkpoint-v1")...)
	msg = binary.BigEndian.AppendUint64(msg, seq)
	msg = binary.BigEndian.AppendUint64(msg, counter)
	msg = append(msg, head[:]...)
	return msg
}

// appendStr appends a length-prefixed string.
func appendStr(b []byte, s string) []byte {
	if len(s) > maxStrLen {
		s = s[:maxStrLen]
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// appendEntry appends the canonical hash-chained bytes of e (everything
// except the stored hash).
func appendEntry(b []byte, e *Event) []byte {
	b = binary.BigEndian.AppendUint64(b, e.Seq)
	b = binary.BigEndian.AppendUint64(b, uint64(e.At.UnixNano()))
	b = binary.BigEndian.AppendUint64(b, e.Trace)
	b = binary.BigEndian.AppendUint64(b, e.Span)
	b = appendStr(b, e.Kind)
	b = appendStr(b, e.Actor)
	return appendStr(b, e.Detail)
}

// Export serialises the journal — entries and checkpoints interleaved in
// chain order — into the canonical byte stream Replay consumes.
func (j *Journal) Export() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := append([]byte(nil), exportMagic...)
	ci := 0
	emitCkpts := func(upto uint64) {
		for ci < len(j.ckpts) && j.ckpts[ci].Seq <= upto {
			ck := j.ckpts[ci]
			out = append(out, tagCheckpoint)
			out = binary.BigEndian.AppendUint32(out, ckptBodyLen)
			out = binary.BigEndian.AppendUint64(out, ck.Seq)
			out = binary.BigEndian.AppendUint64(out, ck.Counter)
			out = append(out, ck.Head[:]...)
			out = append(out, ck.Sig...)
			ci++
		}
	}
	for i, enc := range j.enc {
		emitCkpts(j.entries[i].Seq - 1)
		out = append(out, tagEntry)
		out = binary.BigEndian.AppendUint32(out, uint32(len(enc)+32))
		out = append(out, enc...)
		out = append(out, j.entries[i].Hash[:]...)
		emitCkpts(j.entries[i].Seq)
	}
	emitCkpts(^uint64(0))
	return out
}

// decodeEntry parses one entry record body (canonical, fully consumed).
func decodeEntry(body []byte) (Event, []byte, error) {
	var e Event
	if len(body) < 32+32+6 { // fixed ints + hash + three empty strings
		return e, nil, fmt.Errorf("entry body %d bytes: %w", len(body), ErrBadRecord)
	}
	enc := body[:len(body)-32]
	copy(e.Hash[:], body[len(body)-32:])
	b := enc
	e.Seq = binary.BigEndian.Uint64(b[0:8])
	e.At = time.Unix(0, int64(binary.BigEndian.Uint64(b[8:16])))
	e.Trace = binary.BigEndian.Uint64(b[16:24])
	e.Span = binary.BigEndian.Uint64(b[24:32])
	b = b[32:]
	str := func() (string, error) {
		if len(b) < 2 {
			return "", fmt.Errorf("string header: %w", ErrBadRecord)
		}
		n := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if n > maxStrLen || len(b) < n {
			return "", fmt.Errorf("string length %d: %w", n, ErrBadRecord)
		}
		s := string(b[:n])
		b = b[n:]
		return s, nil
	}
	var err error
	if e.Kind, err = str(); err != nil {
		return e, nil, err
	}
	if e.Actor, err = str(); err != nil {
		return e, nil, err
	}
	if e.Detail, err = str(); err != nil {
		return e, nil, err
	}
	if len(b) != 0 {
		return e, nil, fmt.Errorf("%d trailing bytes in entry: %w", len(b), ErrBadRecord)
	}
	return e, enc, nil
}

// decodeCheckpoint parses one checkpoint record body.
func decodeCheckpoint(body []byte) (Checkpoint, error) {
	var ck Checkpoint
	if len(body) != ckptBodyLen {
		return ck, fmt.Errorf("checkpoint body %d bytes: %w", len(body), ErrBadRecord)
	}
	ck.Seq = binary.BigEndian.Uint64(body[0:8])
	ck.Counter = binary.BigEndian.Uint64(body[8:16])
	copy(ck.Head[:], body[16:48])
	ck.Sig = append([]byte(nil), body[48:]...)
	return ck, nil
}

// record is one decoded export record in stream order.
type record struct {
	ckpt bool
	ev   Event
	enc  []byte // canonical entry bytes (hash excluded)
	ck   Checkpoint
}

// decodeExport parses a full export stream into stream-ordered records
// without verifying the chain. Verification is Replay's job, so the
// fuzzer can separate framing errors from integrity errors.
func decodeExport(data []byte) ([]record, error) {
	if len(data) < len(exportMagic) {
		return nil, fmt.Errorf("missing magic: %w", ErrTruncated)
	}
	for i, m := range exportMagic {
		if data[i] != m {
			return nil, fmt.Errorf("bad magic: %w", ErrBadRecord)
		}
	}
	data = data[len(exportMagic):]
	var recs []record
	for len(data) > 0 {
		if len(data) < 5 {
			return nil, fmt.Errorf("record header: %w", ErrTruncated)
		}
		tag := data[0]
		n := binary.BigEndian.Uint32(data[1:5])
		if n > maxRecordLen {
			return nil, fmt.Errorf("record length %d: %w", n, ErrBadRecord)
		}
		data = data[5:]
		if uint32(len(data)) < n {
			return nil, fmt.Errorf("record body: %w", ErrTruncated)
		}
		body := data[:n]
		data = data[n:]
		switch tag {
		case tagEntry:
			e, enc, err := decodeEntry(body)
			if err != nil {
				return nil, err
			}
			recs = append(recs, record{ev: e, enc: enc})
		case tagCheckpoint:
			ck, err := decodeCheckpoint(body)
			if err != nil {
				return nil, err
			}
			recs = append(recs, record{ckpt: true, ck: ck})
		default:
			return nil, fmt.Errorf("record tag 0x%02x: %w", tag, ErrBadRecord)
		}
	}
	return recs, nil
}

// Reencode rebuilds the canonical export stream from replayed entries and
// checkpoints — the fuzzer's roundtrip oracle: for any input Replay
// accepts, Reencode(audit.Entries, audit.Checkpoints) must reproduce the
// input byte for byte.
func Reencode(entries []Event, ckpts []Checkpoint) []byte {
	out := append([]byte(nil), exportMagic...)
	ci := 0
	emitCkpts := func(upto uint64) {
		for ci < len(ckpts) && ckpts[ci].Seq <= upto {
			ck := ckpts[ci]
			out = append(out, tagCheckpoint)
			out = binary.BigEndian.AppendUint32(out, ckptBodyLen)
			out = binary.BigEndian.AppendUint64(out, ck.Seq)
			out = binary.BigEndian.AppendUint64(out, ck.Counter)
			out = append(out, ck.Head[:]...)
			out = append(out, ck.Sig...)
			ci++
		}
	}
	for i := range entries {
		e := &entries[i]
		emitCkpts(e.Seq - 1)
		enc := appendEntry(nil, e)
		out = append(out, tagEntry)
		out = binary.BigEndian.AppendUint32(out, uint32(len(enc)+32))
		out = append(out, enc...)
		out = append(out, e.Hash[:]...)
		emitCkpts(e.Seq)
	}
	emitCkpts(^uint64(0))
	return out
}

// verifySig reports whether ck's signature verifies under pub.
func (ck *Checkpoint) verifySig(pub ed25519.PublicKey) bool {
	return cryptoutil.Verify(pub, checkpointMsg(ck.Seq, ck.Counter, ck.Head), ck.Sig)
}
