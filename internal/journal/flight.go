package journal

// The flight recorder: a bounded ring of recently completed spans that is
// normally write-only and nearly free, dumped only when the journal sees
// an anomaly — a quarantine, a secure-channel session failure, or a
// deadline storm. Each dump freezes the last N spans plus a caller-
// supplied metrics snapshot, timestamped and labelled with its trigger,
// so a post-mortem has the request-level context the journal entry alone
// cannot carry.
//
// FlightRecorder implements core.Tracer structurally, so it plugs into
// System.SetTracer directly or fans in behind a composite tracer.

import (
	"sync"
	"time"

	"lateral/internal/core"
)

// FlightSpan is one completed span retained in the ring.
type FlightSpan struct {
	Trace   uint64
	Span    uint64
	Parent  uint64
	Kind    string
	From    string
	To      string
	Op      string
	Elapsed time.Duration
	Err     string
}

// Dump is one frozen anomaly snapshot.
type Dump struct {
	At      time.Time
	Trigger string // "quarantine", "session-fail", "deadline-storm"
	Detail  string
	Spans   []FlightSpan // oldest first
	Metrics string       // snapshot text, if a Snapshot hook was wired
}

// FlightConfig configures a FlightRecorder.
type FlightConfig struct {
	// Spans bounds the ring (default 64).
	Spans int
	// Dumps bounds retained dumps; older dumps are discarded (default 8).
	Dumps int
	// Snapshot, when set, is invoked at dump time for a metrics snapshot
	// (e.g. telemetry's WriteSummary into a buffer). It must not call
	// back into the journal.
	Snapshot func() string
	// Clock timestamps dumps (default time.Now).
	Clock func() time.Time
}

// FlightRecorder retains the last N spans and freezes them on demand.
type FlightRecorder struct {
	cfg FlightConfig

	mu    sync.Mutex
	ring  []FlightSpan
	next  int
	count int
	dumps []Dump
}

// NewFlightRecorder builds a recorder with bounded ring and dump storage.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if cfg.Spans <= 0 {
		cfg.Spans = 64
	}
	if cfg.Dumps <= 0 {
		cfg.Dumps = 8
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &FlightRecorder{cfg: cfg, ring: make([]FlightSpan, cfg.Spans)}
}

// SpanStart implements core.Tracer; only completed spans are retained.
func (f *FlightRecorder) SpanStart(core.Span, core.SpanInfo, time.Time) {}

// SpanEnd implements core.Tracer: append the completed span to the ring.
func (f *FlightRecorder) SpanEnd(sp core.Span, info core.SpanInfo, _ time.Time, elapsed time.Duration, err error) {
	fs := FlightSpan{
		Trace:   sp.Trace,
		Span:    sp.ID,
		Parent:  sp.Parent,
		Kind:    info.Kind.String(),
		From:    info.From,
		To:      info.To,
		Op:      info.Op,
		Elapsed: elapsed,
	}
	if err != nil {
		fs.Err = err.Error()
	}
	f.mu.Lock()
	f.ring[f.next] = fs
	f.next = (f.next + 1) % len(f.ring)
	if f.count < len(f.ring) {
		f.count++
	}
	f.mu.Unlock()
}

// Trigger freezes the current ring into a dump. The journal calls this on
// anomalies; tests and tools may trigger manually.
func (f *FlightRecorder) Trigger(trigger, detail string) Dump {
	var snap string
	if f.cfg.Snapshot != nil {
		snap = f.cfg.Snapshot()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	spans := make([]FlightSpan, 0, f.count)
	start := f.next - f.count
	if start < 0 {
		start += len(f.ring)
	}
	for i := 0; i < f.count; i++ {
		spans = append(spans, f.ring[(start+i)%len(f.ring)])
	}
	d := Dump{At: f.cfg.Clock(), Trigger: trigger, Detail: detail, Spans: spans, Metrics: snap}
	f.dumps = append(f.dumps, d)
	if len(f.dumps) > f.cfg.Dumps {
		f.dumps = f.dumps[len(f.dumps)-f.cfg.Dumps:]
	}
	return d
}

// Dumps returns the retained dumps, oldest first.
func (f *FlightRecorder) Dumps() []Dump {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Dump, len(f.dumps))
	copy(out, f.dumps)
	return out
}
