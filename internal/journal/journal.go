// Package journal is the fleet's black box: an append-only, hash-chained
// structured event journal recording every trust- and ops-relevant
// decision the runtime makes — attestation admission, quarantine,
// failover, health transitions, deadline sheds, and secure-channel
// session establishment and failure — each entry carrying the trace/span
// IDs of the request that caused it, so journal lines link back to the
// span trees `lateralctl trace` renders.
//
// Tamper evidence comes in two layers, the armored-witness shape:
//
//   - Every entry extends a SHA-256 hash chain from a fixed genesis, so
//     any single flipped byte — in an entry, its stored chain hash, or
//     the framing — breaks verification at that entry.
//   - Periodic signed checkpoints bind (sequence, chain head) to a
//     trusted monotonic counter (internal/tpm's NV counter in real
//     deployments, MemCounter in tests). A rolled-back or truncated
//     journal cannot present a final checkpoint matching the counter's
//     current value, so rollback is detected, not silently accepted —
//     the same anchor discipline as the vpfs journal.
//
// Replay (audit.go) re-derives the fleet's trust state from the events
// alone and fails loudly on any chain break, counter regression, or
// divergence from the live pool view. The flight recorder (flight.go)
// rides on the same substrate: anomalies dump the last N spans plus a
// metrics snapshot for post-mortem.
//
// The hook surface is one structural method — RecordEvent — declared as a
// tiny interface at each instrumented package (core, cluster,
// distributed), never imported from here; a nil recorder is the fast
// path, same discipline as core.Tracer.
package journal

import (
	"sync"
	"time"

	"lateral/internal/cryptoutil"
)

// Event kinds the runtime records. Instrumented packages emit these as
// plain strings (they declare only the structural RecordEvent interface
// and never import this package); the constants here are the canonical
// vocabulary replay derives trust state from.
const (
	// KindAdmit: a replica entered the pool (recorded before its attested
	// handshake resolves, so the replica exists in the derived state as
	// down until a replica-up follows).
	KindAdmit = "admit"

	// KindReplicaUp / KindReplicaDown: health transitions.
	KindReplicaUp   = "replica-up"
	KindReplicaDown = "replica-down"

	// KindQuarantine: attestation refused — the absorbing state. Replay
	// enforces exactly-once: a second quarantine event for one actor, or
	// any later transition out, is a divergence.
	KindQuarantine = "quarantine"

	// KindFailover: a call was re-routed away from the actor. Trust-state
	// neutral (the matching replica-down carries the transition).
	KindFailover = "failover"

	// KindDeadline / KindOverload / KindCancel: budget sheds on the
	// invocation path. Trust-state neutral; a burst of them is the
	// flight recorder's deadline-storm trigger.
	KindDeadline = "deadline"
	KindOverload = "overload"
	KindCancel   = "cancel"

	// KindSessionUp / KindSessionFail: secure-channel session lifecycle.
	KindSessionUp   = "session-up"
	KindSessionFail = "session-fail"

	// KindPolicyDeny / KindPolicyApprove: chain-aware policy verdicts.
	// Trust-state neutral — a deny judges one request, not the actor's
	// admission — but durable: an auditor replaying the journal sees
	// every refused egress and every approval grant with its TTL.
	KindPolicyDeny    = "policy-deny"
	KindPolicyApprove = "policy-approve"

	// KindLeave: a replica departed the fleet through an epoch
	// transition. Replay removes the actor from the derived state; a
	// leave for an unadmitted or quarantined actor is a divergence
	// (quarantine records are the fleet's memory and may not be shed).
	KindLeave = "leave"

	// KindEpochBegin / KindEpochMember: config-epoch anchor points. An
	// epoch-begin (actor = the fleet, detail "epoch=N <reason>") opens
	// transition N — epoch numbers must be strictly increasing — and the
	// epoch-member records that follow activation (detail
	// "epoch=N state=S") enumerate the membership the fleet settled on,
	// each checked against the trust state replay derived independently.
	KindEpochBegin  = "epoch-begin"
	KindEpochMember = "epoch-member"

	// KindShardAssign: a shard-map transition in a sharded fabric (actor =
	// "fabric/shard", detail "epoch=N join|leave"). Replay rebuilds the
	// placement history per fabric; a non-increasing epoch, a join for a
	// shard already mapped, or a leave for an unmapped shard is a
	// divergence — placement cannot be rewritten after the fact.
	KindShardAssign = "shard-assign"
)

// Event is one journal entry.
type Event struct {
	Seq    uint64 // 1-based, dense
	At     time.Time
	Kind   string
	Actor  string // who the event is about, e.g. "svc/svc-2"
	Detail string // free-form context, e.g. the error text
	Trace  uint64 // core.Tracer trace ID of the causing request (0 = none)
	Span   uint64 // core.Tracer span ID (0 = none)

	// Hash is the chain head after this entry:
	// SHA256(prev || canonical encoding). Stored so the export stream is
	// self-verifying entry by entry — a flipped byte is pinned to the
	// entry it hit, even past the last signed checkpoint.
	Hash [32]byte
}

// Checkpoint anchors the chain head to the trusted monotonic counter.
type Checkpoint struct {
	Seq     uint64   // entries covered (chain position)
	Counter uint64   // trusted counter value bound to this checkpoint
	Head    [32]byte // chain head at Seq
	Sig     []byte   // Ed25519 over the domain-separated (Seq, Counter, Head)
}

// Counter is the tiny piece of trusted, persistent, monotonic state the
// journal anchors to — tpm.NVCounter satisfies it structurally, and
// MemCounter stands in for it in tests and simulations.
type Counter interface {
	// Increment advances and returns the new value. Monotonic, durable.
	Increment() (uint64, error)
	// Value returns the current value.
	Value() (uint64, error)
}

// MemCounter is an in-memory Counter for tests and simulations.
type MemCounter struct {
	mu sync.Mutex
	v  uint64
}

// Increment implements Counter.
func (c *MemCounter) Increment() (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.v++
	return c.v, nil
}

// Value implements Counter.
func (c *MemCounter) Value() (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v, nil
}

// Monitor receives journal telemetry. telemetry.Metrics implements it
// structurally (the same pattern as cluster.Monitor); a nil Monitor is
// silently replaced by a no-op.
type Monitor interface {
	// JournalEvent records one appended entry by kind.
	JournalEvent(journal, kind string)
	// JournalCheckpoint records one signed checkpoint with its chain
	// position and counter anchor.
	JournalCheckpoint(journal string, seq, counter uint64)
	// JournalDropped records an event refused because the journal bound
	// was reached.
	JournalDropped(journal string)
	// JournalFlightDump records one anomaly-triggered flight dump.
	JournalFlightDump(journal, trigger string)
}

type nopMonitor struct{}

func (nopMonitor) JournalEvent(string, string)              {}
func (nopMonitor) JournalCheckpoint(string, uint64, uint64) {}
func (nopMonitor) JournalDropped(string)                    {}
func (nopMonitor) JournalFlightDump(string, string)         {}

// Config configures a Journal.
type Config struct {
	// Name labels the journal in telemetry (default "journal").
	Name string

	// Signer signs checkpoints. Required.
	Signer *cryptoutil.Signer

	// Counter is the trusted monotonic anchor. Required.
	Counter Counter

	// CheckpointEvery auto-checkpoints after that many entries
	// (default 32; negative disables automatic checkpoints — explicit
	// Checkpoint calls still work).
	CheckpointEvery int

	// MaxEntries bounds the in-memory journal (default 1<<16). Events
	// past the bound are counted as dropped, never silently lost from
	// telemetry.
	MaxEntries int

	// Clock timestamps entries (default time.Now). Simulation harnesses
	// inject the virtual clock so journals replay deterministically.
	Clock func() time.Time

	// Flight, when set, receives anomaly-triggered dump requests:
	// quarantine, session failure, and deadline storms.
	Flight *FlightRecorder

	// StormThreshold deadline/overload events within StormWindow trigger
	// a flight dump (defaults 8 within 100ms).
	StormThreshold int
	StormWindow    time.Duration

	// Monitor receives journal telemetry (default: discard).
	Monitor Monitor
}

// Journal is the append-only, hash-chained event log.
type Journal struct {
	cfg Config

	// ckptMu serializes Checkpoint end to end (counter increment + record
	// append), so concurrent checkpoints cannot interleave into a
	// counter-out-of-order log that its own audit would reject.
	ckptMu sync.Mutex

	mu        sync.Mutex
	entries   []Event
	enc       [][]byte // canonical encodings, the bytes the chain hashes
	ckpts     []Checkpoint
	head      [32]byte
	seq       uint64
	dropped   uint64
	sinceCkpt int
	tampers   int
	storm     []time.Time
}

// New validates the config and opens an empty journal at genesis.
func New(cfg Config) (*Journal, error) {
	if cfg.Signer == nil || cfg.Counter == nil {
		return nil, errConfig
	}
	if cfg.Name == "" {
		cfg.Name = "journal"
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 32
	}
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 1 << 16
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.StormThreshold <= 0 {
		cfg.StormThreshold = 8
	}
	if cfg.StormWindow <= 0 {
		cfg.StormWindow = 100 * time.Millisecond
	}
	if cfg.Monitor == nil {
		cfg.Monitor = nopMonitor{}
	}
	return &Journal{cfg: cfg, head: genesisHead()}, nil
}

// RecordEvent appends one event, extending the hash chain. It implements
// the structural EventRecorder interface core, cluster, and distributed
// declare. Implementations must not call back into the pool or system
// that emitted the event (the emitters hold their state locks so journal
// order equals commit order).
func (j *Journal) RecordEvent(kind, actor, detail string, trace, span uint64) {
	now := j.cfg.Clock()
	j.mu.Lock()
	if len(j.entries) >= j.cfg.MaxEntries {
		j.dropped++
		j.mu.Unlock()
		j.cfg.Monitor.JournalDropped(j.cfg.Name)
		return
	}
	j.seq++
	e := Event{Seq: j.seq, At: now, Kind: kind, Actor: actor, Detail: detail, Trace: trace, Span: span}
	enc := appendEntry(nil, &e)
	j.head = chainNext(j.head, enc)
	e.Hash = j.head
	j.entries = append(j.entries, e)
	j.enc = append(j.enc, enc)
	j.sinceCkpt++
	ckptDue := j.cfg.CheckpointEvery > 0 && j.sinceCkpt >= j.cfg.CheckpointEvery
	stormDump := false
	switch kind {
	case KindDeadline, KindOverload:
		j.storm = append(j.storm, now)
		cut := 0
		for cut < len(j.storm) && now.Sub(j.storm[cut]) > j.cfg.StormWindow {
			cut++
		}
		j.storm = j.storm[cut:]
		if len(j.storm) >= j.cfg.StormThreshold {
			stormDump = true
			j.storm = j.storm[:0]
		}
	}
	j.mu.Unlock()

	j.cfg.Monitor.JournalEvent(j.cfg.Name, kind)
	if ckptDue {
		// Best-effort: a failing counter leaves the chain unanchored past
		// the previous checkpoint, which the audit will surface.
		_ = j.Checkpoint()
	}
	switch {
	case kind == KindQuarantine || kind == KindSessionFail:
		j.flightDump(kind, actor+": "+detail)
	case stormDump:
		j.flightDump("deadline-storm", actor+": "+detail)
	}
}

// Checkpoint signs the current chain head under the next trusted counter
// value. The counter is bumped FIRST: a crash between the bump and the
// record leaves the trusted counter ahead of the last checkpoint, which
// the audit flags — conservative, never silently stale.
func (j *Journal) Checkpoint() error {
	j.ckptMu.Lock()
	defer j.ckptMu.Unlock()
	c, err := j.cfg.Counter.Increment()
	if err != nil {
		return err
	}
	j.mu.Lock()
	ck := Checkpoint{Seq: j.seq, Counter: c, Head: j.head}
	ck.Sig = j.cfg.Signer.Sign(checkpointMsg(ck.Seq, ck.Counter, ck.Head))
	j.ckpts = append(j.ckpts, ck)
	j.sinceCkpt = 0
	j.mu.Unlock()
	j.cfg.Monitor.JournalCheckpoint(j.cfg.Name, ck.Seq, ck.Counter)
	return nil
}

// flightDump asks the wired flight recorder for an anomaly dump.
func (j *Journal) flightDump(trigger, detail string) {
	if j.cfg.Flight == nil {
		return
	}
	j.cfg.Flight.Trigger(trigger, detail)
	j.cfg.Monitor.JournalFlightDump(j.cfg.Name, trigger)
}

// Entries returns a snapshot of all recorded events, in order.
func (j *Journal) Entries() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, len(j.entries))
	copy(out, j.entries)
	return out
}

// Checkpoints returns a snapshot of all signed checkpoints, in order.
func (j *Journal) Checkpoints() []Checkpoint {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Checkpoint, len(j.ckpts))
	copy(out, j.ckpts)
	return out
}

// Head returns the current chain position and head hash.
func (j *Journal) Head() (seq uint64, head [32]byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq, j.head
}

// Dropped reports events refused by the MaxEntries bound.
func (j *Journal) Dropped() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// TamperEntry flips one byte in the stored canonical encoding of entry i
// (0-based) — the simulation fault injector's hook for proving the
// auditor detects tampering. Returns false when no such entry exists.
// The in-memory chain head is NOT recomputed: this models an attacker
// mutating the journal at rest, which replay must catch. The flipped
// position rotates with every call, so tampering the same entry twice
// corrupts two bytes instead of XOR-restoring the first.
func (j *Journal) TamperEntry(i int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i < 0 || i >= len(j.enc) {
		return false
	}
	b := j.enc[i]
	b[(len(b)/2+j.tampers)%len(b)] ^= 0x40
	j.tampers++
	return true
}
