package journal

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
)

// testClock is a deterministic time source.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock {
	return &testClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// countMonitor counts Monitor callbacks.
type countMonitor struct {
	mu          sync.Mutex
	events      map[string]int
	checkpoints int
	dropped     int
	dumps       map[string]int
}

func newCountMonitor() *countMonitor {
	return &countMonitor{events: make(map[string]int), dumps: make(map[string]int)}
}

func (m *countMonitor) JournalEvent(_, kind string) {
	m.mu.Lock()
	m.events[kind]++
	m.mu.Unlock()
}

func (m *countMonitor) JournalCheckpoint(string, uint64, uint64) {
	m.mu.Lock()
	m.checkpoints++
	m.mu.Unlock()
}

func (m *countMonitor) JournalDropped(string) {
	m.mu.Lock()
	m.dropped++
	m.mu.Unlock()
}

func (m *countMonitor) JournalFlightDump(_, trigger string) {
	m.mu.Lock()
	m.dumps[trigger]++
	m.mu.Unlock()
}

func newTestJournal(t *testing.T, cfg Config) (*Journal, *cryptoutil.Signer, *MemCounter) {
	t.Helper()
	signer := cryptoutil.NewSigner("journal-test")
	counter := &MemCounter{}
	cfg.Signer = signer
	cfg.Counter = counter
	if cfg.Clock == nil {
		cfg.Clock = newTestClock().Now
	}
	j, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return j, signer, counter
}

// driveFleet records the canonical honest event sequence: three replicas
// admitted, one quarantined, one crashing and recovering.
func driveFleet(j *Journal) {
	for i := 1; i <= 3; i++ {
		j.RecordEvent(KindAdmit, fmt.Sprintf("svc/svc-%d", i), "", 0, 0)
	}
	j.RecordEvent(KindReplicaUp, "svc/svc-1", "", 0, 0)
	j.RecordEvent(KindReplicaUp, "svc/svc-2", "", 0, 0)
	j.RecordEvent(KindQuarantine, "svc/svc-3", "attestation refused", 0, 0)
	j.RecordEvent(KindSessionUp, "svc/svc-1", "", 0, 0)
	j.RecordEvent(KindReplicaDown, "svc/svc-2", "transport lost", 7, 9)
	j.RecordEvent(KindFailover, "svc/svc-2", "transport lost", 7, 9)
	j.RecordEvent(KindReplicaUp, "svc/svc-2", "", 0, 0)
}

func TestReplayRederivesTrustState(t *testing.T) {
	j, signer, counter := newTestJournal(t, Config{CheckpointEvery: -1})
	driveFleet(j)
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	trusted, _ := counter.Value()
	a, err := Replay(j.Export(), signer.Public(), trusted)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	want := map[string]string{
		"svc/svc-1": TrustHealthy,
		"svc/svc-2": TrustHealthy,
		"svc/svc-3": TrustQuarantined,
	}
	if diff := a.Diff(want); len(diff) != 0 {
		t.Fatalf("trust state diverges: %v", diff)
	}
	if len(a.Entries) != 10 || len(a.Checkpoints) != 1 {
		t.Fatalf("got %d entries, %d checkpoints", len(a.Entries), len(a.Checkpoints))
	}
	if a.Entries[7].Trace != 7 || a.Entries[7].Span != 9 {
		t.Fatalf("trace/span not preserved: %+v", a.Entries[7])
	}
	if seq, head := j.Head(); seq != a.LastSeq || head != a.Head {
		t.Fatalf("replayed head differs from live head")
	}
}

func TestDiffReportsDivergence(t *testing.T) {
	j, signer, counter := newTestJournal(t, Config{CheckpointEvery: -1})
	j.RecordEvent(KindAdmit, "svc/a", "", 0, 0)
	j.RecordEvent(KindReplicaUp, "svc/a", "", 0, 0)
	trusted, _ := counter.Value()
	a, err := Replay(j.Export(), signer.Public(), trusted)
	if err != nil {
		t.Fatal(err)
	}
	diff := a.Diff(map[string]string{"svc/a": TrustDown, "svc/b": TrustHealthy})
	if len(diff) != 2 {
		t.Fatalf("want 2 diff lines, got %v", diff)
	}
	a2, _ := Replay(j.Export(), signer.Public(), trusted)
	if d := a2.Diff(map[string]string{}); len(d) != 1 {
		t.Fatalf("want absent-live diff, got %v", d)
	}
}

// TestEveryByteFlipDetected is the E24 tamper property at full strength:
// no single corrupted byte anywhere in an exported journal — entries,
// hashes, checkpoints, framing — may replay cleanly.
func TestEveryByteFlipDetected(t *testing.T) {
	j, signer, counter := newTestJournal(t, Config{CheckpointEvery: 4})
	driveFleet(j)
	trusted, _ := counter.Value()
	export := j.Export()
	if _, err := Replay(export, signer.Public(), trusted); err != nil {
		t.Fatalf("clean replay: %v", err)
	}
	for i := range export {
		for _, mask := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), export...)
			mut[i] ^= mask
			if _, err := Replay(mut, signer.Public(), trusted); err == nil {
				t.Fatalf("flip of byte %d (mask %#x) replayed clean", i, mask)
			}
		}
	}
}

func TestTamperEntryDetected(t *testing.T) {
	j, signer, counter := newTestJournal(t, Config{CheckpointEvery: -1})
	driveFleet(j)
	if ok := j.TamperEntry(len(j.Entries()) + 5); ok {
		t.Fatal("tampering past the end claimed success")
	}
	if ok := j.TamperEntry(3); !ok {
		t.Fatal("tamper failed")
	}
	trusted, _ := counter.Value()
	_, err := Replay(j.Export(), signer.Public(), trusted)
	if !errors.Is(err, ErrChainBreak) {
		t.Fatalf("want ErrChainBreak, got %v", err)
	}
	// Tampering the same entry again must not XOR-restore it: the flip
	// position rotates, so the chain stays broken.
	if ok := j.TamperEntry(3); !ok {
		t.Fatal("second tamper failed")
	}
	if _, err := Replay(j.Export(), signer.Public(), trusted); !errors.Is(err, ErrChainBreak) {
		t.Fatalf("double tamper self-canceled: %v", err)
	}
}

func TestRollbackDetected(t *testing.T) {
	j, signer, counter := newTestJournal(t, Config{CheckpointEvery: 4})
	driveFleet(j)
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	trusted, _ := counter.Value()
	export := j.Export()

	// Counter regression: the trusted counter says fewer (or more)
	// checkpoints than the journal carries.
	for _, wrong := range []uint64{trusted - 1, trusted + 1, 0} {
		if _, err := Replay(export, signer.Public(), wrong); !errors.Is(err, ErrRollback) {
			t.Fatalf("trusted=%d: want ErrRollback, got %v", wrong, err)
		}
	}

	// Rolled-back journal: an attacker serves an old export against the
	// current counter.
	j2, signer2, counter2 := newTestJournal(t, Config{CheckpointEvery: -1})
	j2.RecordEvent(KindAdmit, "svc/a", "", 0, 0)
	if err := j2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	old := j2.Export()
	j2.RecordEvent(KindReplicaUp, "svc/a", "", 0, 0)
	if err := j2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	trusted2, _ := counter2.Value()
	if _, err := Replay(old, signer2.Public(), trusted2); !errors.Is(err, ErrRollback) {
		t.Fatalf("stale export: want ErrRollback, got %v", err)
	}

	// An entirely discarded journal cannot hide from a non-zero counter.
	empty, _, _ := newTestJournal(t, Config{CheckpointEvery: -1})
	if _, err := Replay(empty.Export(), signer2.Public(), trusted2); !errors.Is(err, ErrRollback) {
		t.Fatalf("empty export vs counter: want ErrRollback, got %v", err)
	}
	_ = counter
}

func TestTypedDecodeErrors(t *testing.T) {
	j, signer, counter := newTestJournal(t, Config{CheckpointEvery: 4})
	driveFleet(j)
	trusted, _ := counter.Value()
	export := j.Export()
	pub := signer.Public()

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"magic-only-prefix", export[:3], ErrTruncated},
		{"bad-magic", append([]byte("XXXXX"), export[5:]...), ErrBadRecord},
		{"truncated-mid-record", export[:len(export)-10], ErrTruncated},
		{"truncated-header", export[:6], ErrTruncated},
	}
	for _, tc := range cases {
		if _, err := Replay(tc.data, pub, trusted); !errors.Is(err, tc.want) {
			t.Errorf("%s: want %v, got %v", tc.name, tc.want, err)
		}
	}

	// Spliced chain: records from a foreign journal appended to ours must
	// break the chain, not extend it.
	other, _, _ := newTestJournal(t, Config{CheckpointEvery: -1})
	other.RecordEvent(KindAdmit, "svc/evil", "", 0, 0)
	foreign := other.Export()[len(exportMagic):]
	if _, err := Replay(append(append([]byte(nil), export...), foreign...), pub, trusted); err == nil {
		t.Error("spliced chain replayed clean")
	}

	// Checkpoint signed by the wrong key.
	wrongCounter := &MemCounter{}
	wrongKey, err := New(Config{
		Signer:          cryptoutil.NewSigner("journal-test-foreign"),
		Counter:         wrongCounter,
		CheckpointEvery: -1,
		Clock:           newTestClock().Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	wrongKey.RecordEvent(KindAdmit, "svc/a", "", 0, 0)
	if err := wrongKey.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	wc, _ := wrongCounter.Value()
	if _, err := Replay(wrongKey.Export(), pub, wc); !errors.Is(err, ErrBadCheckpoint) {
		t.Errorf("foreign signer: want ErrBadCheckpoint, got %v", err)
	}
}

func TestReplayRejectsDishonestSequences(t *testing.T) {
	mk := func() (*Journal, *cryptoutil.Signer, *MemCounter) {
		return newTestJournal(t, Config{CheckpointEvery: -1})
	}
	cases := []struct {
		name  string
		drive func(j *Journal)
	}{
		{"up-without-admit", func(j *Journal) {
			j.RecordEvent(KindReplicaUp, "svc/ghost", "", 0, 0)
		}},
		{"down-without-admit", func(j *Journal) {
			j.RecordEvent(KindReplicaDown, "svc/ghost", "", 0, 0)
		}},
		{"quarantine-without-admit", func(j *Journal) {
			j.RecordEvent(KindQuarantine, "svc/ghost", "", 0, 0)
		}},
		{"quarantine-twice", func(j *Journal) {
			j.RecordEvent(KindAdmit, "svc/a", "", 0, 0)
			j.RecordEvent(KindQuarantine, "svc/a", "", 0, 0)
			j.RecordEvent(KindQuarantine, "svc/a", "", 0, 0)
		}},
		{"resurrected-quarantine", func(j *Journal) {
			j.RecordEvent(KindAdmit, "svc/a", "", 0, 0)
			j.RecordEvent(KindQuarantine, "svc/a", "", 0, 0)
			j.RecordEvent(KindReplicaUp, "svc/a", "", 0, 0)
		}},
	}
	for _, tc := range cases {
		j, signer, counter := mk()
		tc.drive(j)
		trusted, _ := counter.Value()
		if _, err := Replay(j.Export(), signer.Public(), trusted); !errors.Is(err, ErrDivergence) {
			t.Errorf("%s: want ErrDivergence, got %v", tc.name, err)
		}
	}
}

func TestAutoCheckpointAndMonitor(t *testing.T) {
	mon := newCountMonitor()
	j, signer, counter := newTestJournal(t, Config{CheckpointEvery: 4, Monitor: mon})
	driveFleet(j) // 10 events → 2 auto checkpoints
	if got := len(j.Checkpoints()); got != 2 {
		t.Fatalf("want 2 auto checkpoints, got %d", got)
	}
	if mon.checkpoints != 2 {
		t.Fatalf("monitor saw %d checkpoints", mon.checkpoints)
	}
	if mon.events[KindAdmit] != 3 || mon.events[KindQuarantine] != 1 {
		t.Fatalf("monitor events: %v", mon.events)
	}
	trusted, _ := counter.Value()
	if trusted != 2 {
		t.Fatalf("counter at %d after 2 checkpoints", trusted)
	}
	if _, err := Replay(j.Export(), signer.Public(), trusted); err != nil {
		t.Fatalf("replay: %v", err)
	}
}

func TestBoundedJournalCountsDropped(t *testing.T) {
	mon := newCountMonitor()
	j, _, _ := newTestJournal(t, Config{CheckpointEvery: -1, MaxEntries: 4, Monitor: mon})
	driveFleet(j)
	if got := len(j.Entries()); got != 4 {
		t.Fatalf("want 4 retained entries, got %d", got)
	}
	if j.Dropped() != 6 || mon.dropped != 6 {
		t.Fatalf("dropped accounting: journal=%d monitor=%d", j.Dropped(), mon.dropped)
	}
}

func TestConcurrentRecordAndCheckpointStayAuditable(t *testing.T) {
	j, signer, counter := newTestJournal(t, Config{CheckpointEvery: 8, Clock: time.Now})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			actor := fmt.Sprintf("svc/r-%d", g)
			j.RecordEvent(KindAdmit, actor, "", 0, 0)
			for i := 0; i < 50; i++ {
				j.RecordEvent(KindSessionUp, actor, "", 0, 0)
			}
		}(g)
	}
	wg.Wait()
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	trusted, _ := counter.Value()
	if _, err := Replay(j.Export(), signer.Public(), trusted); err != nil {
		t.Fatalf("concurrent journal failed its own audit: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("want config error")
	}
	if _, err := New(Config{Signer: cryptoutil.NewSigner("x")}); err == nil {
		t.Fatal("want config error without counter")
	}
}

func TestReencodeIsReplayInverse(t *testing.T) {
	j, signer, counter := newTestJournal(t, Config{CheckpointEvery: 3})
	driveFleet(j)
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	trusted, _ := counter.Value()
	export := j.Export()
	a, err := Replay(export, signer.Public(), trusted)
	if err != nil {
		t.Fatal(err)
	}
	re := Reencode(a.Entries, a.Checkpoints)
	if string(re) != string(export) {
		t.Fatal("Reencode(Replay(export)) != export")
	}
}

func TestOversizeStringsStayCanonical(t *testing.T) {
	// Encode-side truncation must still produce a journal that replays and
	// roundtrips: the canonical bytes are what the chain commits to.
	j, signer, counter := newTestJournal(t, Config{CheckpointEvery: -1})
	long := strings.Repeat("x", maxStrLen+100)
	j.RecordEvent(KindAdmit, "svc/a", long, 0, 0)
	trusted, _ := counter.Value()
	export := j.Export()
	a, err := Replay(export, signer.Public(), trusted)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if got := len(a.Entries[0].Detail); got != maxStrLen {
		t.Fatalf("detail length %d, want truncation to %d", got, maxStrLen)
	}
	if string(Reencode(a.Entries, a.Checkpoints)) != string(export) {
		t.Fatal("truncated entry does not roundtrip")
	}
}

func TestFlightRecorderRingAndDumpBounds(t *testing.T) {
	clk := newTestClock()
	fr := NewFlightRecorder(FlightConfig{
		Spans:    4,
		Dumps:    2,
		Snapshot: func() string { return "metrics-snapshot" },
		Clock:    clk.Now,
	})
	fr.SpanStart(core.Span{}, core.SpanInfo{}, clk.Now()) // retained only on end
	for i := 1; i <= 6; i++ {
		var err error
		if i == 6 {
			err = errors.New("boom")
		}
		fr.SpanEnd(core.Span{Trace: uint64(i), ID: uint64(i)}, core.SpanInfo{Op: fmt.Sprintf("op-%d", i)},
			clk.Now(), time.Millisecond, err)
	}
	d := fr.Trigger("quarantine", "svc-3")
	if len(d.Spans) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(d.Spans))
	}
	// Oldest-first: spans 3..6 survive the wrap.
	if d.Spans[0].Trace != 3 || d.Spans[3].Trace != 6 {
		t.Fatalf("ring order wrong: first=%d last=%d", d.Spans[0].Trace, d.Spans[3].Trace)
	}
	if d.Spans[3].Err != "boom" || d.Metrics != "metrics-snapshot" || d.Trigger != "quarantine" {
		t.Fatalf("dump fields: %+v", d)
	}
	fr.Trigger("session-fail", "")
	fr.Trigger("deadline-storm", "")
	dumps := fr.Dumps()
	if len(dumps) != 2 {
		t.Fatalf("retained %d dumps, want bound 2", len(dumps))
	}
	if dumps[0].Trigger != "session-fail" || dumps[1].Trigger != "deadline-storm" {
		t.Fatalf("dump eviction order wrong: %s, %s", dumps[0].Trigger, dumps[1].Trigger)
	}
}

func TestAnomaliesTriggerFlightDumps(t *testing.T) {
	clk := newTestClock()
	mon := newCountMonitor()
	fr := NewFlightRecorder(FlightConfig{Clock: clk.Now})
	j, _, _ := newTestJournal(t, Config{
		CheckpointEvery: -1,
		Clock:           clk.Now,
		Flight:          fr,
		Monitor:         mon,
		StormThreshold:  3,
		StormWindow:     50 * time.Millisecond,
	})
	j.RecordEvent(KindAdmit, "svc/a", "", 0, 0)
	j.RecordEvent(KindQuarantine, "svc/a", "pcr mismatch", 0, 0)
	j.RecordEvent(KindSessionFail, "svc/b", "handshake", 0, 0)
	if got := len(fr.Dumps()); got != 2 {
		t.Fatalf("want quarantine+session-fail dumps, got %d", got)
	}

	// Two sheds, a gap wider than the window, then three in-window sheds:
	// only the dense burst is a storm.
	j.RecordEvent(KindDeadline, "comp", "d", 0, 0)
	j.RecordEvent(KindOverload, "comp", "o", 0, 0)
	clk.Advance(60 * time.Millisecond)
	j.RecordEvent(KindDeadline, "comp", "d", 0, 0)
	j.RecordEvent(KindDeadline, "comp", "d", 0, 0)
	if got := len(fr.Dumps()); got != 2 {
		t.Fatalf("storm fired early: %d dumps", got)
	}
	j.RecordEvent(KindOverload, "comp", "o", 0, 0)
	dumps := fr.Dumps()
	if got := len(dumps); got != 3 {
		t.Fatalf("storm did not fire: %d dumps", got)
	}
	if dumps[2].Trigger != "deadline-storm" {
		t.Fatalf("trigger = %s", dumps[2].Trigger)
	}
	if mon.dumps["deadline-storm"] != 1 || mon.dumps["quarantine"] != 1 || mon.dumps["session-fail"] != 1 {
		t.Fatalf("monitor dump counts: %v", mon.dumps)
	}
}

func TestMemCounter(t *testing.T) {
	c := &MemCounter{}
	if v, _ := c.Value(); v != 0 {
		t.Fatal("fresh counter non-zero")
	}
	if v, _ := c.Increment(); v != 1 {
		t.Fatal("increment")
	}
	if v, _ := c.Value(); v != 1 {
		t.Fatal("value after increment")
	}
}
