package partition

import (
	"errors"
	"testing"
)

// mailProgram is the §III-C mail client described as an annotated
// monolith — what a Privtrans-style tool would extract from source.
func mailProgram() *Program {
	return &Program{Functions: []Function{
		{Name: "ui", Calls: []string{"fetch", "suggest", "lookup"}},
		{Name: "fetch", Exposed: true, Calls: []string{"tls_recv", "parse"}},
		{Name: "parse", Exposed: true, Calls: []string{"render_html"}},
		{Name: "render_html", Exposed: true, Calls: []string{"archive_save"}},
		{Name: "tls_recv", Assets: []string{"tls-key"}},
		{Name: "tls_send", Assets: []string{"tls-key", "password"}},
		{Name: "login", Assets: []string{"password"}, Calls: []string{"tls_send"}},
		{Name: "suggest", Assets: []string{"dictionary"}},
		{Name: "lookup", Assets: []string{"contacts"}},
		{Name: "archive_save", Assets: []string{"archive"}},
		{Name: "archive_load", Assets: []string{"archive"}},
	}}
}

func TestValidate(t *testing.T) {
	if err := mailProgram().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Program{Functions: []Function{{Name: ""}}}
	if err := bad.Validate(); !errors.Is(err, ErrProgram) {
		t.Errorf("empty name: %v", err)
	}
	dup := &Program{Functions: []Function{{Name: "a"}, {Name: "a"}}}
	if err := dup.Validate(); !errors.Is(err, ErrProgram) {
		t.Errorf("duplicate: %v", err)
	}
	dangling := &Program{Functions: []Function{{Name: "a", Calls: []string{"ghost"}}}}
	if err := dangling.Validate(); !errors.Is(err, ErrProgram) {
		t.Errorf("dangling call: %v", err)
	}
	if _, err := Partition(dangling); !errors.Is(err, ErrProgram) {
		t.Errorf("partition of invalid program: %v", err)
	}
	if _, err := MonolithicManifest(dangling); !errors.Is(err, ErrProgram) {
		t.Errorf("monolith of invalid program: %v", err)
	}
}

func TestAssetAffinityClustering(t *testing.T) {
	r, err := Partition(mailProgram())
	if err != nil {
		t.Fatal(err)
	}
	// tls_recv, tls_send, login share assets transitively (tls-key,
	// password) → one domain.
	if r.DomainOf["tls_recv"] != r.DomainOf["tls_send"] ||
		r.DomainOf["tls_send"] != r.DomainOf["login"] {
		t.Errorf("tls cluster split: %v %v %v",
			r.DomainOf["tls_recv"], r.DomainOf["tls_send"], r.DomainOf["login"])
	}
	// archive_save and archive_load share the archive.
	if r.DomainOf["archive_save"] != r.DomainOf["archive_load"] {
		t.Error("archive cluster split")
	}
	// Distinct asset clusters must not merge.
	if r.DomainOf["suggest"] == r.DomainOf["lookup"] {
		t.Error("dictionary and contacts merged")
	}
	if r.DomainOf["tls_recv"] == r.DomainOf["archive_save"] {
		t.Error("tls and archive merged")
	}
}

func TestExposedFunctionsStandAlone(t *testing.T) {
	r, err := Partition(mailProgram())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fetch", "parse", "render_html"} {
		if r.DomainOf[name] != name {
			t.Errorf("exposed %s placed in %s, want its own domain", name, r.DomainOf[name])
		}
	}
	// Exposed functions never share a domain with asset holders.
	for _, name := range []string{"fetch", "parse", "render_html"} {
		for _, holder := range []string{"tls_recv", "suggest", "lookup", "archive_save"} {
			if r.DomainOf[name] == r.DomainOf[holder] {
				t.Errorf("exposed %s colocated with asset holder %s", name, holder)
			}
		}
	}
}

func TestChannelsFollowCallGraph(t *testing.T) {
	r, err := Partition(mailProgram())
	if err != nil {
		t.Fatal(err)
	}
	has := func(from, to string) bool {
		for _, ch := range r.Manifest.Channels {
			if ch.From == from && ch.To == to {
				return true
			}
		}
		return false
	}
	// Cross-domain edges become channels.
	if !has("fetch", "tls_recv") || !has("render_html", "archive_save") {
		t.Error("cross-domain call edges missing channels")
	}
	// Intra-domain edges (login → tls_send, same cluster) do not.
	if has("login", "tls_send") {
		t.Error("intra-domain call got a channel")
	}
	// Every channel is badged (capability identification by default).
	for _, ch := range r.Manifest.Channels {
		if ch.Badge == 0 {
			t.Errorf("ambient channel %s→%s", ch.From, ch.To)
		}
	}
}

func TestPartitionImprovesStaticContainment(t *testing.T) {
	p := mailProgram()
	r, err := Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	mono, err := MonolithicManifest(p)
	if err != nil {
		t.Fatal(err)
	}
	// Static containment: a renderer compromise reaches everything in the
	// monolith and nothing in the partitioned layout.
	if got := len(mono.AssetsInDomain("render_html")); got != 5 {
		t.Errorf("monolithic colocated assets = %d, want 5", got)
	}
	if got := len(r.Manifest.AssetsInDomain("render_html")); got != 0 {
		t.Errorf("partitioned renderer colocated assets = %d, want 0", got)
	}
	// The tls cluster risks exactly its own two unique assets.
	got := r.Manifest.AssetsInDomain("login")
	if len(got) != 2 {
		t.Errorf("tls cluster assets = %v, want [password tls-key]", got)
	}
}

func TestSummarize(t *testing.T) {
	r, err := Partition(mailProgram())
	if err != nil {
		t.Fatal(err)
	}
	s := r.Summarize()
	if s.Functions != 11 {
		t.Errorf("functions = %d", s.Functions)
	}
	if s.Exposed != 3 {
		t.Errorf("exposed = %d", s.Exposed)
	}
	// ui, fetch, parse, render_html each alone (4) + tls cluster +
	// archive cluster + suggest + lookup = 8 domains.
	if s.Domains != 8 {
		t.Errorf("domains = %d, want 8", s.Domains)
	}
	if s.Channels == 0 {
		t.Error("no channels derived")
	}
}

func TestManifestsValidate(t *testing.T) {
	p := mailProgram()
	r, err := Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Manifest.Validate(); err != nil {
		t.Errorf("partitioned manifest invalid: %v", err)
	}
	mono, err := MonolithicManifest(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := mono.Validate(); err != nil {
		t.Errorf("monolithic manifest invalid: %v", err)
	}
}

func TestProgramWithoutAssetsOrCalls(t *testing.T) {
	p := &Program{Functions: []Function{{Name: "solo"}}}
	r, err := Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.DomainOf["solo"] != "solo" {
		t.Errorf("solo domain = %s", r.DomainOf["solo"])
	}
	if len(r.Manifest.Channels) != 0 {
		t.Error("channels from nowhere")
	}
}
