package partition

import (
	"fmt"

	"lateral/internal/core"
	"lateral/internal/manifest"
)

// This file turns an annotated Program into a RUNNING system: each
// function becomes a generic component that stores its assets, forwards
// the call graph over granted channels, and carries the standard
// adversarial payload. The attack framework can then measure containment
// of the auto-partitioned layout directly (experiment E18), rather than
// arguing about it statically.

// funcComp is the generic executable stand-in for one Function.
type funcComp struct {
	fn     Function
	secret map[string][]byte
	ctx    *core.Ctx
}

func (f *funcComp) CompName() string    { return f.fn.Name }
func (f *funcComp) CompVersion() string { return "1.0" }

func (f *funcComp) Init(ctx *core.Ctx) error {
	f.ctx = ctx
	for _, a := range f.fn.Assets {
		if err := ctx.StoreAsset(a, f.secret[a]); err != nil {
			return err
		}
	}
	return nil
}

// Handle models "execute this function": touch the assets, then invoke
// every callee (cross-domain callees via channels; intra-domain callees
// are plain calls, modeled as no-ops since they share fate anyway).
func (f *funcComp) Handle(env core.Envelope) (core.Message, error) {
	for _, a := range f.fn.Assets {
		if _, err := f.ctx.LoadAsset(a); err != nil {
			return core.Message{}, err
		}
	}
	for _, callee := range f.fn.Calls {
		if f.ctx.HasChannel(callee) {
			if _, err := f.ctx.Call(callee, core.Message{Op: "run"}); err != nil {
				return core.Message{}, fmt.Errorf("%s→%s: %w", f.fn.Name, callee, err)
			}
		}
	}
	return core.Message{Op: "done"}, nil
}

// HandleCompromised is the standard exploit payload: read everything
// reachable, probe every granted channel.
func (f *funcComp) HandleCompromised(core.Envelope) (core.Message, error) {
	for _, ch := range f.ctx.Channels() {
		_, _ = f.ctx.Call(ch, core.Message{Op: "run"})
	}
	return core.Message{Op: "pwned"}, nil
}

// Instantiate loads the program onto a substrate under the given manifest
// (use Partition(...).Manifest or MonolithicManifest). It returns the
// running system and the asset map for leak scoring.
func Instantiate(p *Program, sub core.Substrate, m *manifest.Manifest) (*core.System, map[string][]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	assets := make(map[string][]byte)
	for _, f := range p.Functions {
		for _, a := range f.Assets {
			if _, ok := assets[a]; !ok {
				assets[a] = []byte("ASSET-" + a + "-value")
			}
		}
	}
	reg := manifest.Registry{}
	for _, f := range p.Functions {
		reg[f.Name] = &funcComp{fn: f, secret: assets}
	}
	sys := core.NewSystem(sub)
	if err := m.Apply(sys, reg); err != nil {
		return nil, nil, err
	}
	return sys, assets, nil
}

// FunctionNames lists the program's functions (sweep targets).
func (p *Program) FunctionNames() []string {
	out := make([]string, len(p.Functions))
	for i, f := range p.Functions {
		out[i] = f.Name
	}
	return out
}
