// Package partition implements automatic application partitioning — the
// §IV call to action: "Developers need support for application
// decomposition by better programming language integration. Existing
// approaches [Privtrans, Swift] should be extended."
//
// Input: a Program — the functions of a monolithic application annotated
// with the secret assets they touch, whether they parse outside input, and
// whom they call. Output: a manifest.Manifest that places the functions
// into protection domains under two rules drawn from the paper:
//
//  1. Asset affinity: functions sharing an asset must share a domain (they
//     need the data in memory), and distinct asset clusters must NOT share
//     one (colocation is transitive compromise, Fig. 1). Clustering is a
//     union-find over shared assets.
//  2. Attack-surface splitting: every Exposed function (it parses data
//     from the outside world) is evicted into its own domain, regardless
//     of affinity — the paper's "code that handles data received from the
//     network ... should be isolated". An exposed function that NEEDS an
//     asset keeps a channel to the asset's guardian domain instead of the
//     asset itself.
//
// Channels are derived from the call graph: one badged channel per
// cross-domain call edge. The result validates under manifest.Validate and
// is measurably better contained than the monolithic placement (see the
// package tests and experiment E18).
package partition

import (
	"errors"
	"fmt"
	"sort"

	"lateral/internal/manifest"
)

// ErrProgram is returned for inconsistent program descriptions.
var ErrProgram = errors.New("partition: invalid program")

// Function is one unit of the monolithic program.
type Function struct {
	// Name is unique within the program.
	Name string

	// Assets are the secrets this function must hold in memory.
	Assets []string

	// Exposed marks functions that parse input from the outside world.
	Exposed bool

	// Calls lists callee function names.
	Calls []string
}

// Program is the annotated monolith.
type Program struct {
	Functions []Function
}

// Validate checks name uniqueness and call-graph closure.
func (p *Program) Validate() error {
	names := make(map[string]bool, len(p.Functions))
	for _, f := range p.Functions {
		if f.Name == "" {
			return fmt.Errorf("%w: empty function name", ErrProgram)
		}
		if names[f.Name] {
			return fmt.Errorf("%w: duplicate function %q", ErrProgram, f.Name)
		}
		names[f.Name] = true
	}
	for _, f := range p.Functions {
		for _, c := range f.Calls {
			if !names[c] {
				return fmt.Errorf("%w: %q calls unknown %q", ErrProgram, f.Name, c)
			}
		}
	}
	return nil
}

// union-find over function indices.
type dsu struct {
	parent []int
}

func newDSU(n int) *dsu {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &dsu{parent: p}
}

func (d *dsu) find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

func (d *dsu) union(a, b int) {
	ra, rb := d.find(a), d.find(b)
	if ra != rb {
		d.parent[rb] = ra
	}
}

// Result is the partitioning outcome.
type Result struct {
	// Manifest is the derived placement + channels.
	Manifest *manifest.Manifest

	// DomainOf maps function name → domain name.
	DomainOf map[string]string
}

// Partition derives the horizontal placement.
func Partition(p *Program) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	idx := make(map[string]int, len(p.Functions))
	for i, f := range p.Functions {
		idx[f.Name] = i
	}

	// Rule 1: cluster non-exposed functions by shared assets.
	d := newDSU(len(p.Functions))
	assetHome := make(map[string]int) // asset -> first non-exposed function index
	for i, f := range p.Functions {
		if f.Exposed {
			continue
		}
		for _, a := range f.Assets {
			if h, ok := assetHome[a]; ok {
				d.union(h, i)
			} else {
				assetHome[a] = i
			}
		}
	}

	// Assign domain names: exposed functions stand alone; clusters are
	// named after their lexicographically first member.
	members := make(map[int][]string) // root -> function names
	domainOf := make(map[string]string, len(p.Functions))
	for i, f := range p.Functions {
		if f.Exposed {
			domainOf[f.Name] = f.Name
			continue
		}
		root := d.find(i)
		members[root] = append(members[root], f.Name)
	}
	for _, names := range members {
		sort.Strings(names)
		dom := names[0]
		for _, n := range names {
			domainOf[n] = dom
		}
	}

	// Build component declarations. Assets are declared on the function
	// that holds them (deduplicated per domain by the manifest semantics).
	m := &manifest.Manifest{}
	for _, f := range p.Functions {
		m.Components = append(m.Components, manifest.ComponentDecl{
			Name:     f.Name,
			Domain:   domainOf[f.Name],
			Exposed:  f.Exposed,
			Assets:   append([]string(nil), f.Assets...),
			MemPages: 1,
		})
	}

	// Rule 2 + channels: one badged channel per cross-domain call edge.
	badge := uint64(1)
	seen := make(map[string]bool)
	for _, f := range p.Functions {
		for _, callee := range f.Calls {
			if domainOf[f.Name] == domainOf[callee] {
				continue // intra-domain call: a plain function call
			}
			key := f.Name + "->" + callee
			if seen[key] {
				continue
			}
			seen[key] = true
			m.Channels = append(m.Channels, manifest.ChannelDecl{
				Name:  callee,
				From:  f.Name,
				To:    callee,
				Badge: badge,
			})
			badge++
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("partition produced invalid manifest: %w", err)
	}
	return &Result{Manifest: m, DomainOf: domainOf}, nil
}

// MonolithicManifest places the whole program into one domain — the
// baseline the partitioner is compared against.
func MonolithicManifest(p *Program) (*manifest.Manifest, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &manifest.Manifest{}
	for _, f := range p.Functions {
		m.Components = append(m.Components, manifest.ComponentDecl{
			Name:     f.Name,
			Domain:   "app",
			Exposed:  f.Exposed,
			Assets:   append([]string(nil), f.Assets...),
			MemPages: 8,
		})
	}
	badge := uint64(1)
	seen := make(map[string]bool)
	for _, f := range p.Functions {
		for _, callee := range f.Calls {
			key := f.Name + "->" + callee
			if seen[key] || f.Name == callee {
				continue
			}
			seen[key] = true
			m.Channels = append(m.Channels, manifest.ChannelDecl{
				Name: callee, From: f.Name, To: callee, Badge: badge,
			})
			badge++
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Stats summarizes a partitioning for reports.
type Stats struct {
	Functions int
	Domains   int
	Channels  int
	Exposed   int
}

// Summarize computes partitioning statistics.
func (r *Result) Summarize() Stats {
	doms := make(map[string]bool)
	for _, d := range r.DomainOf {
		doms[d] = true
	}
	s := Stats{
		Functions: len(r.Manifest.Components),
		Domains:   len(doms),
		Channels:  len(r.Manifest.Channels),
	}
	for _, c := range r.Manifest.Components {
		if c.Exposed {
			s.Exposed++
		}
	}
	return s
}
