package policy

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"lateral/internal/cap"
	"lateral/internal/core"
)

// Engine enforces a RuleSet as a core.Policy. It is pure with respect to
// the system it guards — CheckInvoke never calls back into core — and
// deterministic for a given request, clock reading, and approver answer,
// which is what lets the simulation soak replay policy decisions.
//
// Approval rules turn into capability grants: when the Approver says yes,
// the engine mints an Invoke capability with the configured TTL from its
// own grant root (cap.MintTTL on the injected clock) and caches it per
// (rule, caller). While the grant is live, matching invocations pass
// without re-asking; once it decays the check fails closed and the next
// invocation must be re-approved. Approvals are journaled through the
// Recorder as "policy-approve" (denies are journaled by core itself as
// "policy-deny", with the causing span).
type Engine struct {
	name     string
	rules    *RuleSet
	approver Approver
	ttl      time.Duration
	clock    func() time.Time
	rec      Recorder
	mon      Monitor

	root *cap.Cap // grant authority all approval caps are minted from

	mu     sync.Mutex
	grants map[string]*cap.Cap // rule|caller → live approval grant
	badge  uint64
}

// Recorder receives journal events; journal.Journal satisfies it
// structurally (it is core.EventRecorder restated here so the engine does
// not import core's consumer-side name).
type Recorder interface {
	RecordEvent(kind, actor, detail string, trace, span uint64)
}

// Monitor receives policy telemetry; telemetry.Metrics satisfies it
// structurally, the same pattern as cluster.Monitor and journal's.
type Monitor interface {
	// PolicyDecision records one evaluated check. Effect is "allow",
	// "deny", or "approve"; rule is the matched rule's name, or
	// "(default)" when no rule matched and the default allow applied.
	PolicyDecision(engine, effect, rule string)

	// PolicyGrant records approval-grant lifecycle: event is "mint" (a
	// fresh approval granted), "reuse" (a live grant covered the call), or
	// "expire" (a cached grant found decayed and discarded).
	PolicyGrant(engine, rule, event string)
}

// Approver answers approval-required checks. Implementations must be
// deterministic per (rule, request) within one simulation run. A nil
// Approver in the config means every approval request is refused — absent
// an authority, the engine fails closed.
type Approver interface {
	Approve(rule string, req core.PolicyRequest) bool
}

// ApproverFunc adapts a function to the Approver interface.
type ApproverFunc func(rule string, req core.PolicyRequest) bool

// Approve implements Approver.
func (f ApproverFunc) Approve(rule string, req core.PolicyRequest) bool { return f(rule, req) }

// Config parameterizes an Engine.
type Config struct {
	// Name labels the engine in telemetry and journal entries. Defaults
	// to "policy".
	Name string

	// Rules is the policy to enforce. Required; validated at New.
	Rules *RuleSet

	// Approver answers Approve-effect rules. Nil fails every approval
	// closed.
	Approver Approver

	// GrantTTL is the lifetime of an approval grant. Zero means grants
	// never decay (they still die with the engine).
	GrantTTL time.Duration

	// Clock drives grant decay; nil uses the wall clock. Simulations
	// inject their virtual clock so decay is deterministic.
	Clock func() time.Time

	// Recorder, when set, journals "policy-approve" events.
	Recorder Recorder

	// Monitor, when set, receives per-decision telemetry.
	Monitor Monitor
}

// grantRoot is the opaque object approval grants designate.
type grantRoot struct{ name string }

func (g grantRoot) ObjectName() string { return "policy-grants:" + g.name }

// New builds an engine over a validated rule set.
func New(cfg Config) (*Engine, error) {
	if cfg.Rules == nil {
		return nil, fmt.Errorf("policy: nil rule set: %w", ErrRule)
	}
	if err := cfg.Rules.Validate(); err != nil {
		return nil, err
	}
	name := cfg.Name
	if name == "" {
		name = "policy"
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	return &Engine{
		name:     name,
		rules:    cfg.Rules,
		approver: cfg.Approver,
		ttl:      cfg.GrantTTL,
		clock:    clock,
		rec:      cfg.Recorder,
		mon:      cfg.Monitor,
		root:     cap.NewRoot(grantRoot{name: name}, cap.Invoke|cap.Grant),
		grants:   make(map[string]*cap.Cap),
	}, nil
}

// Name returns the engine's telemetry label.
func (e *Engine) Name() string { return e.name }

var _ core.Policy = (*Engine)(nil)

// CheckInvoke implements core.Policy: compute the labels this hop
// confers, find the first matching verdict rule, and apply it.
func (e *Engine) CheckInvoke(req core.PolicyRequest) ([]string, error) {
	acquire := e.rules.Acquired(req.Channel, req.Op)
	r := e.rules.Match(req)
	if r == nil {
		e.decide("allow", "(default)")
		return acquire, nil
	}
	switch r.Effect {
	case Deny:
		e.decide("deny", r.Name)
		return nil, e.refuse(r, req, "denied")
	case Approve:
		if err := e.approve(r, req); err != nil {
			e.decide("deny", r.Name)
			return nil, err
		}
		e.decide("approve", r.Name)
		return acquire, nil
	default:
		e.decide("allow", r.Name)
		return acquire, nil
	}
}

// approve passes the request if a live grant covers it, otherwise asks
// the Approver and mints a decaying grant on yes.
func (e *Engine) approve(r *Rule, req core.PolicyRequest) error {
	key := r.Name + "|" + req.From
	e.mu.Lock()
	g := e.grants[key]
	e.mu.Unlock()
	if g != nil {
		err := g.Demand(cap.Invoke)
		if err == nil {
			e.grant(r.Name, "reuse")
			return nil
		}
		if errors.Is(err, cap.ErrExpired) || errors.Is(err, cap.ErrRevoked) {
			e.mu.Lock()
			if e.grants[key] == g {
				delete(e.grants, key)
			}
			e.mu.Unlock()
			e.grant(r.Name, "expire")
		}
	}
	if e.approver == nil || !e.approver.Approve(r.Name, req) {
		return e.refuse(r, req, "approval refused")
	}
	c, err := e.mintGrant()
	if err != nil {
		return fmt.Errorf("policy %s: rule %q: grant mint failed: %v: %w", e.name, r.Name, err, core.ErrPolicy)
	}
	e.mu.Lock()
	e.grants[key] = c
	e.mu.Unlock()
	e.grant(r.Name, "mint")
	if e.rec != nil {
		e.rec.RecordEvent("policy-approve", req.From,
			fmt.Sprintf("rule %s: %s may invoke %s op %s (ttl %s)", r.Name, req.From, req.Channel, req.Op, e.ttl), 0, 0)
	}
	return nil
}

// mintGrant mints one approval capability: decaying after GrantTTL, or
// permanent when the TTL is zero.
func (e *Engine) mintGrant() (*cap.Cap, error) {
	e.mu.Lock()
	e.badge++
	badge := e.badge
	e.mu.Unlock()
	if e.ttl == 0 {
		return e.root.Mint(cap.Invoke, badge)
	}
	return e.root.MintTTL(cap.Invoke, badge, e.ttl, e.clock)
}

// RevokeGrants invalidates every outstanding approval grant (operator
// "pull the plug": all approval-gated invocations must be re-approved).
func (e *Engine) RevokeGrants() {
	e.mu.Lock()
	grants := e.grants
	e.grants = make(map[string]*cap.Cap)
	e.mu.Unlock()
	for _, g := range grants {
		g.Revoke()
	}
}

// refuse builds the deterministic deny error, wrapping core.ErrPolicy so
// errors.Is works locally and (rehydrated) across the wire.
func (e *Engine) refuse(r *Rule, req core.PolicyRequest, why string) error {
	from := req.From
	if from == "" {
		from = "(external)"
	}
	return fmt.Errorf("policy %s: rule %q %s: %s invoking %s op %q with taint [%s]: %w",
		e.name, r.Name, why, from, req.Channel, req.Op, strings.Join(req.Taint, ","), core.ErrPolicy)
}

func (e *Engine) decide(effect, rule string) {
	if e.mon != nil {
		e.mon.PolicyDecision(e.name, effect, rule)
	}
}

func (e *Engine) grant(rule, event string) {
	if e.mon != nil {
		e.mon.PolicyGrant(e.name, rule, event)
	}
}
