// Package policy is the chain-aware runtime policy engine: declarative
// rules evaluated over the *accumulated context* of an invocation chain,
// not just its next hop. Each chain carries a taint set — labels conferred
// by the channels and assets it has touched, on this machine or upstream
// of the wire — and rules decide what a chain so labelled may still do:
//
//	taint to-store ids meter-identities
//	deny no-exfil to-net * when meter-identities
//
// reads "touching the id store taints the chain with meter-identities, and
// a chain so tainted may never invoke the network channel". This closes
// the mosaic/confused-deputy gap that per-hop capability checks leave
// open: every individual hop can be authorized while the *sequence* is
// what leaks (paper §III-D).
//
// The package provides the rule model and matching (this file), a
// canonical text codec (codec.go), and the Engine that enforces a RuleSet
// as a core.Policy with approval grants that decay on a TTL (engine.go).
// core declares the Policy interface and never imports this package — the
// same structural-interface pattern as Tracer and EventRecorder.
package policy

import (
	"errors"
	"fmt"
	"sort"

	"lateral/internal/core"
)

// ErrRule is returned when a rule or rule set is structurally invalid:
// bad effect, malformed token, or a bound exceeded.
var ErrRule = errors.New("policy: invalid rule")

// Bounds on rule sets. MaxLabels and MaxTokenLen match the wire frame's
// taint field limits (distributed codec): a label a rule can confer is a
// label the frame can carry.
const (
	// MaxLabels bounds the labels one directive may name and the taint
	// set a chain may accumulate on the wire.
	MaxLabels = 16

	// MaxTokenLen bounds every token: labels, rule names, channels, ops.
	MaxTokenLen = 64

	// MaxRules bounds the total directives (taint + verdict) in one set.
	MaxRules = 256
)

// Effect is a rule's verdict.
type Effect uint8

// Effects, in severity order.
const (
	// Allow permits the invocation (useful as a carve-out ahead of a
	// broader deny, since matching is first-match-wins).
	Allow Effect = iota

	// Deny refuses the invocation with core.ErrPolicy.
	Deny

	// Approve requires a live approval grant: the engine consults its
	// Approver, and a granted approval is a TTL'd capability that decays —
	// the invocation must be re-approved once it expires.
	Approve
)

func (e Effect) String() string {
	switch e {
	case Allow:
		return "allow"
	case Deny:
		return "deny"
	case Approve:
		return "approve"
	}
	return fmt.Sprintf("effect(%d)", uint8(e))
}

// TaintRule confers labels: a chain invoking a matching channel/op
// acquires Labels into its taint set. Channel and Op are exact matches or
// "*"; the core pseudo-channels "@deliver" and "@asset" are matched like
// any other (for "@asset", the asset name is the op).
type TaintRule struct {
	Channel string
	Op      string
	Labels  []string // sorted, deduplicated
}

// Rule is one verdict: the first rule whose Channel, Op, and When all
// match decides the invocation. When lists labels that must ALL be
// present in the chain's taint (empty = matches any chain). A request no
// rule matches is allowed — the rule set is a restriction on an otherwise
// capability-governed system, not the source of authority.
type Rule struct {
	Name    string // unique within the set; journaled and metered
	Effect  Effect
	Channel string
	Op      string
	When    []string // sorted, deduplicated
}

// RuleSet is an ordered policy: taint rules (label acquisition) plus
// verdict rules (first match wins).
type RuleSet struct {
	Taints []TaintRule
	Rules  []Rule
}

// match is the one pattern operator rules support: exact or "*".
func match(pat, s string) bool { return pat == "*" || pat == s }

// Acquired returns the labels a chain gains by invoking channel/op: the
// sorted, deduplicated union over all matching taint rules. Nil when no
// rule matches — the common case allocates nothing.
func (rs *RuleSet) Acquired(channel, op string) []string {
	var out []string
	for i := range rs.Taints {
		t := &rs.Taints[i]
		if match(t.Channel, channel) && match(t.Op, op) {
			out = append(out, t.Labels...)
		}
	}
	if len(out) == 0 {
		return nil
	}
	sort.Strings(out)
	return dedupSorted(out)
}

// Match returns the first verdict rule matching the request, or nil (the
// default-allow case).
func (rs *RuleSet) Match(req core.PolicyRequest) *Rule {
	for i := range rs.Rules {
		r := &rs.Rules[i]
		if !match(r.Channel, req.Channel) || !match(r.Op, req.Op) {
			continue
		}
		if !taintedBy(req.Taint, r.When) {
			continue
		}
		return r
	}
	return nil
}

// taintedBy reports whether every label in when is present in taint.
func taintedBy(taint, when []string) bool {
	for _, l := range when {
		if !core.HasTaint(taint, l) {
			return false
		}
	}
	return true
}

// Normalize sorts and deduplicates every label list in place. Decode
// normalizes automatically; hand-built sets should call it before use so
// Encode emits canonical form.
func (rs *RuleSet) Normalize() {
	for i := range rs.Taints {
		sort.Strings(rs.Taints[i].Labels)
		rs.Taints[i].Labels = dedupSorted(rs.Taints[i].Labels)
	}
	for i := range rs.Rules {
		sort.Strings(rs.Rules[i].When)
		rs.Rules[i].When = dedupSorted(rs.Rules[i].When)
	}
}

// Validate checks structural bounds: token charsets and lengths, label
// counts, rule count, effect validity, and rule-name uniqueness.
func (rs *RuleSet) Validate() error {
	if n := len(rs.Taints) + len(rs.Rules); n > MaxRules {
		return fmt.Errorf("%d directives exceed %d: %w", n, MaxRules, ErrRule)
	}
	for i := range rs.Taints {
		t := &rs.Taints[i]
		if err := checkPattern(t.Channel); err != nil {
			return fmt.Errorf("taint %d channel: %w", i, err)
		}
		if err := checkPattern(t.Op); err != nil {
			return fmt.Errorf("taint %d op: %w", i, err)
		}
		if err := checkLabels(t.Labels); err != nil {
			return fmt.Errorf("taint %d: %w", i, err)
		}
		if len(t.Labels) == 0 {
			return fmt.Errorf("taint %d confers no labels: %w", i, ErrRule)
		}
	}
	seen := make(map[string]bool, len(rs.Rules))
	for i := range rs.Rules {
		r := &rs.Rules[i]
		if r.Effect > Approve {
			return fmt.Errorf("rule %d: %v: %w", i, r.Effect, ErrRule)
		}
		if err := checkLabel(r.Name); err != nil {
			return fmt.Errorf("rule %d name: %w", i, err)
		}
		if seen[r.Name] {
			return fmt.Errorf("rule %d: duplicate name %q: %w", i, r.Name, ErrRule)
		}
		seen[r.Name] = true
		if err := checkPattern(r.Channel); err != nil {
			return fmt.Errorf("rule %q channel: %w", r.Name, err)
		}
		if err := checkPattern(r.Op); err != nil {
			return fmt.Errorf("rule %q op: %w", r.Name, err)
		}
		if err := checkLabels(r.When); err != nil {
			return fmt.Errorf("rule %q: %w", r.Name, err)
		}
	}
	return nil
}

// checkLabel enforces the label/name charset: lowercase alphanumerics,
// '-' and '_', nonempty, bounded length.
func checkLabel(s string) error {
	if s == "" || len(s) > MaxTokenLen {
		return fmt.Errorf("label %q: bad length: %w", s, ErrRule)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' || c == '_' {
			continue
		}
		return fmt.Errorf("label %q: bad byte %q: %w", s, c, ErrRule)
	}
	return nil
}

// checkPattern enforces the channel/op charset: "*" alone, or printable
// names (alphanumerics of either case plus '@', '.', '-', '_'), so the
// core pseudo-channels "@deliver" and "@asset" and typical op names fit.
func checkPattern(s string) error {
	if s == "*" {
		return nil
	}
	if s == "" || len(s) > MaxTokenLen {
		return fmt.Errorf("pattern %q: bad length: %w", s, ErrRule)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '@' || c == '.' || c == '-' || c == '_' {
			continue
		}
		return fmt.Errorf("pattern %q: bad byte %q: %w", s, c, ErrRule)
	}
	return nil
}

func checkLabels(labels []string) error {
	if len(labels) > MaxLabels {
		return fmt.Errorf("%d labels exceed %d: %w", len(labels), MaxLabels, ErrRule)
	}
	for _, l := range labels {
		if err := checkLabel(l); err != nil {
			return err
		}
	}
	return nil
}

// dedupSorted removes adjacent duplicates from a sorted slice, in place.
func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
