package policy

import (
	"errors"
	"fmt"
	"strings"
)

// Text codec for rule sets. One directive per line:
//
//	taint <channel> <op> <label>[,<label>...]
//	allow|deny|approve <name> <channel> <op> [when <label>[,<label>...]]
//
// '#' starts a comment (whole line or trailing); blank lines are ignored.
// Channel and op are exact names or "*". Decode is strict about structure
// (unknown directives, missing fields, bad charsets, exceeded bounds all
// fail with ErrSyntax or ErrRule) but lenient about whitespace and label
// order; it normalizes as it parses. Encode emits the canonical form —
// single spaces, sorted deduplicated labels, no comments — so the codec
// has the same oracle as the journal's binary codec: any accepted input,
// once encoded, decodes and re-encodes byte-identically (FuzzPolicyDecode
// pins this).

// ErrSyntax is returned for malformed policy text.
var ErrSyntax = errors.New("policy: syntax error")

// Decode parses policy text into a validated, normalized rule set.
// Directive order is preserved: verdict matching is first-match-wins.
func Decode(data []byte) (*RuleSet, error) {
	rs := &RuleSet{}
	for ln, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := decodeDirective(rs, fields); err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
	}
	rs.Normalize()
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	return rs, nil
}

func decodeDirective(rs *RuleSet, fields []string) error {
	switch fields[0] {
	case "taint":
		if len(fields) != 4 {
			return fmt.Errorf("taint wants <channel> <op> <labels>, got %d fields: %w", len(fields)-1, ErrSyntax)
		}
		labels, err := splitLabels(fields[3])
		if err != nil {
			return err
		}
		rs.Taints = append(rs.Taints, TaintRule{Channel: fields[1], Op: fields[2], Labels: labels})
		return nil
	case "allow", "deny", "approve":
		effect := map[string]Effect{"allow": Allow, "deny": Deny, "approve": Approve}[fields[0]]
		r := Rule{Effect: effect}
		switch len(fields) {
		case 4:
		case 6:
			if fields[4] != "when" {
				return fmt.Errorf("%s: expected 'when', got %q: %w", fields[0], fields[4], ErrSyntax)
			}
			when, err := splitLabels(fields[5])
			if err != nil {
				return err
			}
			r.When = when
		default:
			return fmt.Errorf("%s wants <name> <channel> <op> [when <labels>], got %d fields: %w",
				fields[0], len(fields)-1, ErrSyntax)
		}
		r.Name, r.Channel, r.Op = fields[1], fields[2], fields[3]
		rs.Rules = append(rs.Rules, r)
		return nil
	}
	return fmt.Errorf("unknown directive %q: %w", fields[0], ErrSyntax)
}

// splitLabels parses a comma-separated label list. Empty elements are a
// syntax error; charset and bounds are checked by Validate after parse.
func splitLabels(s string) ([]string, error) {
	parts := strings.Split(s, ",")
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("empty label in %q: %w", s, ErrSyntax)
		}
	}
	return parts, nil
}

// Encode renders the canonical text form of a rule set. The set must be
// normalized (Decode output always is; hand-built sets call Normalize).
func Encode(rs *RuleSet) []byte {
	var b strings.Builder
	for i := range rs.Taints {
		t := &rs.Taints[i]
		fmt.Fprintf(&b, "taint %s %s %s\n", t.Channel, t.Op, strings.Join(t.Labels, ","))
	}
	for i := range rs.Rules {
		r := &rs.Rules[i]
		fmt.Fprintf(&b, "%s %s %s %s", r.Effect, r.Name, r.Channel, r.Op)
		if len(r.When) > 0 {
			fmt.Fprintf(&b, " when %s", strings.Join(r.When, ","))
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// Reencode is the fuzz oracle: it decodes text and returns its canonical
// encoding, so accepted-input stability is a one-liner for callers.
func Reencode(data []byte) ([]byte, error) {
	rs, err := Decode(data)
	if err != nil {
		return nil, err
	}
	return Encode(rs), nil
}
