package policy

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"lateral/internal/core"
	"lateral/internal/journal"
	"lateral/internal/telemetry"
)

// The shipped collectors satisfy the structural interfaces.
var (
	_ Monitor  = (*telemetry.Metrics)(nil)
	_ Recorder = (*journal.Journal)(nil)
)

const exampleText = `# mosaic rule: ids taint the chain, tainted chains may not egress
taint to-store ids meter-identities
taint @asset ids meter-identities
deny no-exfil to-net * when meter-identities
approve ops-export to-export * when meter-identities
allow rest * *
`

func mustDecode(t *testing.T, text string) *RuleSet {
	t.Helper()
	rs, err := Decode([]byte(text))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return rs
}

func TestDecodeEncodeCanonical(t *testing.T) {
	rs := mustDecode(t, exampleText)
	if len(rs.Taints) != 2 || len(rs.Rules) != 3 {
		t.Fatalf("got %d taints, %d rules", len(rs.Taints), len(rs.Rules))
	}
	canon := Encode(rs)
	again, err := Reencode(canon)
	if err != nil {
		t.Fatalf("Reencode(canon): %v", err)
	}
	if !bytes.Equal(canon, again) {
		t.Errorf("canonical form unstable:\n%s\nvs\n%s", canon, again)
	}
	// Messy but acceptable input normalizes: label order, whitespace,
	// comments, duplicates.
	messy := "  taint  ch  op   b,a,b   # labels out of order\n\ndeny  r1 ch op when z,a\n"
	rs2 := mustDecode(t, messy)
	want := "taint ch op a,b\ndeny r1 ch op when a,z\n"
	if got := string(Encode(rs2)); got != want {
		t.Errorf("Encode = %q, want %q", got, want)
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name, text string
		wantErr    error
	}{
		{"unknown directive", "grant x y z\n", ErrSyntax},
		{"taint arity", "taint ch op\n", ErrSyntax},
		{"rule arity", "deny r1 ch\n", ErrSyntax},
		{"bad when keyword", "deny r1 ch op unless a\n", ErrSyntax},
		{"empty label", "taint ch op a,,b\n", ErrSyntax},
		{"bad label charset", "taint ch op UPPER\n", ErrRule},
		{"bad channel charset", "taint c!h op a\n", ErrRule},
		{"dup rule name", "deny r1 ch op\nallow r1 ch2 op\n", ErrRule},
		{"taint no labels", "taint ch op ,\n", ErrSyntax},
		{"overlong token", "deny " + strings.Repeat("x", MaxTokenLen+1) + " ch op\n", ErrRule},
	}
	for _, tc := range cases {
		if _, err := Decode([]byte(tc.text)); !errors.Is(err, tc.wantErr) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.wantErr)
		}
	}
}

func TestRuleSetMatching(t *testing.T) {
	rs := mustDecode(t, exampleText)
	if got := rs.Acquired("to-store", "ids"); strings.Join(got, ",") != "meter-identities" {
		t.Errorf("Acquired(to-store, ids) = %v", got)
	}
	if got := rs.Acquired("to-store", "other"); got != nil {
		t.Errorf("Acquired(to-store, other) = %v, want nil", got)
	}
	// Untainted chain falls through deny (when unmet) to the allow.
	r := rs.Match(core.PolicyRequest{Channel: "to-net", Op: "put"})
	if r == nil || r.Name != "rest" {
		t.Fatalf("untainted to-net matched %+v, want rest", r)
	}
	// Tainted chain hits the deny first.
	r = rs.Match(core.PolicyRequest{Channel: "to-net", Op: "put", Taint: []string{"meter-identities"}})
	if r == nil || r.Name != "no-exfil" {
		t.Fatalf("tainted to-net matched %+v, want no-exfil", r)
	}
}

// countingMonitor tallies decisions and grant events.
type countingMonitor struct {
	mu        sync.Mutex
	decisions map[string]int // effect/rule
	grants    map[string]int // event/rule
}

func newCountingMonitor() *countingMonitor {
	return &countingMonitor{decisions: map[string]int{}, grants: map[string]int{}}
}
func (m *countingMonitor) PolicyDecision(engine, effect, rule string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.decisions[effect+"/"+rule]++
}
func (m *countingMonitor) PolicyGrant(engine, rule, event string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.grants[event+"/"+rule]++
}
func (m *countingMonitor) get(kind, key string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if kind == "decision" {
		return m.decisions[key]
	}
	return m.grants[key]
}

// journalSink records journal calls.
type journalSink struct {
	mu     sync.Mutex
	events []string
}

func (j *journalSink) RecordEvent(kind, actor, detail string, trace, span uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, kind+":"+actor)
}
func (j *journalSink) count() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events)
}

func TestEngineEnforces(t *testing.T) {
	mon := newCountingMonitor()
	eng, err := New(Config{Rules: mustDecode(t, exampleText), Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	// Taint acquisition plus default allow for unmatched requests.
	acq, err := eng.CheckInvoke(core.PolicyRequest{Channel: core.PolicyAsset, Op: "ids"})
	if err != nil || strings.Join(acq, ",") != "meter-identities" {
		t.Fatalf("asset check = %v, %v", acq, err)
	}
	// Tainted egress denied with core.ErrPolicy.
	_, err = eng.CheckInvoke(core.PolicyRequest{
		From: "deputy", Channel: "to-net", Op: "put", Taint: []string{"meter-identities"},
	})
	if !errors.Is(err, core.ErrPolicy) {
		t.Fatalf("tainted egress err = %v, want ErrPolicy", err)
	}
	// Untainted egress allowed by the trailing allow rule.
	if _, err = eng.CheckInvoke(core.PolicyRequest{Channel: "to-net", Op: "put"}); err != nil {
		t.Fatalf("untainted egress: %v", err)
	}
	if mon.get("decision", "deny/no-exfil") != 1 || mon.get("decision", "allow/rest") != 2 {
		t.Errorf("decisions = %v", mon.decisions)
	}
}

func TestEngineApprovalTTL(t *testing.T) {
	now := time.Unix(1_900_000_000, 0)
	clock := func() time.Time { return now }
	approvals := 0
	mon := newCountingMonitor()
	rec := &journalSink{}
	eng, err := New(Config{
		Rules: mustDecode(t, exampleText),
		Approver: ApproverFunc(func(rule string, req core.PolicyRequest) bool {
			approvals++
			return true
		}),
		GrantTTL: time.Minute,
		Clock:    clock,
		Monitor:  mon,
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := core.PolicyRequest{
		From: "ops", Channel: "to-export", Op: "dump", Taint: []string{"meter-identities"},
	}
	// First check asks the approver and mints a grant.
	if _, err := eng.CheckInvoke(req); err != nil {
		t.Fatalf("first approval: %v", err)
	}
	if approvals != 1 || rec.count() != 1 {
		t.Fatalf("approvals = %d, journaled = %d", approvals, rec.count())
	}
	// Within the TTL the grant is reused — no new approval.
	now = now.Add(30 * time.Second)
	if _, err := eng.CheckInvoke(req); err != nil {
		t.Fatalf("reuse: %v", err)
	}
	if approvals != 1 {
		t.Fatalf("approver re-asked inside TTL (%d)", approvals)
	}
	// Past the TTL the grant decays; the check re-approves.
	now = now.Add(time.Minute)
	if _, err := eng.CheckInvoke(req); err != nil {
		t.Fatalf("re-approval: %v", err)
	}
	if approvals != 2 || mon.get("grant", "expire/ops-export") != 1 || mon.get("grant", "mint/ops-export") != 2 {
		t.Errorf("approvals = %d, grants = %v", approvals, mon.grants)
	}
	// A different caller needs its own grant.
	other := req
	other.From = "intern"
	if _, err := eng.CheckInvoke(other); err != nil {
		t.Fatal(err)
	}
	if approvals != 3 {
		t.Errorf("grant shared across callers (approvals = %d)", approvals)
	}
}

func TestEngineApprovalFailsClosed(t *testing.T) {
	// No approver: approval-required requests deny.
	eng, err := New(Config{Rules: mustDecode(t, exampleText)})
	if err != nil {
		t.Fatal(err)
	}
	req := core.PolicyRequest{
		From: "ops", Channel: "to-export", Op: "dump", Taint: []string{"meter-identities"},
	}
	if _, err := eng.CheckInvoke(req); !errors.Is(err, core.ErrPolicy) {
		t.Fatalf("nil approver err = %v, want ErrPolicy", err)
	}
	// Approver says no: same.
	eng, err = New(Config{
		Rules:    mustDecode(t, exampleText),
		Approver: ApproverFunc(func(string, core.PolicyRequest) bool { return false }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.CheckInvoke(req); !errors.Is(err, core.ErrPolicy) {
		t.Fatalf("refusing approver err = %v, want ErrPolicy", err)
	}
}

func TestEngineRevokeGrants(t *testing.T) {
	approvals := 0
	eng, err := New(Config{
		Rules: mustDecode(t, exampleText),
		Approver: ApproverFunc(func(string, core.PolicyRequest) bool {
			approvals++
			return true
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	req := core.PolicyRequest{
		From: "ops", Channel: "to-export", Op: "dump", Taint: []string{"meter-identities"},
	}
	for i := 0; i < 3; i++ {
		if _, err := eng.CheckInvoke(req); err != nil {
			t.Fatal(err)
		}
	}
	if approvals != 1 {
		t.Fatalf("approvals before revoke = %d", approvals)
	}
	eng.RevokeGrants()
	if _, err := eng.CheckInvoke(req); err != nil {
		t.Fatal(err)
	}
	if approvals != 2 {
		t.Errorf("revoked grant still honored (approvals = %d)", approvals)
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrRule) {
		t.Errorf("nil rules err = %v", err)
	}
	bad := &RuleSet{Rules: []Rule{{Name: "BAD", Channel: "*", Op: "*"}}}
	if _, err := New(Config{Rules: bad}); !errors.Is(err, ErrRule) {
		t.Errorf("bad rule err = %v", err)
	}
}
