package trustzone

import (
	"bytes"
	"errors"
	"testing"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/hw"
)

func newTZ(t *testing.T, cfg Config) (*Substrate, *cryptoutil.Signer) {
	t.Helper()
	vendor := cryptoutil.NewSigner("soc-vendor")
	if cfg.DeviceSeed == "" {
		cfg.DeviceSeed = "meter-001"
	}
	cfg.Vendor = vendor
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, vendor
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Vendor: cryptoutil.NewSigner("v")}); err == nil {
		t.Error("missing DeviceSeed accepted")
	}
	if _, err := New(Config{DeviceSeed: "d"}); err == nil {
		t.Error("missing Vendor accepted")
	}
}

func TestSingleNormalWorldWithoutHypervisor(t *testing.T) {
	s, _ := newTZ(t, Config{})
	if _, err := s.CreateDomain(core.DomainSpec{Name: "android", Code: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	_, err := s.CreateDomain(core.DomainSpec{Name: "second-os", Code: []byte("b")})
	if !errors.Is(err, core.ErrTooManyTrusted) {
		t.Errorf("second normal-world domain: got %v, want ErrTooManyTrusted", err)
	}
}

func TestHypervisorMultiplexesNormalWorld(t *testing.T) {
	s, _ := newTZ(t, Config{Hypervisor: true})
	a, err := s.CreateDomain(core.DomainSpec{Name: "android-private", Code: []byte("a")})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.CreateDomain(core.DomainSpec{Name: "android-business", Code: []byte("b")})
	if err != nil {
		t.Fatalf("hypervisor config rejected second OS: %v", err)
	}
	// The Simko3 property: the two Androids cannot read each other.
	secret := []byte("PRIVATE-PHONE-DATA")
	if err := a.Write(0, secret); err != nil {
		t.Fatal(err)
	}
	for _, v := range b.CompromiseView() {
		if bytes.Contains(v, secret) {
			t.Error("business VM read private VM memory despite hypervisor")
		}
	}
}

func TestWorldAsymmetry(t *testing.T) {
	s, _ := newTZ(t, Config{})
	normal, err := s.CreateDomain(core.DomainSpec{Name: "android", Code: []byte("a")})
	if err != nil {
		t.Fatal(err)
	}
	secureA, err := s.CreateDomain(core.DomainSpec{Name: "keystore", Code: []byte("k"), Trusted: true})
	if err != nil {
		t.Fatal(err)
	}
	secureB, err := s.CreateDomain(core.DomainSpec{Name: "drm", Code: []byte("d"), Trusted: true})
	if err != nil {
		t.Fatal(err)
	}
	nSecret := []byte("NORMAL-WORLD-DATA")
	sSecretA := []byte("SECURE-KEYSTORE-KEY")
	sSecretB := []byte("SECURE-DRM-LICENSE")
	if err := normal.Write(0, nSecret); err != nil {
		t.Fatal(err)
	}
	if err := secureA.Write(0, sSecretA); err != nil {
		t.Fatal(err)
	}
	if err := secureB.Write(0, sSecretB); err != nil {
		t.Fatal(err)
	}
	// Compromised normal world: sees itself, never secure world.
	var nv []byte
	for _, v := range normal.CompromiseView() {
		nv = append(nv, v...)
	}
	if !bytes.Contains(nv, nSecret) {
		t.Error("normal world cannot read itself")
	}
	if bytes.Contains(nv, sSecretA) || bytes.Contains(nv, sSecretB) {
		t.Error("normal world read secure world memory")
	}
	// Compromised secure component: itself + all of normal world, but not
	// its secure sibling (secondary isolation).
	var sv []byte
	for _, v := range secureA.CompromiseView() {
		sv = append(sv, v...)
	}
	if !bytes.Contains(sv, sSecretA) || !bytes.Contains(sv, nSecret) {
		t.Error("secure world compromise view missing own or normal memory")
	}
	if bytes.Contains(sv, sSecretB) {
		t.Error("secure component read sibling despite secondary isolation")
	}
}

func TestFusedKeyPrivilegeGate(t *testing.T) {
	s, _ := newTZ(t, Config{})
	if _, err := s.DeviceKey(hw.PrivUser); !errors.Is(err, hw.ErrFuseDenied) {
		t.Errorf("user read of fuse: got %v", err)
	}
	if _, err := s.DeviceKey(hw.PrivKernel); !errors.Is(err, hw.ErrFuseDenied) {
		t.Errorf("kernel (normal world) read of fuse: got %v", err)
	}
	k, err := s.DeviceKey(hw.PrivSecureWorld)
	if err != nil || len(k) == 0 {
		t.Errorf("secure world read of fuse: %v", err)
	}
}

func TestBusTapReadsBothWorldsWithoutScratchpadCrypto(t *testing.T) {
	m := hw.NewMachine(hw.MachineConfig{})
	tap := &recordTap{}
	m.Mem.AttachTap(tap)
	s, _ := newTZ(t, Config{Machine: m})
	sec, err := s.CreateDomain(core.DomainSpec{Name: "keystore", Code: []byte("k"), Trusted: true})
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("TZ-PLAINTEXT-IN-DRAM")
	if err := sec.Write(0, secret); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(tap.seen, secret) {
		t.Error("paper: TrustZone does not encrypt DRAM; tap must see plaintext")
	}
	if s.Properties().PhysicalMemoryProtection {
		t.Error("plain TrustZone must not claim physical memory protection")
	}
}

func TestScratchpadCryptoHidesSecureWorldFromTap(t *testing.T) {
	m := hw.NewMachine(hw.MachineConfig{})
	tap := &recordTap{}
	m.Mem.AttachTap(tap)
	s, _ := newTZ(t, Config{Machine: m, ScratchpadCrypto: true})
	sec, err := s.CreateDomain(core.DomainSpec{Name: "keystore", Code: []byte("k"), Trusted: true})
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("SOFTWARE-MEE-PROTECTED")
	if err := sec.Write(0, secret); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(tap.seen, secret) {
		t.Error("scratchpad crypto leaked plaintext to the bus")
	}
	got, err := sec.Read(0, len(secret))
	if err != nil || !bytes.Equal(got, secret) {
		t.Errorf("CPU-side read = %q, %v", got, err)
	}
	if !s.Properties().PhysicalMemoryProtection {
		t.Error("scratchpad-crypto TrustZone should claim physical memory protection")
	}
	// Normal world stays plaintext even with scratchpad crypto.
	norm, err := s.CreateDomain(core.DomainSpec{Name: "android", Code: []byte("a")})
	if err != nil {
		t.Fatal(err)
	}
	plain := []byte("NORMAL-STILL-PLAIN")
	if err := norm.Write(0, plain); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(tap.seen, plain) {
		t.Error("normal world should remain unencrypted")
	}
}

type recordTap struct{ seen []byte }

func (r *recordTap) OnRead(_ hw.PhysAddr, data []byte) []byte {
	r.seen = append(r.seen, data...)
	return nil
}
func (r *recordTap) OnWrite(_ hw.PhysAddr, data []byte) []byte {
	r.seen = append(r.seen, data...)
	return nil
}

func TestAnchorQuoteOnlySecureWorld(t *testing.T) {
	s, vendor := newTZ(t, Config{})
	sec, _ := s.CreateDomain(core.DomainSpec{Name: "attest", Code: []byte("attest-v1"), Trusted: true})
	norm, _ := s.CreateDomain(core.DomainSpec{Name: "android", Code: []byte("a")})
	anchor := s.Anchor()
	nonce := []byte("n")
	q, err := anchor.Quote(sec, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyQuote(q, nonce, vendor.Public(), sec.Measurement()); err != nil {
		t.Errorf("valid quote rejected: %v", err)
	}
	if _, err := anchor.Quote(norm, nonce); !errors.Is(err, core.ErrRefused) {
		t.Errorf("normal-world quote: got %v", err)
	}
	// A software emulation (no fused key) cannot produce a valid quote.
	fake := cryptoutil.NewSigner("emulator")
	forged := core.SignQuote("tz-rom", sec.Measurement(), nonce, fake, core.IssueVendorCert(fake, fake.Public()))
	if err := core.VerifyQuote(forged, nonce, vendor.Public(), sec.Measurement()); !errors.Is(err, core.ErrQuote) {
		t.Error("emulated quote accepted")
	}
}

func TestAnchorSealUnseal(t *testing.T) {
	s, _ := newTZ(t, Config{})
	secA, _ := s.CreateDomain(core.DomainSpec{Name: "a", Code: []byte("good"), Trusted: true})
	secB, _ := s.CreateDomain(core.DomainSpec{Name: "b", Code: []byte("evil"), Trusted: true})
	norm, _ := s.CreateDomain(core.DomainSpec{Name: "android", Code: []byte("l")})
	anchor := s.Anchor()
	blob, err := anchor.Seal(secA, []byte("meter-key"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := anchor.Unseal(secA, blob)
	if err != nil || string(got) != "meter-key" {
		t.Fatalf("unseal = %q, %v", got, err)
	}
	if _, err := anchor.Unseal(secB, blob); err == nil {
		t.Error("different measurement unsealed the blob")
	}
	if _, err := anchor.Seal(norm, []byte("x")); !errors.Is(err, core.ErrRefused) {
		t.Errorf("seal for normal world: got %v", err)
	}
	if _, err := anchor.Unseal(norm, blob); !errors.Is(err, core.ErrRefused) {
		t.Errorf("unseal for normal world: got %v", err)
	}
	// Two seals of the same plaintext must differ (fresh nonces).
	blob2, err := anchor.Seal(secA, []byte("meter-key"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(blob, blob2) {
		t.Error("seal is deterministic across calls: nonce reuse")
	}
}

func TestSecureRegionExhaustion(t *testing.T) {
	s, _ := newTZ(t, Config{SecurePages: 2})
	if _, err := s.CreateDomain(core.DomainSpec{Name: "a", Trusted: true, MemPages: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateDomain(core.DomainSpec{Name: "b", Trusted: true, MemPages: 1}); !errors.Is(err, core.ErrTooManyTrusted) {
		t.Errorf("exhausted secure region: got %v", err)
	}
}

func TestDomainLifecycleAndBounds(t *testing.T) {
	s, _ := newTZ(t, Config{})
	d, err := s.CreateDomain(core.DomainSpec{Name: "x", Trusted: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Write(4094, []byte("abcd")); err == nil {
		t.Error("out-of-range write succeeded")
	}
	if _, err := d.Read(0, 5000); err == nil {
		t.Error("out-of-range read succeeded")
	}
	if err := d.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(0, []byte("x")); err == nil {
		t.Error("write after destroy succeeded")
	}
	if d.CompromiseView() != nil {
		t.Error("destroyed domain has compromise view")
	}
	if _, err := s.CreateDomain(core.DomainSpec{Name: "x", Trusted: true}); err != nil {
		t.Errorf("recreate after destroy: %v", err)
	}
}

func TestHostsCoreSystem(t *testing.T) {
	s, _ := newTZ(t, Config{})
	sys := core.NewSystem(s)
	if err := sys.Launch(&stub{}, true, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	ctx, err := sys.CtxOf("stub")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Quote([]byte("n")); err != nil {
		t.Errorf("component-level quote failed: %v", err)
	}
}

type stub struct{}

func (*stub) CompName() string     { return "stub" }
func (*stub) CompVersion() string  { return "1" }
func (*stub) Init(*core.Ctx) error { return nil }
func (*stub) Handle(core.Envelope) (core.Message, error) {
	return core.Message{}, nil
}
