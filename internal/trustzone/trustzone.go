// Package trustzone simulates the ARM TrustZone isolation substrate
// (§II-B): a secure world that "completely controls the software running in
// the normal world", invoked through secure monitor calls, with access to
// hardware keys fused into the chip.
//
// Structural facts the simulation preserves:
//
//   - "TrustZone itself offers only a single secure world. Multiple trusted
//     components may share the secure world, but then they rely on
//     secondary isolation by the secure world operating system."
//   - "The normal world can host exactly one legacy codebase, because
//     TrustZone itself does not support multiplexing. However, TrustZone
//     can be combined with virtualization techniques to host multiple
//     normal world operating systems" (Config.Hypervisor).
//   - The worlds are asymmetric: a fully compromised secure world can read
//     all of the normal world, never the reverse.
//   - DRAM is NOT encrypted: a physical bus tap reads both worlds, unless
//     Config.ScratchpadCrypto enables the paper's §II-D software variant
//     ("a software implementation of such memory encryption is conceivable
//     using on-chip scratchpad memory"), which keeps secure-world working
//     keys in SRAM and spills only ciphertext to DRAM.
package trustzone

import (
	"fmt"
	"sync"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/hw"
)

// FuseKeyName is the fuse holding the per-device secret only the secure
// world can read (the smart meter's "per-device AES key ... fused into the
// chip by the manufacturer").
const FuseKeyName = "tz-device-key"

// Config tunes the substrate.
type Config struct {
	// Machine is the hardware; defaults to a fresh 4 MiB machine.
	Machine *hw.Machine

	// DeviceSeed keys the fused per-device secret; required.
	DeviceSeed string

	// Vendor certifies the device identity (the SoC manufacturer).
	Vendor *cryptoutil.Signer

	// Hypervisor, when true, adds a normal-world hypervisor so several
	// legacy operating systems can coexist (the Simko3 "Merkel-Phone"
	// configuration). Without it, only one untrusted domain is allowed.
	Hypervisor bool

	// ScratchpadCrypto enables software memory encryption for secure-world
	// domains: contents in DRAM are ciphertext keyed from SRAM-resident
	// keys, so a bus tap learns nothing.
	ScratchpadCrypto bool

	// SecurePages is the size of the secure world region (default 64).
	SecurePages int
}

// Substrate is one TrustZone-enabled SoC.
type Substrate struct {
	cfg     Config
	machine *hw.Machine
	device  *cryptoutil.Signer
	cert    []byte

	mu         sync.Mutex
	secureBase hw.PhysAddr
	secureOff  int // bump allocator inside the secure region
	secureEnd  int
	normal     []*world
	secure     []*world
	domains    map[string]*world
	memKey     []byte // scratchpad-held key when ScratchpadCrypto
	sealCtr    uint64
}

var _ core.Substrate = (*Substrate)(nil)

// New powers on a TrustZone SoC: it fuses the device key (readable only at
// secure-world privilege) and reserves the secure memory region.
func New(cfg Config) (*Substrate, error) {
	if cfg.Machine == nil {
		cfg.Machine = hw.NewMachine(hw.MachineConfig{Name: "tz-soc"})
	}
	if cfg.DeviceSeed == "" {
		return nil, fmt.Errorf("trustzone: DeviceSeed required")
	}
	if cfg.Vendor == nil {
		return nil, fmt.Errorf("trustzone: Vendor required")
	}
	if cfg.SecurePages <= 0 {
		cfg.SecurePages = 64
	}
	device := cryptoutil.NewSigner("tz-device:" + cfg.DeviceSeed)
	s := &Substrate{
		cfg:     cfg,
		machine: cfg.Machine,
		device:  device,
		cert:    core.IssueVendorCert(cfg.Vendor, device.Public()),
		domains: make(map[string]*world),
	}
	base, err := cfg.Machine.AllocRegion(cfg.SecurePages)
	if err != nil {
		return nil, fmt.Errorf("trustzone: secure region: %w", err)
	}
	s.secureBase = base
	s.secureEnd = cfg.SecurePages * hw.PageSize
	// Fuse the device key; only secure-world privilege may read it.
	raw := cryptoutil.KeyFromSeed("tz-fuse:" + cfg.DeviceSeed)
	if err := cfg.Machine.Fuses.Program(FuseKeyName, raw, hw.PrivSecureWorld); err != nil {
		return nil, fmt.Errorf("trustzone: fuse: %w", err)
	}
	if cfg.ScratchpadCrypto {
		// The memory-encryption key lives in on-chip SRAM, derived from
		// the fused secret — never in DRAM.
		s.memKey = cryptoutil.HKDF(raw, nil, []byte("tz-scratchpad-mee"), cryptoutil.KeySize)
		if err := cfg.Machine.SRAM.Write(0, s.memKey); err != nil {
			return nil, fmt.Errorf("trustzone: sram: %w", err)
		}
	}
	return s, nil
}

// Name returns "trustzone".
func (s *Substrate) Name() string { return "trustzone" }

// Machine exposes the hardware for experiments (bus taps).
func (s *Substrate) Machine() *hw.Machine { return s.machine }

// Properties per the paper's analysis of TrustZone.
func (s *Substrate) Properties() core.Properties {
	return core.Properties{
		Substrate:                "trustzone",
		SpatialIsolation:         true,
		PhysicalMemoryProtection: s.cfg.ScratchpadCrypto,
		SecureLaunch:             true, // boot ROM + secure-world boot chain
		Attestation:              true, // software attestation with fused key
		MaxTrustedDomains:        0,    // secure-world OS multiplexes
		ConcurrentTrusted:        true,
		SecondaryIsolation:       true, // trusted components share the secure world
		InvokeCostNs:             4000, // SMC world switch round trip
		TCBUnits:                 25,   // monitor + secure world OS (+ hypervisor)
	}
}

// Anchor returns the ROM-rooted software attestation anchor.
func (s *Substrate) Anchor() core.TrustAnchor { return &anchor{sub: s} }

// DeviceKey returns the fused per-device secret, enforcing the privilege
// gate: only secure-world callers succeed.
func (s *Substrate) DeviceKey(priv hw.PrivLevel) ([]byte, error) {
	return s.machine.Fuses.Read(FuseKeyName, priv)
}

// CreateDomain places trusted domains in the secure region (sub-isolated
// by the secure-world OS) and untrusted domains in normal-world memory.
func (s *Substrate) CreateDomain(spec core.DomainSpec) (core.DomainHandle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.domains[spec.Name]; ok {
		return nil, fmt.Errorf("trustzone: %s: %w", spec.Name, core.ErrDomainExists)
	}
	pages := spec.MemPages
	if pages <= 0 {
		pages = 1
	}
	size := pages * hw.PageSize
	w := &world{
		sub:     s,
		name:    spec.Name,
		trusted: spec.Trusted,
		meas:    cryptoutil.Hash(spec.Code),
		size:    size,
	}
	if spec.Trusted {
		if s.secureOff+size > s.secureEnd {
			return nil, fmt.Errorf("trustzone: secure region exhausted for %s: %w",
				spec.Name, core.ErrTooManyTrusted)
		}
		w.base = s.secureBase + hw.PhysAddr(s.secureOff)
		s.secureOff += size
		s.secure = append(s.secure, w)
	} else {
		if len(s.normal) >= 1 && !s.cfg.Hypervisor {
			return nil, fmt.Errorf("trustzone: normal world hosts exactly one legacy codebase (enable Hypervisor to multiplex): %w",
				core.ErrTooManyTrusted)
		}
		base, err := s.machine.AllocRegion(pages)
		if err != nil {
			return nil, fmt.Errorf("trustzone: %s: %w", spec.Name, err)
		}
		w.base = base
		s.normal = append(s.normal, w)
	}
	s.domains[spec.Name] = w
	return w, nil
}

// world is one domain in either world.
type world struct {
	sub     *Substrate
	name    string
	trusted bool
	meas    [32]byte
	base    hw.PhysAddr
	size    int

	mu    sync.Mutex
	freed bool
}

var _ core.DomainHandle = (*world)(nil)

func (w *world) DomainName() string    { return w.name }
func (w *world) Measurement() [32]byte { return w.meas }
func (w *world) Trusted() bool         { return w.trusted }
func (w *world) MemSize() int          { return w.size }

// encrypted reports whether this domain's DRAM contents are ciphertext
// under the scratchpad MEE.
func (w *world) encrypted() bool {
	return w.trusted && w.sub.cfg.ScratchpadCrypto
}

func (w *world) Write(off int, p []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.freed || off < 0 || off+len(p) > w.size {
		return fmt.Errorf("trustzone %s: write %d@%d out of range", w.name, len(p), off)
	}
	data := p
	if w.encrypted() {
		ct, err := cryptoutil.CTRKeystream(w.sub.memKey, uint64(w.base)+uint64(off), p)
		if err != nil {
			return err
		}
		data = ct
	}
	return w.sub.machine.Mem.WritePhys(w.base+hw.PhysAddr(off), data)
}

func (w *world) Read(off, n int) ([]byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.freed || off < 0 || off+n > w.size {
		return nil, fmt.Errorf("trustzone %s: read %d@%d out of range", w.name, n, off)
	}
	data, err := w.sub.machine.Mem.ReadPhys(w.base+hw.PhysAddr(off), n)
	if err != nil {
		return nil, err
	}
	if w.encrypted() {
		return cryptoutil.CTRKeystream(w.sub.memKey, uint64(w.base)+uint64(off), data)
	}
	return data, nil
}

// CompromiseView implements the worlds' asymmetry:
//
//   - A compromised NORMAL-world domain reads all normal-world memory (one
//     legacy codebase; under a hypervisor each VM reads only itself) but
//     never secure memory — the NS bit blocks it.
//   - A compromised SECURE-world domain reads its own slice (secondary
//     isolation shields siblings) plus the ENTIRE normal world, because
//     "the secure world exercises control over the normal world".
func (w *world) CompromiseView() [][]byte {
	w.mu.Lock()
	if w.freed {
		w.mu.Unlock()
		return nil
	}
	w.mu.Unlock()

	var views [][]byte
	readPlain := func(d *world) {
		if b, err := d.Read(0, d.size); err == nil {
			views = append(views, b)
		}
	}
	readPlain(w)
	w.sub.mu.Lock()
	normals := append([]*world(nil), w.sub.normal...)
	hyp := w.sub.cfg.Hypervisor
	w.sub.mu.Unlock()
	if w.trusted {
		for _, n := range normals {
			if n != w {
				readPlain(n)
			}
		}
		return views
	}
	if !hyp {
		for _, n := range normals {
			if n != w {
				readPlain(n)
			}
		}
	}
	return views
}

func (w *world) Destroy() error {
	w.mu.Lock()
	w.freed = true
	w.mu.Unlock()
	w.sub.mu.Lock()
	delete(w.sub.domains, w.name)
	w.sub.mu.Unlock()
	return nil
}

// anchor implements software attestation run inside the secure world,
// booted from ROM, signing with the fused device identity — the smart
// meter design of §III-C: "The attestation component is booted from
// read-only memory within the smart meter system-on-chip."
type anchor struct {
	sub *Substrate
}

var _ core.TrustAnchor = (*anchor)(nil)

func (a *anchor) AnchorKind() string { return "tz-rom" }

// Quote attests a SECURE-world domain. Normal-world code cannot be quoted:
// the anchor has no visibility into what the legacy OS mutated at runtime.
func (a *anchor) Quote(d core.DomainHandle, nonce []byte) (core.Quote, error) {
	if !d.Trusted() {
		return core.Quote{}, fmt.Errorf("tz anchor: %s is normal-world: %w", d.DomainName(), core.ErrRefused)
	}
	return core.SignQuote("tz-rom", d.Measurement(), nonce, a.sub.device, a.sub.cert), nil
}

// Seal binds data to a secure-world domain's measurement under a key
// derived from the fused secret.
func (a *anchor) Seal(d core.DomainHandle, plaintext []byte) ([]byte, error) {
	if !d.Trusted() {
		return nil, fmt.Errorf("tz anchor: seal for normal world: %w", core.ErrRefused)
	}
	key, err := a.sealKey(d)
	if err != nil {
		return nil, err
	}
	meas := d.Measurement()
	a.sub.mu.Lock()
	a.sub.sealCtr++
	ctr := a.sub.sealCtr
	a.sub.mu.Unlock()
	return cryptoutil.Seal(key, cryptoutil.DeriveNonce("tz-seal", ctr), plaintext, meas[:])
}

// Unseal recovers data sealed to the same measurement.
func (a *anchor) Unseal(d core.DomainHandle, sealed []byte) ([]byte, error) {
	if !d.Trusted() {
		return nil, fmt.Errorf("tz anchor: unseal for normal world: %w", core.ErrRefused)
	}
	key, err := a.sealKey(d)
	if err != nil {
		return nil, err
	}
	meas := d.Measurement()
	pt, err := cryptoutil.Open(key, sealed, meas[:])
	if err != nil {
		return nil, fmt.Errorf("tz anchor unseal %s: %w", d.DomainName(), err)
	}
	return pt, nil
}

func (a *anchor) sealKey(d core.DomainHandle) ([]byte, error) {
	fuse, err := a.sub.DeviceKey(hw.PrivSecureWorld)
	if err != nil {
		return nil, err
	}
	meas := d.Measurement()
	return cryptoutil.HKDF(fuse, meas[:], []byte("tz-seal"), cryptoutil.KeySize), nil
}
