package hw

import (
	"fmt"
	"sort"
	"sync"
)

// VirtAddr is an address in a virtual address space.
type VirtAddr uint32

// Mapping is one virtual-to-physical page mapping.
type Mapping struct {
	VPage VirtAddr // page-aligned virtual address
	Frame PhysAddr // page-aligned physical address
	Perm  Perm
}

// PageTable is the software-visible structure the MMU walks. In the paper's
// terms, whoever can write a page table is part of the isolation substrate;
// the kernel package is the only writer in this repository.
type PageTable struct {
	mu    sync.RWMutex
	pages map[VirtAddr]Mapping
}

// NewPageTable creates an empty page table.
func NewPageTable() *PageTable {
	return &PageTable{pages: make(map[VirtAddr]Mapping)}
}

// Map installs a mapping for the page containing va.
func (pt *PageTable) Map(va VirtAddr, frame PhysAddr, perm Perm) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	vp := va &^ (PageSize - 1)
	pt.pages[vp] = Mapping{VPage: vp, Frame: frame &^ (PageSize - 1), Perm: perm}
}

// Unmap removes the mapping for the page containing va.
func (pt *PageTable) Unmap(va VirtAddr) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	delete(pt.pages, va&^(PageSize-1))
}

// Lookup returns the mapping for the page containing va.
func (pt *PageTable) Lookup(va VirtAddr) (Mapping, bool) {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	m, ok := pt.pages[va&^(PageSize-1)]
	return m, ok
}

// Mappings returns all mappings sorted by virtual page. The returned slice
// is a copy; mutating it does not affect the table.
func (pt *PageTable) Mappings() []Mapping {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	out := make([]Mapping, 0, len(pt.pages))
	for _, m := range pt.pages {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VPage < out[j].VPage })
	return out
}

// FaultError carries the details of a translation or protection fault.
type FaultError struct {
	VA     VirtAddr
	Access Access
	Reason string
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("hw: %s fault at %#x: %s", e.Access, e.VA, e.Reason)
}

// Unwrap lets errors.Is(err, ErrFault) match FaultError values.
func (e *FaultError) Unwrap() error { return ErrFault }

// MMU translates virtual accesses issued under a page table into physical
// accesses. It is stateless; the page table is the per-address-space state.
type MMU struct {
	mem *Memory
}

// NewMMU creates an MMU in front of the given memory.
func NewMMU(mem *Memory) *MMU {
	return &MMU{mem: mem}
}

// Translate converts va into a physical address for the given access kind,
// faulting on missing mappings and permission violations.
func (u *MMU) Translate(pt *PageTable, va VirtAddr, a Access) (PhysAddr, error) {
	m, ok := pt.Lookup(va)
	if !ok {
		return 0, &FaultError{VA: va, Access: a, Reason: "no mapping"}
	}
	if !m.Perm.Allows(a) {
		return 0, &FaultError{VA: va, Access: a, Reason: "permission denied"}
	}
	return m.Frame + PhysAddr(va-m.VPage), nil
}

// Read performs a virtual read of n bytes at va, honoring page boundaries.
func (u *MMU) Read(pt *PageTable, va VirtAddr, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for n > 0 {
		pa, err := u.Translate(pt, va, Read)
		if err != nil {
			return nil, err
		}
		chunk := PageSize - int(va)%PageSize
		if chunk > n {
			chunk = n
		}
		b, err := u.mem.ReadPhys(pa, chunk)
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
		va += VirtAddr(chunk)
		n -= chunk
	}
	return out, nil
}

// Write performs a virtual write of p at va, honoring page boundaries.
func (u *MMU) Write(pt *PageTable, va VirtAddr, p []byte) error {
	for len(p) > 0 {
		pa, err := u.Translate(pt, va, Write)
		if err != nil {
			return err
		}
		chunk := PageSize - int(va)%PageSize
		if chunk > len(p) {
			chunk = len(p)
		}
		if err := u.mem.WritePhys(pa, p[:chunk]); err != nil {
			return err
		}
		va += VirtAddr(chunk)
		p = p[chunk:]
	}
	return nil
}

// IOMMU filters DMA issued by devices, mapping device-visible addresses to
// physical frames exactly as the MMU does for the CPU. Without an entry, a
// device access faults — this is the paper's defense against malicious
// devices and drivers.
type IOMMU struct {
	mu     sync.RWMutex
	mem    *Memory
	tables map[string]*PageTable // device name -> table
}

// NewIOMMU creates an IOMMU in front of the given memory.
func NewIOMMU(mem *Memory) *IOMMU {
	return &IOMMU{mem: mem, tables: make(map[string]*PageTable)}
}

// Attach installs (or replaces) the translation table for a device. A nil
// table detaches the device, making all of its DMA fault.
func (io *IOMMU) Attach(device string, pt *PageTable) {
	io.mu.Lock()
	defer io.mu.Unlock()
	if pt == nil {
		delete(io.tables, device)
		return
	}
	io.tables[device] = pt
}

// DMARead performs a device-initiated read through the IOMMU.
func (io *IOMMU) DMARead(device string, va VirtAddr, n int) ([]byte, error) {
	pt := io.table(device)
	if pt == nil {
		return nil, &FaultError{VA: va, Access: Read, Reason: "device " + device + " not attached to IOMMU"}
	}
	return NewMMU(io.mem).Read(pt, va, n)
}

// DMAWrite performs a device-initiated write through the IOMMU.
func (io *IOMMU) DMAWrite(device string, va VirtAddr, p []byte) error {
	pt := io.table(device)
	if pt == nil {
		return &FaultError{VA: va, Access: Write, Reason: "device " + device + " not attached to IOMMU"}
	}
	return NewMMU(io.mem).Write(pt, va, p)
}

func (io *IOMMU) table(device string) *PageTable {
	io.mu.RLock()
	defer io.mu.RUnlock()
	return io.tables[device]
}
