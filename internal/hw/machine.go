package hw

import (
	"crypto/sha256"
	"fmt"
	"sync"
)

// PrivLevel identifies the hardware privilege of the code issuing an access
// to privileged resources (fuses, SRAM regions, ROM launch). It models the
// paper's observation that "two separate CPU privilege modes are required to
// separate software that can program the MMU from software that cannot",
// extended with the TrustZone secure/normal distinction.
type PrivLevel int

// Privilege levels, strongest first.
const (
	PrivSecureWorld PrivLevel = iota + 1 // TrustZone secure world / SEP firmware
	PrivKernel                           // kernel mode (can program MMU)
	PrivUser                             // user mode
)

func (p PrivLevel) String() string {
	switch p {
	case PrivSecureWorld:
		return "secure-world"
	case PrivKernel:
		return "kernel"
	case PrivUser:
		return "user"
	default:
		return fmt.Sprintf("priv(%d)", int(p))
	}
}

// Fuse is a one-time-programmable hardware secret (e.g. the per-device AES
// key the paper's smart meter manufacturer fuses into the chip). Reading is
// gated by a minimum privilege level fixed at programming time.
type Fuse struct {
	value   []byte
	minPriv PrivLevel
}

// FuseBank is the set of fuses on one chip.
type FuseBank struct {
	mu    sync.RWMutex
	fuses map[string]Fuse
}

// NewFuseBank creates an empty fuse bank.
func NewFuseBank() *FuseBank {
	return &FuseBank{fuses: make(map[string]Fuse)}
}

// Program burns a named fuse. It fails if the fuse is already programmed;
// fuses are write-once by construction.
func (b *FuseBank) Program(name string, value []byte, minPriv PrivLevel) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.fuses[name]; ok {
		return fmt.Errorf("fuse %q: %w", name, ErrFuseBlown)
	}
	v := make([]byte, len(value))
	copy(v, value)
	b.fuses[name] = Fuse{value: v, minPriv: minPriv}
	return nil
}

// Read returns the fuse value if the caller's privilege satisfies the
// fuse's access predicate. Lower PrivLevel values are stronger.
func (b *FuseBank) Read(name string, priv PrivLevel) ([]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	f, ok := b.fuses[name]
	if !ok {
		return nil, fmt.Errorf("fuse %q: not programmed", name)
	}
	if priv > f.minPriv {
		return nil, fmt.Errorf("fuse %q from %s: %w", name, priv, ErrFuseDenied)
	}
	out := make([]byte, len(f.value))
	copy(out, f.value)
	return out, nil
}

// SRAM is on-chip scratchpad memory. It is not reachable from the DRAM bus,
// so bus taps never see its contents — the paper's "on-chip scratchpad
// memory" from which a software SGX could be built.
type SRAM struct {
	mu   sync.Mutex
	data []byte
}

// NewSRAM creates on-chip SRAM of the given size.
func NewSRAM(size int) *SRAM {
	return &SRAM{data: make([]byte, size)}
}

// Size returns the SRAM size in bytes.
func (s *SRAM) Size() int { return len(s.data) }

// Read copies n bytes at off out of the SRAM.
func (s *SRAM) Read(off, n int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off < 0 || off+n > len(s.data) {
		return nil, fmt.Errorf("sram read %d@%d: %w", n, off, ErrFault)
	}
	out := make([]byte, n)
	copy(out, s.data[off:off+n])
	return out, nil
}

// Write copies p into the SRAM at off.
func (s *SRAM) Write(off int, p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off < 0 || off+len(p) > len(s.data) {
		return fmt.Errorf("sram write %d@%d: %w", len(p), off, ErrFault)
	}
	copy(s.data[off:], p)
	return nil
}

// BootROM is the immutable first-stage code of the machine. Its measurement
// is what trust anchors root the launch chain in; it cannot be rewritten
// after manufacture.
type BootROM struct {
	code []byte
	hash [32]byte
}

// NewBootROM manufactures a ROM with the given code image.
func NewBootROM(code []byte) *BootROM {
	c := make([]byte, len(code))
	copy(c, code)
	return &BootROM{code: c, hash: sha256.Sum256(c)}
}

// Code returns a copy of the ROM image.
func (r *BootROM) Code() []byte {
	out := make([]byte, len(r.code))
	copy(out, r.code)
	return out
}

// Measurement returns the SHA-256 of the ROM image.
func (r *BootROM) Measurement() [32]byte { return r.hash }

// Machine bundles one simulated hardware platform: DRAM + controller,
// frame allocator, MMU, IOMMU, on-chip SRAM, fuse bank, and boot ROM.
type Machine struct {
	Name   string
	Mem    *Memory
	Frames *FrameAllocator
	MMU    *MMU
	IOMMU  *IOMMU
	SRAM   *SRAM
	Fuses  *FuseBank
	ROM    *BootROM
}

// MachineConfig sizes a simulated machine.
type MachineConfig struct {
	Name     string
	DRAMSize int    // bytes of DRAM; default 4 MiB
	SRAMSize int    // bytes of on-chip SRAM; default 64 KiB
	ROMCode  []byte // boot ROM image; default a fixed vendor stub
}

// NewMachine assembles a machine from the config, applying defaults for
// zero fields.
func NewMachine(cfg MachineConfig) *Machine {
	if cfg.DRAMSize == 0 {
		cfg.DRAMSize = 4 << 20
	}
	if cfg.SRAMSize == 0 {
		cfg.SRAMSize = 64 << 10
	}
	if cfg.ROMCode == nil {
		cfg.ROMCode = []byte("lateral boot rom v1")
	}
	mem := NewMemory(cfg.DRAMSize)
	return &Machine{
		Name:   cfg.Name,
		Mem:    mem,
		Frames: NewFrameAllocator(0, cfg.DRAMSize),
		MMU:    NewMMU(mem),
		IOMMU:  NewIOMMU(mem),
		SRAM:   NewSRAM(cfg.SRAMSize),
		Fuses:  NewFuseBank(),
		ROM:    NewBootROM(cfg.ROMCode),
	}
}

// AllocRegion allocates a contiguous run of nPages frames and returns the
// base address of the first frame. Contiguity holds because the allocator
// is a bump allocator over fresh frames; callers that free individual
// frames lose the contiguity guarantee for future calls, which is
// acceptable for the fixed-layout substrates built here.
func (m *Machine) AllocRegion(nPages int) (PhysAddr, error) {
	if nPages <= 0 {
		return 0, fmt.Errorf("alloc region: need positive page count, got %d", nPages)
	}
	base, err := m.Frames.Alloc()
	if err != nil {
		return 0, err
	}
	prev := base
	for i := 1; i < nPages; i++ {
		a, err := m.Frames.Alloc()
		if err != nil {
			return 0, err
		}
		if a != prev+PageSize {
			return 0, fmt.Errorf("alloc region: non-contiguous frames (%#x after %#x): %w", a, prev, ErrNoMemory)
		}
		prev = a
	}
	return base, nil
}
