// Package hw simulates the hardware platform underneath every isolation
// substrate in this repository: physical DRAM behind a memory controller,
// on-chip SRAM that never leaves the package, an MMU and IOMMU, one-time
// programmable fuses, an immutable boot ROM, and a pluggable DRAM bus tap
// that models the physical attacker of the paper's Section II-D.
//
// The simulation is deliberately behavioural, not cycle accurate: it
// preserves exactly the properties the paper reasons about — who can read
// or write which bytes, what a probe on the memory bus observes, and which
// keys are reachable from which privilege level.
package hw

import (
	"errors"
	"fmt"
	"sync"
)

// PageSize is the size of a physical frame and of a virtual page.
const PageSize = 4096

// PhysAddr is an address in simulated physical memory.
type PhysAddr uint32

// Access describes the kind of memory access being performed.
type Access int

// Access kinds.
const (
	Read Access = iota + 1
	Write
	Execute
)

func (a Access) String() string {
	switch a {
	case Read:
		return "read"
	case Write:
		return "write"
	case Execute:
		return "execute"
	default:
		return fmt.Sprintf("access(%d)", int(a))
	}
}

// Perm is a permission bit mask for page mappings.
type Perm uint8

// Permission bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExecute
)

// Allows reports whether the permission mask admits the given access.
func (p Perm) Allows(a Access) bool {
	switch a {
	case Read:
		return p&PermRead != 0
	case Write:
		return p&PermWrite != 0
	case Execute:
		return p&PermExecute != 0
	default:
		return false
	}
}

var (
	// ErrFault is returned for accesses that violate translation or
	// protection rules. Substrates convert it into their own fault
	// handling.
	ErrFault = errors.New("hw: memory fault")

	// ErrFuseBlown is returned when writing an already-programmed fuse.
	ErrFuseBlown = errors.New("hw: fuse already programmed")

	// ErrFuseDenied is returned when the caller's privilege does not
	// satisfy the fuse's access predicate.
	ErrFuseDenied = errors.New("hw: fuse access denied")

	// ErrNoMemory is returned when physical frame allocation fails.
	ErrNoMemory = errors.New("hw: out of physical memory")

	// ErrIntegrity is returned when an authenticated protected range
	// detects that DRAM contents were modified behind the controller's
	// back (an active bus attacker or cold-boot write).
	ErrIntegrity = errors.New("hw: memory integrity violation")
)

// BusTap observes (and may modify) traffic on the external DRAM bus. It
// models the paper's physical attacker: "off-chip wires are assumed to be
// accessible to attackers, but on-chip processing and memory such as caches
// can be shielded". A tap sees exactly the bytes that travel on the bus —
// ciphertext if a memory-encryption engine protects the range, plaintext
// otherwise.
type BusTap interface {
	// OnRead is called with the bytes leaving the DRAM on a read. The
	// tap may return a replacement to model active tampering; returning
	// nil leaves the data unchanged.
	OnRead(addr PhysAddr, data []byte) []byte

	// OnWrite is called with the bytes entering the DRAM on a write.
	// The tap may return a replacement; returning nil leaves the data
	// unchanged.
	OnWrite(addr PhysAddr, data []byte) []byte
}

// Cipher transforms data between the on-chip and DRAM representations for
// one protected range. SGX-style memory-encryption engines and SEP-style
// inline DRAM crypto both plug in here.
type Cipher interface {
	// Encrypt converts on-chip plaintext into the bus representation.
	Encrypt(addr PhysAddr, plaintext []byte) []byte
	// Decrypt converts the bus representation back into plaintext.
	Decrypt(addr PhysAddr, ciphertext []byte) []byte
}

// protRange is a range of physical memory covered by an encryption engine.
// Authenticated ranges additionally keep an on-chip shadow of the range's
// expected bus representation — the simulation stand-in for a real MEE's
// integrity tree — so any modification that did not come through the
// controller (active bus tampering, cold-boot writes) is detected on read.
type protRange struct {
	start         PhysAddr
	end           PhysAddr // exclusive
	cipher        Cipher
	authenticated bool
	expected      []byte // on-chip integrity state; taps cannot see or fix it
}

// Memory is the simulated DRAM behind the memory controller. All substrate
// memory ultimately lives here (except on-chip SRAM, see Machine.SRAM).
// Reads and writes pass the bus tap; ranges registered with Protect are
// encrypted before they reach the bus.
type Memory struct {
	mu     sync.Mutex
	dram   []byte
	taps   []BusTap
	ranges []protRange
}

// NewMemory creates DRAM of the given size in bytes (rounded up to a whole
// number of pages).
func NewMemory(size int) *Memory {
	if r := size % PageSize; r != 0 {
		size += PageSize - r
	}
	return &Memory{dram: make([]byte, size)}
}

// Size returns the DRAM size in bytes.
func (m *Memory) Size() int {
	return len(m.dram)
}

// AttachTap registers a bus tap. Multiple taps compose in attach order.
func (m *Memory) AttachTap(t BusTap) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.taps = append(m.taps, t)
}

// Protect registers an encryption engine over [start, start+size). The
// range contents currently in DRAM are re-written through the cipher so
// that the bus representation is consistent from this point on.
func (m *Memory) Protect(start PhysAddr, size int, c Cipher) error {
	return m.protect(start, size, c, false)
}

// ProtectAuthenticated is Protect plus memory integrity: the controller
// keeps on-chip integrity state for the range, and any DRAM modification
// that bypassed it — an active bus attacker, a cold-boot write — makes the
// next CPU-side read fail with ErrIntegrity. This is the full MEE design
// of SGX and the SEP, as opposed to confidentiality-only encryption.
func (m *Memory) ProtectAuthenticated(start PhysAddr, size int, c Cipher) error {
	return m.protect(start, size, c, true)
}

func (m *Memory) protect(start PhysAddr, size int, c Cipher, authenticated bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	end := start + PhysAddr(size)
	if int(end) > len(m.dram) || end < start {
		return fmt.Errorf("protect [%#x,%#x): %w", start, end, ErrFault)
	}
	for _, r := range m.ranges {
		if start < r.end && r.start < end {
			return fmt.Errorf("protect [%#x,%#x): overlaps existing protected range", start, end)
		}
	}
	// Re-encrypt the existing plaintext contents in place.
	plain := make([]byte, size)
	copy(plain, m.dram[start:end])
	enc := c.Encrypt(start, plain)
	copy(m.dram[start:end], enc)
	r := protRange{start: start, end: end, cipher: c, authenticated: authenticated}
	if authenticated {
		r.expected = make([]byte, size)
		copy(r.expected, enc)
	}
	m.ranges = append(m.ranges, r)
	return nil
}

// Unprotect removes the encryption engine covering start, decrypting the
// range contents back to plaintext. Used when enclave memory is reclaimed.
func (m *Memory) Unprotect(start PhysAddr) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, r := range m.ranges {
		if r.start == start {
			ct := make([]byte, r.end-r.start)
			copy(ct, m.dram[r.start:r.end])
			copy(m.dram[r.start:r.end], r.cipher.Decrypt(r.start, ct))
			m.ranges = append(m.ranges[:i], m.ranges[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("unprotect %#x: no protected range", start)
}

// rangeFor returns the protected range covering addr, if any. Caller holds mu.
func (m *Memory) rangeFor(addr PhysAddr) *protRange {
	for i := range m.ranges {
		if addr >= m.ranges[i].start && addr < m.ranges[i].end {
			return &m.ranges[i]
		}
	}
	return nil
}

// checkStraddle rejects accesses that cross a protected-range boundary:
// real memory-encryption engines operate on whole protected regions, and a
// single access half-in, half-out has no coherent representation.
// Caller holds mu.
func (m *Memory) checkStraddle(addr PhysAddr, n int) error {
	end := addr + PhysAddr(n)
	for i := range m.ranges {
		r := &m.ranges[i]
		if addr < r.end && r.start < end { // overlaps the range
			if addr < r.start || end > r.end { // ... but not contained
				return fmt.Errorf("access [%#x,%#x) straddles protected range [%#x,%#x): %w",
					addr, end, r.start, r.end, ErrFault)
			}
		}
	}
	return nil
}

// ReadPhys reads n bytes at addr as seen by the CPU side: data travels over
// the bus (visible to taps, possibly tampered) and is decrypted by the
// range's engine if one is registered.
func (m *Memory) ReadPhys(addr PhysAddr, n int) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(addr)+n > len(m.dram) {
		return nil, fmt.Errorf("read %d@%#x: %w", n, addr, ErrFault)
	}
	if err := m.checkStraddle(addr, n); err != nil {
		return nil, err
	}
	bus := make([]byte, n)
	copy(bus, m.dram[addr:int(addr)+n])
	for _, t := range m.taps {
		if repl := t.OnRead(addr, bus); repl != nil {
			bus = repl
		}
	}
	if r := m.rangeFor(addr); r != nil {
		if r.authenticated {
			want := r.expected[addr-r.start : int(addr-r.start)+n]
			if !bytesEqual(bus, want) {
				return nil, fmt.Errorf("read %d@%#x: %w", n, addr, ErrIntegrity)
			}
		}
		return r.cipher.Decrypt(addr, bus), nil
	}
	return bus, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WritePhys writes p at addr from the CPU side: the range's engine (if any)
// encrypts first, then the bus carries the data past the taps into DRAM.
func (m *Memory) WritePhys(addr PhysAddr, p []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(addr)+len(p) > len(m.dram) {
		return fmt.Errorf("write %d@%#x: %w", len(p), addr, ErrFault)
	}
	if err := m.checkStraddle(addr, len(p)); err != nil {
		return err
	}
	bus := p
	r := m.rangeFor(addr)
	if r != nil {
		bus = r.cipher.Encrypt(addr, p)
		if r.authenticated {
			// The controller's integrity state records what it SENT;
			// whatever a tap does to the wire is caught on read-back.
			copy(r.expected[addr-r.start:], bus)
		}
	}
	for _, t := range m.taps {
		if repl := t.OnWrite(addr, bus); repl != nil {
			bus = repl
		}
	}
	copy(m.dram[addr:int(addr)+len(bus)], bus)
	return nil
}

// PeekRaw returns the raw DRAM contents without involving the bus or any
// decryption. Tests use it to assert what is physically resident.
func (m *Memory) PeekRaw(addr PhysAddr, n int) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]byte, n)
	copy(out, m.dram[addr:int(addr)+n])
	return out
}

// PokeRaw overwrites raw DRAM contents, bypassing the controller entirely.
// It models cold-boot style physical manipulation of DRAM.
func (m *Memory) PokeRaw(addr PhysAddr, p []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	copy(m.dram[addr:int(addr)+len(p)], p)
}

// FrameAllocator hands out physical frames from DRAM.
type FrameAllocator struct {
	mu    sync.Mutex
	start PhysAddr
	next  PhysAddr
	limit PhysAddr
	free  []PhysAddr
}

// NewFrameAllocator creates an allocator over [start, start+size).
func NewFrameAllocator(start PhysAddr, size int) *FrameAllocator {
	return &FrameAllocator{start: start, next: start, limit: start + PhysAddr(size)}
}

// Alloc returns the base address of a fresh frame.
func (f *FrameAllocator) Alloc() (PhysAddr, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n := len(f.free); n > 0 {
		a := f.free[n-1]
		f.free = f.free[:n-1]
		return a, nil
	}
	if f.next+PageSize > f.limit {
		return 0, ErrNoMemory
	}
	a := f.next
	f.next += PageSize
	return a, nil
}

// Free returns a frame to the allocator.
func (f *FrameAllocator) Free(a PhysAddr) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.free = append(f.free, a)
}

// InUse reports how many frames are currently handed out.
func (f *FrameAllocator) InUse() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int(f.next-f.start)/PageSize - len(f.free)
}
