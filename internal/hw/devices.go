package hw

import (
	"fmt"
	"sync"
)

// Device is the common behaviour of simulated peripherals. Every device has
// a stable name used for IOMMU attachment and manifest declarations.
type Device interface {
	DeviceName() string
}

// NIC is a simulated network interface with transmit and receive queues.
// The netsim package wires NICs of different machines together; here the
// NIC is only the machine-local queue pair plus an exclusive-owner latch so
// substrates can grant it to exactly one component (the paper's "if only
// the TLS component can access the device driver of the network card ...").
type NIC struct {
	name string

	mu    sync.Mutex
	owner string
	tx    [][]byte
	rx    [][]byte
}

var _ Device = (*NIC)(nil)

// NewNIC creates a NIC with the given name.
func NewNIC(name string) *NIC {
	return &NIC{name: name}
}

// DeviceName returns the device name.
func (n *NIC) DeviceName() string { return n.name }

// Claim makes owner the exclusive user of the NIC. A second claim by a
// different owner fails, modeling exclusive device capability assignment.
func (n *NIC) Claim(owner string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.owner != "" && n.owner != owner {
		return fmt.Errorf("nic %s: already claimed by %s", n.name, n.owner)
	}
	n.owner = owner
	return nil
}

// Owner returns the current exclusive owner, or "" if unclaimed.
func (n *NIC) Owner() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.owner
}

// Send enqueues a frame for transmission. Only the owner may send when the
// NIC is claimed.
func (n *NIC) Send(from string, frame []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.owner != "" && n.owner != from {
		return fmt.Errorf("nic %s: %s is not the owner (%s)", n.name, from, n.owner)
	}
	f := make([]byte, len(frame))
	copy(f, frame)
	n.tx = append(n.tx, f)
	return nil
}

// PopTx removes and returns the oldest transmitted frame (used by the
// network simulator acting as the wire).
func (n *NIC) PopTx() ([]byte, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.tx) == 0 {
		return nil, false
	}
	f := n.tx[0]
	n.tx = n.tx[1:]
	return f, true
}

// Deliver enqueues a frame on the receive side (called by the wire).
func (n *NIC) Deliver(frame []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	f := make([]byte, len(frame))
	copy(f, frame)
	n.rx = append(n.rx, f)
}

// Recv removes and returns the oldest received frame. Only the owner may
// receive when the NIC is claimed.
func (n *NIC) Recv(from string) ([]byte, bool, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.owner != "" && n.owner != from {
		return nil, false, fmt.Errorf("nic %s: %s is not the owner (%s)", n.name, from, n.owner)
	}
	if len(n.rx) == 0 {
		return nil, false, nil
	}
	f := n.rx[0]
	n.rx = n.rx[1:]
	return f, true, nil
}

// SectorSize is the block device sector size in bytes.
const SectorSize = 512

// BlockDevice is a simulated persistent store addressed in sectors. The
// physical attacker (and the untrusted legacy storage stack) may tamper
// with it freely via TamperSector; VPFS must detect that.
type BlockDevice struct {
	name string

	mu      sync.Mutex
	sectors [][]byte
	reads   int
	writes  int
}

var _ Device = (*BlockDevice)(nil)

// NewBlockDevice creates a device with n sectors, all zeroed.
func NewBlockDevice(name string, n int) *BlockDevice {
	s := make([][]byte, n)
	for i := range s {
		s[i] = make([]byte, SectorSize)
	}
	return &BlockDevice{name: name, sectors: s}
}

// DeviceName returns the device name.
func (d *BlockDevice) DeviceName() string { return d.name }

// NumSectors returns the device capacity in sectors.
func (d *BlockDevice) NumSectors() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.sectors)
}

// ReadSector copies out sector i.
func (d *BlockDevice) ReadSector(i int) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if i < 0 || i >= len(d.sectors) {
		return nil, fmt.Errorf("blk %s: read sector %d out of range", d.name, i)
	}
	d.reads++
	out := make([]byte, SectorSize)
	copy(out, d.sectors[i])
	return out, nil
}

// WriteSector overwrites sector i with p (padded/truncated to SectorSize).
func (d *BlockDevice) WriteSector(i int, p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if i < 0 || i >= len(d.sectors) {
		return fmt.Errorf("blk %s: write sector %d out of range", d.name, i)
	}
	d.writes++
	buf := make([]byte, SectorSize)
	copy(buf, p)
	d.sectors[i] = buf
	return nil
}

// TamperSector lets an attacker mutate a sector byte-by-byte, bypassing any
// driver stack. fn receives the live sector contents.
func (d *BlockDevice) TamperSector(i int, fn func(sector []byte)) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if i < 0 || i >= len(d.sectors) {
		return fmt.Errorf("blk %s: tamper sector %d out of range", d.name, i)
	}
	fn(d.sectors[i])
	return nil
}

// Stats returns the cumulative read and write counts.
func (d *BlockDevice) Stats() (reads, writes int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.writes
}

// Snapshot copies the full device contents; RestoreSnapshot writes them
// back. Together they model a rollback (replay) attack on storage.
func (d *BlockDevice) Snapshot() [][]byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([][]byte, len(d.sectors))
	for i, s := range d.sectors {
		c := make([]byte, SectorSize)
		copy(c, s)
		out[i] = c
	}
	return out
}

// RestoreSnapshot replaces device contents with a previously taken snapshot.
func (d *BlockDevice) RestoreSnapshot(snap [][]byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(snap) != len(d.sectors) {
		return fmt.Errorf("blk %s: snapshot has %d sectors, device has %d", d.name, len(snap), len(d.sectors))
	}
	for i, s := range snap {
		c := make([]byte, SectorSize)
		copy(c, s)
		d.sectors[i] = c
	}
	return nil
}

// Display is a simulated framebuffer organized as labeled text regions.
// The gui package multiplexes it; a raw (non-multiplexed) display lets any
// client draw anything, which is what the secure-GUI experiment attacks.
type Display struct {
	name string

	mu      sync.Mutex
	regions []DisplayRegion
}

// DisplayRegion is one drawn element with the identity the drawing path
// attached to it. For the secure GUI, Origin is assigned by the
// multiplexer and cannot be chosen by the client.
type DisplayRegion struct {
	Origin  string // who drew it, as established by the display path
	Label   string // trusted label rendered by the mux ("" on a raw display)
	Content string
}

var _ Device = (*Display)(nil)

// NewDisplay creates a display.
func NewDisplay(name string) *Display {
	return &Display{name: name}
}

// DeviceName returns the device name.
func (d *Display) DeviceName() string { return d.name }

// Draw appends a region. On a raw display the client controls every field,
// including Origin — that is the vulnerability the GUI mux removes.
func (d *Display) Draw(r DisplayRegion) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.regions = append(d.regions, r)
}

// Clear removes all regions.
func (d *Display) Clear() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.regions = nil
}

// Regions returns a copy of the current screen contents.
func (d *Display) Regions() []DisplayRegion {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]DisplayRegion, len(d.regions))
	copy(out, d.regions)
	return out
}

// InputDevice is a simulated keyboard/touch source. Events are routed to
// whoever reads the queue; the GUI mux imposes focus-based routing.
type InputDevice struct {
	name string

	mu     sync.Mutex
	events []string
}

var _ Device = (*InputDevice)(nil)

// NewInputDevice creates an input source.
func NewInputDevice(name string) *InputDevice {
	return &InputDevice{name: name}
}

// DeviceName returns the device name.
func (d *InputDevice) DeviceName() string { return d.name }

// Inject adds a user input event (the test harness plays the user).
func (d *InputDevice) Inject(event string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.events = append(d.events, event)
}

// Next pops the oldest pending event.
func (d *InputDevice) Next() (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.events) == 0 {
		return "", false
	}
	e := d.events[0]
	d.events = d.events[1:]
	return e, true
}
