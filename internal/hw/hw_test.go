package hw

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := NewMemory(2 * PageSize)
	want := []byte("hello physical world")
	if err := m.WritePhys(100, want); err != nil {
		t.Fatalf("WritePhys: %v", err)
	}
	got, err := m.ReadPhys(100, len(want))
	if err != nil {
		t.Fatalf("ReadPhys: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("round trip got %q, want %q", got, want)
	}
}

func TestMemoryOutOfRange(t *testing.T) {
	m := NewMemory(PageSize)
	if err := m.WritePhys(PhysAddr(PageSize-2), []byte("abcd")); !errors.Is(err, ErrFault) {
		t.Errorf("write past end: got %v, want ErrFault", err)
	}
	if _, err := m.ReadPhys(PhysAddr(PageSize-1), 8); !errors.Is(err, ErrFault) {
		t.Errorf("read past end: got %v, want ErrFault", err)
	}
}

func TestMemorySizeRoundsUpToPage(t *testing.T) {
	m := NewMemory(PageSize + 1)
	if m.Size() != 2*PageSize {
		t.Errorf("size = %d, want %d", m.Size(), 2*PageSize)
	}
}

// recordingTap records all plaintext it sees on the bus.
type recordingTap struct {
	seen []byte
}

func (r *recordingTap) OnRead(_ PhysAddr, data []byte) []byte {
	r.seen = append(r.seen, data...)
	return nil
}

func (r *recordingTap) OnWrite(_ PhysAddr, data []byte) []byte {
	r.seen = append(r.seen, data...)
	return nil
}

func TestBusTapSeesPlaintextWrites(t *testing.T) {
	m := NewMemory(PageSize)
	tap := &recordingTap{}
	m.AttachTap(tap)
	secret := []byte("TOP-SECRET-DATA")
	if err := m.WritePhys(0, secret); err != nil {
		t.Fatalf("WritePhys: %v", err)
	}
	if !bytes.Contains(tap.seen, secret) {
		t.Error("bus tap did not observe plaintext write; it must on unprotected DRAM")
	}
}

// xorCipher is a toy memory-encryption engine for tests.
type xorCipher struct{ key byte }

func (c xorCipher) Encrypt(_ PhysAddr, p []byte) []byte { return xorBytes(p, c.key) }
func (c xorCipher) Decrypt(_ PhysAddr, p []byte) []byte { return xorBytes(p, c.key) }

func xorBytes(p []byte, k byte) []byte {
	out := make([]byte, len(p))
	for i, b := range p {
		out[i] = b ^ k
	}
	return out
}

func TestProtectedRangeHidesPlaintextFromTap(t *testing.T) {
	m := NewMemory(2 * PageSize)
	if err := m.Protect(0, PageSize, xorCipher{key: 0x5a}); err != nil {
		t.Fatalf("Protect: %v", err)
	}
	tap := &recordingTap{}
	m.AttachTap(tap)
	secret := []byte("ENCLAVE-SECRET-VALUE")
	if err := m.WritePhys(16, secret); err != nil {
		t.Fatalf("WritePhys: %v", err)
	}
	if bytes.Contains(tap.seen, secret) {
		t.Error("bus tap observed plaintext inside protected range")
	}
	got, err := m.ReadPhys(16, len(secret))
	if err != nil {
		t.Fatalf("ReadPhys: %v", err)
	}
	if !bytes.Equal(got, secret) {
		t.Errorf("CPU-side read got %q, want %q", got, secret)
	}
	if raw := m.PeekRaw(16, len(secret)); bytes.Equal(raw, secret) {
		t.Error("raw DRAM holds plaintext inside protected range")
	}
}

func TestProtectRejectsOverlapAndOutOfRange(t *testing.T) {
	m := NewMemory(4 * PageSize)
	if err := m.Protect(0, 2*PageSize, xorCipher{1}); err != nil {
		t.Fatalf("Protect: %v", err)
	}
	if err := m.Protect(PageSize, PageSize, xorCipher{2}); err == nil {
		t.Error("overlapping Protect succeeded, want error")
	}
	if err := m.Protect(3*PageSize, 2*PageSize, xorCipher{3}); err == nil {
		t.Error("out-of-range Protect succeeded, want error")
	}
}

func TestUnprotectRestoresPlaintext(t *testing.T) {
	m := NewMemory(PageSize)
	secret := []byte("persisted")
	if err := m.WritePhys(0, secret); err != nil {
		t.Fatal(err)
	}
	if err := m.Protect(0, PageSize, xorCipher{0x33}); err != nil {
		t.Fatal(err)
	}
	if raw := m.PeekRaw(0, len(secret)); bytes.Equal(raw, secret) {
		t.Fatal("Protect did not re-encrypt existing contents")
	}
	if err := m.Unprotect(0); err != nil {
		t.Fatal(err)
	}
	if raw := m.PeekRaw(0, len(secret)); !bytes.Equal(raw, secret) {
		t.Errorf("Unprotect left %q, want %q", raw, secret)
	}
	if err := m.Unprotect(0); err == nil {
		t.Error("double Unprotect succeeded, want error")
	}
}

func TestTamperingTapCorruptsData(t *testing.T) {
	m := NewMemory(PageSize)
	m.AttachTap(flipTap{})
	if err := m.WritePhys(0, []byte{0x01}); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadPhys(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Write flipped once (stored 0xFE), read flips again (returns 0x01^0xff^0xff... ).
	// flipTap flips on both write and read: stored = ^0x01 = 0xfe, read returns ^0xfe = 0x01.
	// To observe corruption use PeekRaw.
	if raw := m.PeekRaw(0, 1); raw[0] != 0xfe {
		t.Errorf("raw DRAM = %#x, want 0xfe (tampered)", raw[0])
	}
	_ = got
}

type flipTap struct{}

func (flipTap) OnRead(_ PhysAddr, data []byte) []byte  { return xorBytes(data, 0xff) }
func (flipTap) OnWrite(_ PhysAddr, data []byte) []byte { return xorBytes(data, 0xff) }

func TestFrameAllocator(t *testing.T) {
	f := NewFrameAllocator(0, 3*PageSize)
	a1, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Error("allocator returned the same frame twice")
	}
	if got := f.InUse(); got != 2 {
		t.Errorf("InUse = %d, want 2", got)
	}
	f.Free(a1)
	if got := f.InUse(); got != 1 {
		t.Errorf("InUse after free = %d, want 1", got)
	}
	a3, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if a3 != a1 {
		t.Errorf("expected freed frame %#x to be reused, got %#x", a1, a3)
	}
	if _, err := f.Alloc(); err != nil {
		t.Fatalf("third distinct frame should fit: %v", err)
	}
	if _, err := f.Alloc(); !errors.Is(err, ErrNoMemory) {
		t.Errorf("exhausted allocator returned %v, want ErrNoMemory", err)
	}
}

func TestPermAllows(t *testing.T) {
	cases := []struct {
		perm Perm
		acc  Access
		want bool
	}{
		{PermRead, Read, true},
		{PermRead, Write, false},
		{PermRead | PermWrite, Write, true},
		{PermExecute, Execute, true},
		{PermExecute, Read, false},
		{0, Read, false},
	}
	for _, c := range cases {
		if got := c.perm.Allows(c.acc); got != c.want {
			t.Errorf("Perm(%b).Allows(%v) = %v, want %v", c.perm, c.acc, got, c.want)
		}
	}
}

func TestMMUTranslateAndFaults(t *testing.T) {
	m := NewMemory(8 * PageSize)
	mmu := NewMMU(m)
	pt := NewPageTable()
	pt.Map(0x1000, 0x3000, PermRead|PermWrite)

	pa, err := mmu.Translate(pt, 0x1234, Read)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if pa != 0x3234 {
		t.Errorf("Translate = %#x, want 0x3234", pa)
	}
	if _, err := mmu.Translate(pt, 0x2000, Read); !errors.Is(err, ErrFault) {
		t.Errorf("unmapped page: got %v, want ErrFault", err)
	}
	if _, err := mmu.Translate(pt, 0x1000, Execute); !errors.Is(err, ErrFault) {
		t.Errorf("exec on rw page: got %v, want ErrFault", err)
	}
	var fe *FaultError
	_, err = mmu.Translate(pt, 0x2000, Write)
	if !errors.As(err, &fe) {
		t.Fatalf("expected *FaultError, got %T", err)
	}
	if fe.VA != 0x2000 || fe.Access != Write {
		t.Errorf("fault details = %+v", fe)
	}
}

func TestMMUCrossPageReadWrite(t *testing.T) {
	m := NewMemory(8 * PageSize)
	mmu := NewMMU(m)
	pt := NewPageTable()
	// Two virtually adjacent pages backed by non-adjacent frames.
	pt.Map(0x1000, 0x5000, PermRead|PermWrite)
	pt.Map(0x2000, 0x3000, PermRead|PermWrite)

	data := bytes.Repeat([]byte("xy"), PageSize/2+8)
	if err := mmu.Write(pt, 0x1000+VirtAddr(PageSize-8), data[:16]); err != nil {
		t.Fatalf("cross-page write: %v", err)
	}
	got, err := mmu.Read(pt, 0x1000+VirtAddr(PageSize-8), 16)
	if err != nil {
		t.Fatalf("cross-page read: %v", err)
	}
	if !bytes.Equal(got, data[:16]) {
		t.Errorf("cross-page round trip got %q, want %q", got, data[:16])
	}
}

func TestMMUIsolationBetweenTables(t *testing.T) {
	m := NewMemory(8 * PageSize)
	mmu := NewMMU(m)
	ptA := NewPageTable()
	ptB := NewPageTable()
	ptA.Map(0, 0x1000, PermRead|PermWrite)
	ptB.Map(0, 0x2000, PermRead|PermWrite)

	if err := mmu.Write(ptA, 0, []byte("A-secret")); err != nil {
		t.Fatal(err)
	}
	got, err := mmu.Read(ptB, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, []byte("A-secret")) {
		t.Error("address space B read A's data at the same virtual address")
	}
}

func TestPageTableMappingsSortedAndUnmap(t *testing.T) {
	pt := NewPageTable()
	pt.Map(0x3000, 0x1000, PermRead)
	pt.Map(0x1000, 0x2000, PermRead)
	pt.Map(0x2000, 0x3000, PermRead)
	ms := pt.Mappings()
	if len(ms) != 3 {
		t.Fatalf("got %d mappings, want 3", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i-1].VPage >= ms[i].VPage {
			t.Errorf("mappings not sorted: %#x before %#x", ms[i-1].VPage, ms[i].VPage)
		}
	}
	pt.Unmap(0x2000)
	if _, ok := pt.Lookup(0x2000); ok {
		t.Error("lookup succeeded after unmap")
	}
}

func TestIOMMUBlocksUnattachedDevice(t *testing.T) {
	m := NewMemory(4 * PageSize)
	io := NewIOMMU(m)
	if _, err := io.DMARead("nic0", 0, 4); !errors.Is(err, ErrFault) {
		t.Errorf("unattached DMA read: got %v, want ErrFault", err)
	}
	if err := io.DMAWrite("nic0", 0, []byte{1}); !errors.Is(err, ErrFault) {
		t.Errorf("unattached DMA write: got %v, want ErrFault", err)
	}
}

func TestIOMMURestrictsDeviceToItsMapping(t *testing.T) {
	m := NewMemory(4 * PageSize)
	io := NewIOMMU(m)
	pt := NewPageTable()
	pt.Map(0, 0x1000, PermRead|PermWrite)
	io.Attach("nic0", pt)

	if err := io.DMAWrite("nic0", 0, []byte("dma ok")); err != nil {
		t.Fatalf("permitted DMA write: %v", err)
	}
	got, err := io.DMARead("nic0", 0, 6)
	if err != nil {
		t.Fatalf("permitted DMA read: %v", err)
	}
	if string(got) != "dma ok" {
		t.Errorf("DMA read = %q", got)
	}
	// Attempt to reach a page the IOMMU never mapped (e.g. page tables).
	if err := io.DMAWrite("nic0", 0x2000, []byte("evil")); !errors.Is(err, ErrFault) {
		t.Errorf("out-of-map DMA write: got %v, want ErrFault", err)
	}
	io.Attach("nic0", nil)
	if _, err := io.DMARead("nic0", 0, 1); !errors.Is(err, ErrFault) {
		t.Errorf("detached DMA read: got %v, want ErrFault", err)
	}
}

func TestFuseBank(t *testing.T) {
	b := NewFuseBank()
	key := []byte{1, 2, 3, 4}
	if err := b.Program("device-key", key, PrivSecureWorld); err != nil {
		t.Fatal(err)
	}
	if err := b.Program("device-key", []byte{9}, PrivUser); !errors.Is(err, ErrFuseBlown) {
		t.Errorf("reprogram: got %v, want ErrFuseBlown", err)
	}
	if _, err := b.Read("device-key", PrivKernel); !errors.Is(err, ErrFuseDenied) {
		t.Errorf("kernel read of secure-world fuse: got %v, want ErrFuseDenied", err)
	}
	got, err := b.Read("device-key", PrivSecureWorld)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, key) {
		t.Errorf("fuse value = %v, want %v", got, key)
	}
	got[0] = 0xff // mutation must not write through
	again, _ := b.Read("device-key", PrivSecureWorld)
	if again[0] == 0xff {
		t.Error("fuse Read returned aliased storage")
	}
	if _, err := b.Read("missing", PrivSecureWorld); err == nil {
		t.Error("read of unprogrammed fuse succeeded")
	}
}

func TestSRAMBoundsAndRoundTrip(t *testing.T) {
	s := NewSRAM(128)
	if err := s.Write(120, []byte("123456789")); !errors.Is(err, ErrFault) {
		t.Errorf("overflow write: got %v, want ErrFault", err)
	}
	if err := s.Write(8, []byte("on-chip")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "on-chip" {
		t.Errorf("sram read = %q", got)
	}
	if _, err := s.Read(-1, 2); !errors.Is(err, ErrFault) {
		t.Errorf("negative read: got %v, want ErrFault", err)
	}
}

func TestBootROMImmutability(t *testing.T) {
	rom := NewBootROM([]byte("stage0"))
	c := rom.Code()
	c[0] = 'X'
	if string(rom.Code()) != "stage0" {
		t.Error("ROM contents changed via returned slice")
	}
	m1 := rom.Measurement()
	m2 := NewBootROM([]byte("stage0")).Measurement()
	if m1 != m2 {
		t.Error("identical ROM code produced different measurements")
	}
	if m1 == NewBootROM([]byte("stageX")).Measurement() {
		t.Error("different ROM code produced identical measurements")
	}
}

func TestMachineDefaultsAndAllocRegion(t *testing.T) {
	m := NewMachine(MachineConfig{Name: "test"})
	if m.Mem.Size() != 4<<20 {
		t.Errorf("default DRAM = %d", m.Mem.Size())
	}
	if m.SRAM.Size() != 64<<10 {
		t.Errorf("default SRAM = %d", m.SRAM.Size())
	}
	base, err := m.AllocRegion(4)
	if err != nil {
		t.Fatal(err)
	}
	base2, err := m.AllocRegion(2)
	if err != nil {
		t.Fatal(err)
	}
	if base2 != base+4*PageSize {
		t.Errorf("regions not contiguous: %#x then %#x", base, base2)
	}
	if _, err := m.AllocRegion(0); err == nil {
		t.Error("AllocRegion(0) succeeded")
	}
}

func TestNICExclusiveOwnership(t *testing.T) {
	n := NewNIC("eth0")
	if err := n.Claim("tls"); err != nil {
		t.Fatal(err)
	}
	if err := n.Claim("tls"); err != nil {
		t.Errorf("re-claim by same owner failed: %v", err)
	}
	if err := n.Claim("malware"); err == nil {
		t.Error("second owner claimed an owned NIC")
	}
	if err := n.Send("malware", []byte("exfil")); err == nil {
		t.Error("non-owner sent on claimed NIC")
	}
	if err := n.Send("tls", []byte("frame1")); err != nil {
		t.Fatal(err)
	}
	f, ok := n.PopTx()
	if !ok || string(f) != "frame1" {
		t.Errorf("PopTx = %q, %v", f, ok)
	}
	n.Deliver([]byte("frame2"))
	if _, _, err := n.Recv("malware"); err == nil {
		t.Error("non-owner received on claimed NIC")
	}
	g, ok, err := n.Recv("tls")
	if err != nil || !ok || string(g) != "frame2" {
		t.Errorf("Recv = %q, %v, %v", g, ok, err)
	}
	if _, ok, _ := n.Recv("tls"); ok {
		t.Error("Recv on empty queue reported a frame")
	}
}

func TestBlockDeviceTamperAndSnapshot(t *testing.T) {
	d := NewBlockDevice("disk0", 4)
	if err := d.WriteSector(1, []byte("ledger v1")); err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	if err := d.WriteSector(1, []byte("ledger v2")); err != nil {
		t.Fatal(err)
	}
	if err := d.TamperSector(1, func(s []byte) { s[0] ^= 0xff }); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadSector(1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] == 'l' {
		t.Error("tamper did not change sector")
	}
	if err := d.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	got, _ = d.ReadSector(1)
	if !bytes.HasPrefix(got, []byte("ledger v1")) {
		t.Errorf("rollback failed: sector = %q", got[:9])
	}
	if err := d.RestoreSnapshot(snap[:1]); err == nil {
		t.Error("mismatched snapshot restore succeeded")
	}
	if _, err := d.ReadSector(99); err == nil {
		t.Error("out-of-range read succeeded")
	}
	r, w := d.Stats()
	if r == 0 || w == 0 {
		t.Errorf("stats not counted: r=%d w=%d", r, w)
	}
}

func TestDisplayAndInput(t *testing.T) {
	disp := NewDisplay("fb0")
	disp.Draw(DisplayRegion{Origin: "app", Content: "hello"})
	if got := disp.Regions(); len(got) != 1 || got[0].Content != "hello" {
		t.Errorf("regions = %+v", got)
	}
	disp.Clear()
	if got := disp.Regions(); len(got) != 0 {
		t.Errorf("regions after clear = %+v", got)
	}
	in := NewInputDevice("kbd0")
	if _, ok := in.Next(); ok {
		t.Error("empty input returned event")
	}
	in.Inject("key:a")
	in.Inject("key:b")
	if e, _ := in.Next(); e != "key:a" {
		t.Errorf("first event = %q", e)
	}
	if e, _ := in.Next(); e != "key:b" {
		t.Errorf("second event = %q", e)
	}
}

// Property: for any data and any in-range offset, a memory write followed
// by a read returns the same bytes (no tap, no protection).
func TestQuickMemoryRoundTrip(t *testing.T) {
	m := NewMemory(16 * PageSize)
	f := func(data []byte, off uint16) bool {
		if len(data) == 0 {
			return true
		}
		addr := PhysAddr(off) % PhysAddr(m.Size()-len(data))
		if err := m.WritePhys(addr, data); err != nil {
			return false
		}
		got, err := m.ReadPhys(addr, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: encrypt/decrypt through a protected range is the identity for
// the CPU view, and the raw DRAM never equals the plaintext for non-trivial
// data.
func TestQuickProtectedRangeIdentity(t *testing.T) {
	m := NewMemory(4 * PageSize)
	if err := m.Protect(0, 2*PageSize, xorCipher{key: 0xa7}); err != nil {
		t.Fatal(err)
	}
	f := func(data []byte) bool {
		if len(data) == 0 || len(data) > PageSize {
			return true
		}
		if err := m.WritePhys(64, data); err != nil {
			return false
		}
		got, err := m.ReadPhys(64, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAuthenticatedRangeDetectsColdBootWrite(t *testing.T) {
	m := NewMemory(2 * PageSize)
	if err := m.ProtectAuthenticated(0, PageSize, xorCipher{key: 0x5a}); err != nil {
		t.Fatal(err)
	}
	secret := []byte("mee-protected-line")
	if err := m.WritePhys(0, secret); err != nil {
		t.Fatal(err)
	}
	// Legitimate read works.
	if got, err := m.ReadPhys(0, len(secret)); err != nil || !bytes.Equal(got, secret) {
		t.Fatalf("read = %q, %v", got, err)
	}
	// Physical write behind the controller's back: detected on next read.
	m.PokeRaw(4, []byte{0xff})
	if _, err := m.ReadPhys(0, len(secret)); !errors.Is(err, ErrIntegrity) {
		t.Errorf("cold-boot write: got %v, want ErrIntegrity", err)
	}
	// Reads outside the poked span (different bytes) also verify against
	// the shadow — the poked byte is inside, so this read fails too.
	if _, err := m.ReadPhys(4, 1); !errors.Is(err, ErrIntegrity) {
		t.Errorf("direct poked read: got %v", err)
	}
	// Untouched spans still verify.
	if _, err := m.ReadPhys(64, 8); err != nil {
		t.Errorf("untouched span: %v", err)
	}
}

func TestAuthenticatedRangeDetectsActiveBusTamper(t *testing.T) {
	m := NewMemory(PageSize)
	if err := m.ProtectAuthenticated(0, PageSize, xorCipher{key: 0x11}); err != nil {
		t.Fatal(err)
	}
	if err := m.WritePhys(0, []byte("target")); err != nil {
		t.Fatal(err)
	}
	// An active attacker flips wires on the READ path.
	m.AttachTap(flipTap{})
	if _, err := m.ReadPhys(0, 6); !errors.Is(err, ErrIntegrity) {
		t.Errorf("read-path tamper: got %v, want ErrIntegrity", err)
	}
}

func TestAuthenticatedWritePathTamperCaughtOnRead(t *testing.T) {
	m := NewMemory(PageSize)
	m.AttachTap(flipTap{})
	if err := m.ProtectAuthenticated(0, PageSize, xorCipher{key: 0x22}); err != nil {
		t.Fatal(err)
	}
	// Writes pass the flipping tap, so what lands differs from what the
	// controller recorded... and the read-path flip undoes the write-path
	// flip, so the BUS bytes match again. Detection is about what the
	// controller observes; a symmetric in-path flip is transparent. Use an
	// asymmetric tamperer instead: corrupt only writes.
	m2 := NewMemory(PageSize)
	m2.AttachTap(writeOnlyFlip{})
	if err := m2.ProtectAuthenticated(0, PageSize, xorCipher{key: 0x22}); err != nil {
		t.Fatal(err)
	}
	if err := m2.WritePhys(0, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.ReadPhys(0, 7); !errors.Is(err, ErrIntegrity) {
		t.Errorf("write-path tamper: got %v, want ErrIntegrity", err)
	}
	_ = m
}

type writeOnlyFlip struct{}

func (writeOnlyFlip) OnRead(_ PhysAddr, data []byte) []byte  { return nil }
func (writeOnlyFlip) OnWrite(_ PhysAddr, data []byte) []byte { return xorBytes(data, 0xff) }

func TestStraddlingProtectedBoundaryFaults(t *testing.T) {
	m := NewMemory(4 * PageSize)
	if err := m.Protect(PageSize, PageSize, xorCipher{key: 1}); err != nil {
		t.Fatal(err)
	}
	// Fully inside: fine.
	if err := m.WritePhys(PhysAddr(PageSize+10), []byte("in")); err != nil {
		t.Fatal(err)
	}
	// Fully outside: fine.
	if err := m.WritePhys(0, []byte("out")); err != nil {
		t.Fatal(err)
	}
	// Crossing the front boundary: fault, not silent corruption.
	if err := m.WritePhys(PhysAddr(PageSize-2), []byte("abcd")); !errors.Is(err, ErrFault) {
		t.Errorf("front straddle write: got %v", err)
	}
	if _, err := m.ReadPhys(PhysAddr(PageSize-2), 4); !errors.Is(err, ErrFault) {
		t.Errorf("front straddle read: got %v", err)
	}
	// Crossing the back boundary.
	if _, err := m.ReadPhys(PhysAddr(2*PageSize-2), 4); !errors.Is(err, ErrFault) {
		t.Errorf("back straddle read: got %v", err)
	}
}
