// Package sgx simulates the Intel SGX isolation substrate (§II-B):
// "independent trusted components can run concurrently in their own fully
// isolated enclaves ... only the code running inside an enclave can see and
// manipulate the memory that has been allocated to it. SGX hardware in the
// CPU transparently encrypts and decrypts the enclave memory, which is
// backed by DRAM."
//
// Faithfully modeled limitations:
//
//   - Attestation goes "through a specially endowed quoting enclave" whose
//     key the manufacturer certifies; a software emulation without that key
//     cannot produce acceptable quotes.
//   - The paper's §II-C caveat — "SGX suffer[s] from starvation issues and
//     cache side-channel attacks" — is modeled as an access-pattern side
//     channel: AccessTrace exposes which enclave memory offsets were
//     recently touched, at cache-line granularity. Contents stay hidden;
//     patterns do not.
//   - Microcode TCB: Properties.TCBUnits reflects §II-C's "an SGX-CPU
//     therefore adds the equivalent of likely many thousands of lines of
//     code to the TCB".
package sgx

import (
	"errors"
	"fmt"
	"sync"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/hw"
)

// CacheLineSize is the granularity of the modeled access-pattern side
// channel.
const CacheLineSize = 64

// ErrStarved is returned when the untrusted host has suspended an enclave.
// §II-C: "even high-profile security technologies such as SGX suffer from
// starvation issues" — the OS schedules enclaves "similarly to how it
// assigns CPU time to threads", so a hostile OS can deny them service.
// Confidentiality and integrity survive; availability does not.
var ErrStarved = errors.New("sgx: enclave starved by host scheduler")

// Config tunes the substrate.
type Config struct {
	// Machine is the hardware; defaults to a fresh machine.
	Machine *hw.Machine

	// DeviceSeed keys the CPU's fused secrets (quoting key, seal root).
	DeviceSeed string

	// Vendor is the CPU manufacturer certifying the quoting key ("Intel").
	Vendor *cryptoutil.Signer
}

// Substrate is one SGX-capable CPU.
type Substrate struct {
	cfg     Config
	machine *hw.Machine
	qeKey   *cryptoutil.Signer // quoting-enclave key, fused + vendor-certified
	qeCert  []byte
	sealKey []byte // per-CPU seal root

	mu       sync.Mutex
	domains  map[string]*enclave
	legacy   []*enclave
	enclaves []*enclave
	sealCtr  uint64
}

var _ core.Substrate = (*Substrate)(nil)

// New initializes the CPU: fuses the quoting key and seal root.
func New(cfg Config) (*Substrate, error) {
	if cfg.Machine == nil {
		cfg.Machine = hw.NewMachine(hw.MachineConfig{Name: "sgx-host"})
	}
	if cfg.DeviceSeed == "" {
		return nil, fmt.Errorf("sgx: DeviceSeed required")
	}
	if cfg.Vendor == nil {
		return nil, fmt.Errorf("sgx: Vendor required")
	}
	qe := cryptoutil.NewSigner("sgx-qe:" + cfg.DeviceSeed)
	return &Substrate{
		cfg:     cfg,
		machine: cfg.Machine,
		qeKey:   qe,
		qeCert:  core.IssueVendorCert(cfg.Vendor, qe.Public()),
		sealKey: cryptoutil.KeyFromSeed("sgx-seal:" + cfg.DeviceSeed),
		domains: make(map[string]*enclave),
	}, nil
}

// Name returns "sgx".
func (s *Substrate) Name() string { return "sgx" }

// Machine exposes the hardware for experiments (bus taps).
func (s *Substrate) Machine() *hw.Machine { return s.machine }

// Properties per the paper's analysis of SGX.
func (s *Substrate) Properties() core.Properties {
	return core.Properties{
		Substrate:                "sgx",
		SpatialIsolation:         true,
		PhysicalMemoryProtection: true, // memory-encryption engine
		SecureLaunch:             true, // EINIT measurement
		Attestation:              true, // quoting enclave
		ConcurrentTrusted:        true, // enclaves schedule like threads
		SideChannelLeaky:         true, // §II-C cache attacks
		InvokeCostNs:             8000, // EENTER/EEXIT transition round trip
		TCBUnits:                 40,   // microcode + ME per §II-C
	}
}

// Anchor returns the quoting-enclave-backed trust anchor.
func (s *Substrate) Anchor() core.TrustAnchor { return &quotingEnclave{sub: s} }

// Starve models the hostile host scheduler refusing an enclave CPU time.
// The enclave's state stays confidential and intact; it just cannot run.
func (s *Substrate) Starve(enclaveName string, starved bool) error {
	s.mu.Lock()
	e, ok := s.domains[enclaveName]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("sgx: starve %s: %w", enclaveName, core.ErrNoDomain)
	}
	if !e.trusted {
		return fmt.Errorf("sgx: starve %s: not an enclave: %w", enclaveName, core.ErrRefused)
	}
	e.mu.Lock()
	e.suspended = starved
	e.mu.Unlock()
	return nil
}

// meeCipher is the per-enclave memory-encryption engine.
type meeCipher struct {
	key []byte
}

func (c meeCipher) Encrypt(addr hw.PhysAddr, p []byte) []byte {
	out, err := cryptoutil.CTRKeystream(c.key, uint64(addr), p)
	if err != nil {
		return p
	}
	return out
}

func (c meeCipher) Decrypt(addr hw.PhysAddr, p []byte) []byte {
	return c.Encrypt(addr, p) // CTR is an involution
}

// CreateDomain creates an enclave (trusted) or a slice of the untrusted
// host system. Enclave memory is registered with the memory controller as
// a protected (encrypted) range.
func (s *Substrate) CreateDomain(spec core.DomainSpec) (core.DomainHandle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.domains[spec.Name]; ok {
		return nil, fmt.Errorf("sgx: %s: %w", spec.Name, core.ErrDomainExists)
	}
	pages := spec.MemPages
	if pages <= 0 {
		pages = 1
	}
	size := pages * hw.PageSize
	base, err := s.machine.AllocRegion(pages)
	if err != nil {
		return nil, fmt.Errorf("sgx: %s: %w", spec.Name, err)
	}
	e := &enclave{
		sub:     s,
		name:    spec.Name,
		trusted: spec.Trusted,
		meas:    cryptoutil.Hash(spec.Code),
		base:    base,
		size:    size,
	}
	if spec.Trusted {
		// Per-enclave MEE key derived from the CPU secret and a unique id.
		key := cryptoutil.HKDF(s.sealKey, []byte(spec.Name), []byte("sgx-mee"), cryptoutil.KeySize)
		// SGX's MEE provides integrity and replay protection, not just
		// confidentiality: tampered enclave ciphertext faults on access.
		if err := s.machine.Mem.ProtectAuthenticated(base, size, meeCipher{key: key}); err != nil {
			return nil, fmt.Errorf("sgx: %s: %w", spec.Name, err)
		}
		s.enclaves = append(s.enclaves, e)
	} else {
		s.legacy = append(s.legacy, e)
	}
	s.domains[spec.Name] = e
	return e, nil
}

// enclave is one enclave or untrusted-host domain.
type enclave struct {
	sub     *Substrate
	name    string
	trusted bool
	meas    [32]byte
	base    hw.PhysAddr
	size    int

	mu        sync.Mutex
	freed     bool
	suspended bool
	trace     []int // recently touched cache lines (the side channel)
}

var _ core.DomainHandle = (*enclave)(nil)

func (e *enclave) DomainName() string    { return e.name }
func (e *enclave) Measurement() [32]byte { return e.meas }
func (e *enclave) Trusted() bool         { return e.trusted }
func (e *enclave) MemSize() int          { return e.size }

// recordAccess notes the cache lines an access touched. Caller holds e.mu.
func (e *enclave) recordAccess(off, n int) {
	first := off / CacheLineSize
	last := (off + n - 1) / CacheLineSize
	for l := first; l <= last; l++ {
		e.trace = append(e.trace, l)
	}
	if len(e.trace) > 4096 {
		e.trace = e.trace[len(e.trace)-4096:]
	}
}

func (e *enclave) Write(off int, p []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.suspended {
		return fmt.Errorf("sgx %s: %w", e.name, ErrStarved)
	}
	if e.freed || off < 0 || off+len(p) > e.size {
		return fmt.Errorf("sgx %s: write %d@%d out of range", e.name, len(p), off)
	}
	e.recordAccess(off, len(p))
	return e.sub.machine.Mem.WritePhys(e.base+hw.PhysAddr(off), p)
}

func (e *enclave) Read(off, n int) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.suspended {
		return nil, fmt.Errorf("sgx %s: %w", e.name, ErrStarved)
	}
	if e.freed || off < 0 || off+n > e.size {
		return nil, fmt.Errorf("sgx %s: read %d@%d out of range", e.name, n, off)
	}
	e.recordAccess(off, n)
	return e.sub.machine.Mem.ReadPhys(e.base+hw.PhysAddr(off), n)
}

// AccessTrace is the modeled cache side channel: an attacker sharing the
// CPU observes WHICH cache lines the enclave touched (never their
// contents). This is the §II-C leak that distinguishes SGX from physically
// separate designs like the SEP.
func (e *enclave) AccessTrace() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]int, len(e.trace))
	copy(out, e.trace)
	return out
}

// ClearTrace resets the side-channel history (e.g. after a context switch).
func (e *enclave) ClearTrace() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.trace = nil
}

// CompromiseView: a compromised enclave reads its own plaintext and all of
// the untrusted host (enclaves may access their host's memory); a
// compromised host domain reads the whole untrusted system but sees only
// ciphertext of enclaves — which the view deliberately omits, since the
// attacker gains no information from it.
func (e *enclave) CompromiseView() [][]byte {
	e.mu.Lock()
	if e.freed {
		e.mu.Unlock()
		return nil
	}
	e.mu.Unlock()

	var views [][]byte
	self, err := e.Read(0, e.size)
	if err == nil {
		views = append(views, self)
	}
	e.sub.mu.Lock()
	legacy := append([]*enclave(nil), e.sub.legacy...)
	e.sub.mu.Unlock()
	for _, l := range legacy {
		if l == e {
			continue
		}
		if b, err := l.Read(0, l.size); err == nil {
			views = append(views, b)
		}
	}
	return views
}

func (e *enclave) Destroy() error {
	e.mu.Lock()
	if e.freed {
		e.mu.Unlock()
		return nil
	}
	e.freed = true
	e.mu.Unlock()
	if e.trusted {
		if err := e.sub.machine.Mem.Unprotect(e.base); err != nil {
			return fmt.Errorf("sgx destroy %s: %w", e.name, err)
		}
	}
	e.sub.mu.Lock()
	delete(e.sub.domains, e.name)
	e.sub.mu.Unlock()
	return nil
}

// quotingEnclave implements attestation: "SGX provides attestation through
// a specially endowed quoting enclave that Intel provides."
type quotingEnclave struct {
	sub *Substrate
}

var _ core.TrustAnchor = (*quotingEnclave)(nil)

func (q *quotingEnclave) AnchorKind() string { return "sgx-qe" }

// Quote signs an enclave's measurement; untrusted host code cannot be
// quoted.
func (q *quotingEnclave) Quote(d core.DomainHandle, nonce []byte) (core.Quote, error) {
	if !d.Trusted() {
		return core.Quote{}, fmt.Errorf("sgx qe: %s is not an enclave: %w", d.DomainName(), core.ErrRefused)
	}
	return core.SignQuote("sgx-qe", d.Measurement(), nonce, q.sub.qeKey, q.sub.qeCert), nil
}

// Seal binds data to the enclave measurement under the CPU seal root
// (MRENCLAVE policy).
func (q *quotingEnclave) Seal(d core.DomainHandle, plaintext []byte) ([]byte, error) {
	if !d.Trusted() {
		return nil, fmt.Errorf("sgx qe: seal for host code: %w", core.ErrRefused)
	}
	meas := d.Measurement()
	key := cryptoutil.HKDF(q.sub.sealKey, meas[:], []byte("sgx-seal"), cryptoutil.KeySize)
	q.sub.mu.Lock()
	q.sub.sealCtr++
	ctr := q.sub.sealCtr
	q.sub.mu.Unlock()
	return cryptoutil.Seal(key, cryptoutil.DeriveNonce("sgx-seal", ctr), plaintext, meas[:])
}

// Unseal recovers data sealed to the same enclave identity on the same CPU.
func (q *quotingEnclave) Unseal(d core.DomainHandle, sealed []byte) ([]byte, error) {
	if !d.Trusted() {
		return nil, fmt.Errorf("sgx qe: unseal for host code: %w", core.ErrRefused)
	}
	meas := d.Measurement()
	key := cryptoutil.HKDF(q.sub.sealKey, meas[:], []byte("sgx-seal"), cryptoutil.KeySize)
	pt, err := cryptoutil.Open(key, sealed, meas[:])
	if err != nil {
		return nil, fmt.Errorf("sgx unseal %s: %w", d.DomainName(), err)
	}
	return pt, nil
}
