package sgx

import (
	"bytes"
	"errors"
	"testing"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/hw"
)

func newSGX(t *testing.T, m *hw.Machine) (*Substrate, *cryptoutil.Signer) {
	t.Helper()
	vendor := cryptoutil.NewSigner("intel")
	s, err := New(Config{Machine: m, DeviceSeed: "cpu-0", Vendor: vendor})
	if err != nil {
		t.Fatal(err)
	}
	return s, vendor
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Vendor: cryptoutil.NewSigner("v")}); err == nil {
		t.Error("missing DeviceSeed accepted")
	}
	if _, err := New(Config{DeviceSeed: "d"}); err == nil {
		t.Error("missing Vendor accepted")
	}
}

func TestEnclaveMemoryEncryptedOnBus(t *testing.T) {
	m := hw.NewMachine(hw.MachineConfig{})
	tap := &recordTap{}
	m.Mem.AttachTap(tap)
	s, _ := newSGX(t, m)
	enc, err := s.CreateDomain(core.DomainSpec{Name: "anonymizer", Code: []byte("anon-v1"), Trusted: true})
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("CUSTOMER-RECORDS-PLAINTEXT")
	if err := enc.Write(0, secret); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(tap.seen, secret) {
		t.Error("bus tap saw enclave plaintext; MEE must encrypt")
	}
	got, err := enc.Read(0, len(secret))
	if err != nil || !bytes.Equal(got, secret) {
		t.Errorf("enclave self-read = %q, %v", got, err)
	}
	// Raw DRAM holds ciphertext.
	// (Find it via the machine: enclave base is the first allocated region.)
	if raw := m.Mem.PeekRaw(0, len(secret)); bytes.Equal(raw, secret) {
		t.Error("raw DRAM holds enclave plaintext")
	}
}

func TestUntrustedHostIsPlaintextAndShared(t *testing.T) {
	m := hw.NewMachine(hw.MachineConfig{})
	tap := &recordTap{}
	m.Mem.AttachTap(tap)
	s, _ := newSGX(t, m)
	os1, _ := s.CreateDomain(core.DomainSpec{Name: "os", Code: []byte("linux")})
	os2, _ := s.CreateDomain(core.DomainSpec{Name: "daemon", Code: []byte("d")})
	enc, _ := s.CreateDomain(core.DomainSpec{Name: "enc", Code: []byte("e"), Trusted: true})

	hostSecret := []byte("HOST-FS-CONTENTS")
	encSecret := []byte("ENCLAVE-ONLY-DATA")
	if err := os1.Write(0, hostSecret); err != nil {
		t.Fatal(err)
	}
	if err := enc.Write(0, encSecret); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(tap.seen, hostSecret) {
		t.Error("host memory should be plaintext on the bus")
	}
	// Host compromise: sees all host memory, no enclave plaintext.
	var view []byte
	for _, v := range os2.CompromiseView() {
		view = append(view, v...)
	}
	if !bytes.Contains(view, hostSecret) {
		t.Error("host compromise view missing sibling host memory")
	}
	if bytes.Contains(view, encSecret) {
		t.Error("host compromise view contains enclave plaintext")
	}
	// Enclave compromise: own plaintext + host memory (not other enclaves).
	enc2, _ := s.CreateDomain(core.DomainSpec{Name: "enc2", Code: []byte("e2"), Trusted: true})
	enc2Secret := []byte("SIBLING-ENCLAVE-DATA")
	if err := enc2.Write(0, enc2Secret); err != nil {
		t.Fatal(err)
	}
	view = nil
	for _, v := range enc.CompromiseView() {
		view = append(view, v...)
	}
	if !bytes.Contains(view, encSecret) || !bytes.Contains(view, hostSecret) {
		t.Error("enclave compromise view missing own or host memory")
	}
	if bytes.Contains(view, enc2Secret) {
		t.Error("enclave compromise view contains sibling enclave plaintext")
	}
}

func TestConcurrentEnclavesAllowed(t *testing.T) {
	s, _ := newSGX(t, nil)
	for i := 0; i < 8; i++ {
		name := string(rune('a' + i))
		if _, err := s.CreateDomain(core.DomainSpec{Name: name, Code: []byte(name), Trusted: true}); err != nil {
			t.Fatalf("enclave %d: %v", i, err)
		}
	}
	if !s.Properties().ConcurrentTrusted {
		t.Error("SGX must claim concurrent trusted domains")
	}
}

func TestAccessTraceSideChannel(t *testing.T) {
	s, _ := newSGX(t, nil)
	d, _ := s.CreateDomain(core.DomainSpec{Name: "leaky", Code: []byte("l"), Trusted: true, MemPages: 2})
	enc, ok := d.(*enclave)
	if !ok {
		t.Fatal("unexpected handle type")
	}
	enc.ClearTrace()
	// Secret-dependent access: touch line 0 for bit 0, line 16 for bit 1.
	secretBits := []bool{true, false, true, true, false}
	for _, b := range secretBits {
		off := 0
		if b {
			off = 16 * CacheLineSize
		}
		if _, err := d.Read(off, 1); err != nil {
			t.Fatal(err)
		}
	}
	trace := enc.AccessTrace()
	if len(trace) != len(secretBits) {
		t.Fatalf("trace length = %d, want %d", len(trace), len(secretBits))
	}
	for i, b := range secretBits {
		decoded := trace[i] == 16
		if decoded != b {
			t.Errorf("bit %d: trace line %d decodes %v, want %v", i, trace[i], decoded, b)
		}
	}
	if !s.Properties().SideChannelLeaky {
		t.Error("SGX must be marked side-channel leaky (§II-C)")
	}
}

func TestQuotingEnclave(t *testing.T) {
	s, vendor := newSGX(t, nil)
	enc, _ := s.CreateDomain(core.DomainSpec{Name: "anon", Code: []byte("anon-v1"), Trusted: true})
	host, _ := s.CreateDomain(core.DomainSpec{Name: "os", Code: []byte("linux")})
	qe := s.Anchor()
	if qe.AnchorKind() != "sgx-qe" {
		t.Errorf("kind = %q", qe.AnchorKind())
	}
	nonce := []byte("verifier-nonce")
	q, err := qe.Quote(enc, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyQuote(q, nonce, vendor.Public(), enc.Measurement()); err != nil {
		t.Errorf("valid quote rejected: %v", err)
	}
	if _, err := qe.Quote(host, nonce); !errors.Is(err, core.ErrRefused) {
		t.Errorf("host quote: got %v", err)
	}
	// Tampered enclave binary → different measurement → verifier refuses.
	evil, _ := s.CreateDomain(core.DomainSpec{Name: "anon-evil", Code: []byte("anon-v1-TAMPERED"), Trusted: true})
	qEvil, err := qe.Quote(evil, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyQuote(qEvil, nonce, vendor.Public(), enc.Measurement()); !errors.Is(err, core.ErrQuote) {
		t.Error("tampered enclave quote accepted against good measurement")
	}
}

func TestSealingPolicies(t *testing.T) {
	s, _ := newSGX(t, nil)
	a, _ := s.CreateDomain(core.DomainSpec{Name: "a", Code: []byte("v1"), Trusted: true})
	b, _ := s.CreateDomain(core.DomainSpec{Name: "b", Code: []byte("v2"), Trusted: true})
	host, _ := s.CreateDomain(core.DomainSpec{Name: "os", Code: []byte("l")})
	qe := s.Anchor()
	blob, err := qe.Seal(a, []byte("state"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := qe.Unseal(a, blob)
	if err != nil || string(got) != "state" {
		t.Fatalf("unseal = %q, %v", got, err)
	}
	if _, err := qe.Unseal(b, blob); err == nil {
		t.Error("different enclave unsealed the blob")
	}
	if _, err := qe.Seal(host, []byte("x")); !errors.Is(err, core.ErrRefused) {
		t.Errorf("host seal: got %v", err)
	}
	if _, err := qe.Unseal(host, blob); !errors.Is(err, core.ErrRefused) {
		t.Errorf("host unseal: got %v", err)
	}
	// Same measurement on a DIFFERENT CPU cannot unseal (seal root differs).
	s2, err := New(Config{DeviceSeed: "cpu-1", Vendor: cryptoutil.NewSigner("intel")})
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := s2.CreateDomain(core.DomainSpec{Name: "a", Code: []byte("v1"), Trusted: true})
	if _, err := s2.Anchor().Unseal(a2, blob); err == nil {
		t.Error("blob unsealed on a different CPU")
	}
}

func TestDestroyReleasesProtectedRange(t *testing.T) {
	m := hw.NewMachine(hw.MachineConfig{})
	s, _ := newSGX(t, m)
	d, err := s.CreateDomain(core.DomainSpec{Name: "tmp", Code: []byte("t"), Trusted: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := d.Destroy(); err != nil {
		t.Errorf("double destroy: %v", err)
	}
	if _, err := d.Read(0, 1); err == nil {
		t.Error("read after destroy succeeded")
	}
	if d.CompromiseView() != nil {
		t.Error("destroyed enclave has a compromise view")
	}
	// The name and the physical range are reusable.
	if _, err := s.CreateDomain(core.DomainSpec{Name: "tmp", Code: []byte("t2"), Trusted: true}); err != nil {
		t.Errorf("recreate after destroy: %v", err)
	}
}

func TestBoundsChecks(t *testing.T) {
	s, _ := newSGX(t, nil)
	d, _ := s.CreateDomain(core.DomainSpec{Name: "d", Code: []byte("c")})
	if err := d.Write(4090, []byte("12345678")); err == nil {
		t.Error("out-of-range write succeeded")
	}
	if _, err := d.Read(-1, 4); err == nil {
		t.Error("negative read succeeded")
	}
	if _, err := s.CreateDomain(core.DomainSpec{Name: "d"}); !errors.Is(err, core.ErrDomainExists) {
		t.Errorf("duplicate: got %v", err)
	}
}

type recordTap struct{ seen []byte }

func (r *recordTap) OnRead(_ hw.PhysAddr, data []byte) []byte {
	r.seen = append(r.seen, data...)
	return nil
}
func (r *recordTap) OnWrite(_ hw.PhysAddr, data []byte) []byte {
	r.seen = append(r.seen, data...)
	return nil
}

func TestEnclaveIntegrityAgainstActiveBusAttack(t *testing.T) {
	// The MEE is authenticated: an attacker who WRITES enclave ciphertext
	// in DRAM (cold boot, bus master) causes a fault on next access, not
	// silent corruption.
	m := hw.NewMachine(hw.MachineConfig{})
	s, _ := newSGX(t, m)
	enc, err := s.CreateDomain(core.DomainSpec{Name: "bank", Code: []byte("b"), Trusted: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Write(0, []byte("account=1000")); err != nil {
		t.Fatal(err)
	}
	// Flip one ciphertext bit in raw DRAM (the enclave's region starts at 0).
	raw := m.Mem.PeekRaw(0, 1)
	m.Mem.PokeRaw(0, []byte{raw[0] ^ 0x80})
	if _, err := enc.Read(0, 12); !errors.Is(err, hw.ErrIntegrity) {
		t.Errorf("tampered enclave memory: got %v, want hw.ErrIntegrity", err)
	}
	// Untampered sibling enclaves still work.
	enc2, err := s.CreateDomain(core.DomainSpec{Name: "other", Code: []byte("o"), Trusted: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := enc2.Write(0, []byte("fine")); err != nil {
		t.Fatal(err)
	}
	if got, err := enc2.Read(0, 4); err != nil || string(got) != "fine" {
		t.Errorf("sibling enclave = %q, %v", got, err)
	}
}

func TestHostCanStarveEnclaveButNotReadIt(t *testing.T) {
	// §II-C starvation: the untrusted OS controls scheduling. It can deny
	// the enclave service — but gains no access by doing so.
	s, _ := newSGX(t, nil)
	enc, err := s.CreateDomain(core.DomainSpec{Name: "victim", Code: []byte("v"), Trusted: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Write(0, []byte("still-confidential")); err != nil {
		t.Fatal(err)
	}
	if err := s.Starve("victim", true); err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Read(0, 4); !errors.Is(err, ErrStarved) {
		t.Errorf("starved read: got %v", err)
	}
	if err := enc.Write(0, []byte("x")); !errors.Is(err, ErrStarved) {
		t.Errorf("starved write: got %v", err)
	}
	// Resume: everything intact.
	if err := s.Starve("victim", false); err != nil {
		t.Fatal(err)
	}
	got, err := enc.Read(0, 18)
	if err != nil || string(got) != "still-confidential" {
		t.Errorf("after resume = %q, %v", got, err)
	}
	// Host code cannot be starved (it IS the scheduler), and unknown
	// names error.
	host, _ := s.CreateDomain(core.DomainSpec{Name: "os", Code: []byte("l")})
	_ = host
	if err := s.Starve("os", true); !errors.Is(err, core.ErrRefused) {
		t.Errorf("starve host: got %v", err)
	}
	if err := s.Starve("ghost", true); !errors.Is(err, core.ErrNoDomain) {
		t.Errorf("starve unknown: got %v", err)
	}
}
