package cryptoutil

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"testing"
	"testing/quick"
)

func TestHashDeterministicAndDistinct(t *testing.T) {
	a := Hash([]byte("hello"))
	b := Hash([]byte("hello"))
	c := Hash([]byte("world"))
	if a != b {
		t.Error("same input hashed differently")
	}
	if a == c {
		t.Error("different input hashed identically")
	}
	if Hash([]byte("he"), []byte("llo")) != a {
		t.Error("multi-part hash differs from concatenated hash")
	}
	if HashString("hello") != a {
		t.Error("HashString differs from Hash")
	}
}

func TestMACVerify(t *testing.T) {
	key := []byte("mac key")
	msg := []byte("the message")
	m := MAC(key, msg)
	if !VerifyMAC(key, msg, m) {
		t.Error("valid MAC rejected")
	}
	if VerifyMAC(key, []byte("tampered"), m) {
		t.Error("MAC over different message accepted")
	}
	if VerifyMAC([]byte("other key"), msg, m) {
		t.Error("MAC under different key accepted")
	}
}

func TestHKDFProperties(t *testing.T) {
	k1 := HKDF([]byte("secret"), []byte("salt"), []byte("info"), 64)
	k2 := HKDF([]byte("secret"), []byte("salt"), []byte("info"), 64)
	if !bytes.Equal(k1, k2) {
		t.Error("HKDF not deterministic")
	}
	if len(k1) != 64 {
		t.Errorf("HKDF length = %d, want 64", len(k1))
	}
	k3 := HKDF([]byte("secret"), []byte("salt"), []byte("other"), 64)
	if bytes.Equal(k1, k3) {
		t.Error("different info produced identical keys")
	}
	k4 := HKDF([]byte("secret"), nil, []byte("info"), 16)
	if len(k4) != 16 {
		t.Errorf("nil-salt HKDF length = %d", len(k4))
	}
	// Prefix property: shorter output is a prefix of longer output.
	if !bytes.Equal(HKDF([]byte("s"), []byte("x"), []byte("i"), 16),
		HKDF([]byte("s"), []byte("x"), []byte("i"), 48)[:16]) {
		t.Error("HKDF output is not prefix-stable")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	key := KeyFromSeed("k1")
	nonce := DeriveNonce("test", 1)
	ct, err := Seal(key, nonce, []byte("plaintext"), []byte("ad"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := Open(key, ct, []byte("ad"))
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "plaintext" {
		t.Errorf("round trip = %q", pt)
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	key := KeyFromSeed("k1")
	ct, err := Seal(key, DeriveNonce("t", 1), []byte("data"), []byte("ad"))
	if err != nil {
		t.Fatal(err)
	}
	flip := make([]byte, len(ct))
	copy(flip, ct)
	flip[len(flip)-1] ^= 1
	if _, err := Open(key, flip, []byte("ad")); !errors.Is(err, ErrAuth) {
		t.Errorf("tampered ciphertext: got %v, want ErrAuth", err)
	}
	if _, err := Open(key, ct, []byte("wrong-ad")); !errors.Is(err, ErrAuth) {
		t.Errorf("wrong AD: got %v, want ErrAuth", err)
	}
	if _, err := Open(KeyFromSeed("k2"), ct, []byte("ad")); !errors.Is(err, ErrAuth) {
		t.Errorf("wrong key: got %v, want ErrAuth", err)
	}
	if _, err := Open(key, []byte("short"), nil); !errors.Is(err, ErrAuth) {
		t.Errorf("short ciphertext: got %v, want ErrAuth", err)
	}
}

func TestSealRejectsBadKeySize(t *testing.T) {
	if _, err := Seal([]byte("short"), DeriveNonce("x", 0), []byte("p"), nil); err == nil {
		t.Error("Seal accepted short key")
	}
	if _, err := Open([]byte("short"), make([]byte, 64), nil); err == nil {
		t.Error("Open accepted short key")
	}
}

func TestDeriveNonceDistinct(t *testing.T) {
	a := DeriveNonce("ctx", 1)
	b := DeriveNonce("ctx", 2)
	c := DeriveNonce("other", 1)
	if a == b || a == c {
		t.Error("nonces collide across counter or context")
	}
	if a != DeriveNonce("ctx", 1) {
		t.Error("nonce not deterministic")
	}
}

func TestCTRKeystreamInvolution(t *testing.T) {
	key := KeyFromSeed("mee")
	data := []byte("memory line contents here")
	ct, err := CTRKeystream(key, 0x1000, data)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct, data) {
		t.Error("CTR produced identity transform")
	}
	pt, err := CTRKeystream(key, 0x1000, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, data) {
		t.Error("CTR decrypt did not restore plaintext")
	}
	other, _ := CTRKeystream(key, 0x2000, data)
	if bytes.Equal(other, ct) {
		t.Error("different tweak produced identical ciphertext")
	}
}

func TestSignerDeterministicIdentity(t *testing.T) {
	s1 := NewSigner("device-42")
	s2 := NewSigner("device-42")
	s3 := NewSigner("device-43")
	if !bytes.Equal(s1.Public(), s2.Public()) {
		t.Error("same seed produced different keys")
	}
	if bytes.Equal(s1.Public(), s3.Public()) {
		t.Error("different seeds produced identical keys")
	}
	msg := []byte("attest this")
	sig := s1.Sign(msg)
	if !Verify(s1.Public(), msg, sig) {
		t.Error("valid signature rejected")
	}
	if Verify(s1.Public(), []byte("other"), sig) {
		t.Error("signature over different message accepted")
	}
	if Verify(s3.Public(), msg, sig) {
		t.Error("signature accepted under wrong key")
	}
	if Verify([]byte("not a key"), msg, sig) {
		t.Error("malformed public key accepted")
	}
	pub := s1.Public()
	pub[0] ^= 1
	if bytes.Equal(pub, s1.Public()) {
		t.Error("Public returned aliased storage")
	}
}

func TestPRNGDeterminismAndRanges(t *testing.T) {
	p1 := NewPRNG("seed")
	p2 := NewPRNG("seed")
	if !bytes.Equal(p1.Bytes(100), p2.Bytes(100)) {
		t.Error("PRNG not deterministic")
	}
	p := NewPRNG("ranges")
	for i := 0; i < 1000; i++ {
		if v := p.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := p.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
	if p.Intn(0) != 0 {
		t.Error("Intn(0) != 0")
	}
	// Odd-sized reads must still be stable and non-repeating in bulk.
	q := NewPRNG("odd")
	a := q.Bytes(3)
	b := q.Bytes(3)
	if bytes.Equal(a, b) {
		t.Error("consecutive PRNG blocks identical")
	}
}

// Property: Seal/Open is the identity for all plaintext and AD.
func TestQuickSealOpen(t *testing.T) {
	key := KeyFromSeed("quick")
	var counter uint64
	f := func(pt, ad []byte) bool {
		counter++
		ct, err := Seal(key, DeriveNonce("quick", counter), pt, ad)
		if err != nil {
			return false
		}
		got, err := Open(key, ct, ad)
		if err != nil {
			return false
		}
		return bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: flipping any single ciphertext bit makes Open fail.
func TestQuickBitFlipDetected(t *testing.T) {
	key := KeyFromSeed("flip")
	ct, err := Seal(key, DeriveNonce("flip", 1), []byte("sixteen byte msg"), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ct {
		for bit := 0; bit < 8; bit++ {
			mod := make([]byte, len(ct))
			copy(mod, ct)
			mod[i] ^= 1 << bit
			if _, err := Open(key, mod, nil); err == nil {
				t.Fatalf("bit flip at byte %d bit %d not detected", i, bit)
			}
		}
	}
}

// TestMACMatchesStdlib pins the pooled one-shot HMAC construction to
// crypto/hmac across key lengths (short, block-size, beyond-block — the
// last exercising the RFC 2104 key-hashing rule) and message sizes.
func TestMACMatchesStdlib(t *testing.T) {
	prng := NewPRNG("hmac-vectors")
	for _, keyLen := range []int{0, 1, 31, 32, 63, 64, 65, 200} {
		for _, msgLen := range []int{0, 1, 33, 64, 1000} {
			key := prng.Bytes(keyLen)
			msg := prng.Bytes(msgLen)
			got := MAC(key, msg)
			ref := hmac.New(sha256.New, key)
			ref.Write(msg)
			if !hmac.Equal(got[:], ref.Sum(nil)) {
				t.Errorf("MAC(keyLen=%d, msgLen=%d) diverges from crypto/hmac", keyLen, msgLen)
			}
		}
	}
}

// TestHKDFMatchesReference pins HKDF to a direct crypto/hmac RFC 5869
// implementation, including multi-block expansion and the nil-salt
// default.
func TestHKDFMatchesReference(t *testing.T) {
	ref := func(secret, salt, info []byte, n int) []byte {
		if salt == nil {
			salt = make([]byte, sha256.Size)
		}
		ext := hmac.New(sha256.New, salt)
		ext.Write(secret)
		prk := ext.Sum(nil)
		var out, prev []byte
		for counter := byte(1); len(out) < n; counter++ {
			m := hmac.New(sha256.New, prk)
			m.Write(prev)
			m.Write(info)
			m.Write([]byte{counter})
			prev = m.Sum(nil)
			out = append(out, prev...)
		}
		return out[:n]
	}
	prng := NewPRNG("hkdf-vectors")
	for _, n := range []int{1, 16, 32, 33, 64, 100} {
		secret := prng.Bytes(32)
		salt := prng.Bytes(16)
		info := prng.Bytes(10)
		if got, want := HKDF(secret, salt, info, n), ref(secret, salt, info, n); !bytes.Equal(got, want) {
			t.Errorf("HKDF(n=%d) diverges from reference", n)
		}
		if got, want := HKDF(secret, nil, info, n), ref(secret, nil, info, n); !bytes.Equal(got, want) {
			t.Errorf("HKDF(n=%d, nil salt) diverges from reference", n)
		}
	}
}
