// Package cryptoutil bundles the cryptographic primitives shared by the
// isolation substrates, the attestation stack, VPFS, and the attested
// secure-channel protocol. Everything is built on the Go standard library.
//
// Determinism matters for this repository: experiments must be
// reproducible, so key generation takes explicit seeds and AEAD nonces are
// derived per message rather than drawn from a global RNG.
package cryptoutil

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Common errors.
var (
	// ErrAuth is returned when an AEAD open, MAC verification, or
	// signature verification fails.
	ErrAuth = errors.New("cryptoutil: authentication failed")
)

// Hash returns the SHA-256 digest over the concatenation of the parts.
func Hash(parts ...[]byte) [32]byte {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// HashString is Hash for string input; convenient for code measurements.
func HashString(s string) [32]byte {
	return Hash([]byte(s))
}

// hmacBlockSize is the SHA-256 block size RFC 2104 pads keys to.
const hmacBlockSize = 64

// hmacPool recycles the scratch block the one-shot HMAC assembles its
// padded input in, so steady-state MAC and HKDF calls allocate nothing
// beyond their outputs. The secure channel ratchets its record keys every
// RatchetInterval records; with crypto/hmac's per-call hash-state
// allocations that ratchet dominated the remote-call hot path's
// allocation profile.
var hmacPool = sync.Pool{New: func() any { return new([]byte) }}

// mac computes HMAC-SHA-256 over the concatenation of the parts using
// one-shot digests on a pooled scratch buffer. The parts slice stays on
// the caller's stack; nothing here escapes.
func mac(key []byte, parts ...[]byte) [32]byte {
	var kb [hmacBlockSize]byte
	if len(key) > hmacBlockSize {
		d := Hash(key)
		copy(kb[:], d[:])
	} else {
		copy(kb[:], key)
	}
	bp := hmacPool.Get().(*[]byte)
	buf := (*bp)[:0]
	for i := 0; i < hmacBlockSize; i++ {
		buf = append(buf, kb[i]^0x36)
	}
	for _, p := range parts {
		buf = append(buf, p...)
	}
	inner := sha256.Sum256(buf)
	buf = buf[:0]
	for i := 0; i < hmacBlockSize; i++ {
		buf = append(buf, kb[i]^0x5c)
	}
	buf = append(buf, inner[:]...)
	out := sha256.Sum256(buf)
	*bp = buf
	hmacPool.Put(bp)
	return out
}

// MAC returns HMAC-SHA-256 of msg under key.
func MAC(key, msg []byte) [32]byte {
	return mac(key, msg)
}

// VerifyMAC reports whether mac is a valid HMAC-SHA-256 of msg under key,
// in constant time.
func VerifyMAC(key, msg []byte, mac [32]byte) bool {
	want := MAC(key, msg)
	return hmac.Equal(want[:], mac[:])
}

// zeroSalt is the all-zero default salt RFC 5869 prescribes.
var zeroSalt [sha256.Size]byte

// HKDF derives n bytes from secret, salt, and info using the extract-and-
// expand construction of RFC 5869 over HMAC-SHA-256. The only allocation
// is the returned key material.
func HKDF(secret, salt, info []byte, n int) []byte {
	if salt == nil {
		salt = zeroSalt[:]
	}
	prk := mac(salt, secret)
	out := make([]byte, 0, (n+sha256.Size-1)/sha256.Size*sha256.Size)
	var prev []byte
	for counter := byte(1); len(out) < n; counter++ {
		t := mac(prk[:], prev, info, []byte{counter})
		out = append(out, t[:]...)
		prev = out[len(out)-sha256.Size:]
	}
	return out[:n]
}

// KeySize is the AEAD key size in bytes (AES-256).
const KeySize = 32

// NonceSize is the AES-GCM nonce size in bytes.
const NonceSize = 12

// Seal encrypts plaintext under key with AES-256-GCM using the given nonce
// and additional data. The nonce is prepended to the returned ciphertext.
func Seal(key []byte, nonce [NonceSize]byte, plaintext, ad []byte) ([]byte, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, NonceSize, NonceSize+len(plaintext)+aead.Overhead())
	copy(out, nonce[:])
	return aead.Seal(out, nonce[:], plaintext, ad), nil
}

// Open decrypts a ciphertext produced by Seal, verifying the tag and the
// additional data.
func Open(key, sealed, ad []byte) ([]byte, error) {
	if len(sealed) < NonceSize {
		return nil, fmt.Errorf("open: ciphertext too short: %w", ErrAuth)
	}
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	pt, err := aead.Open(nil, sealed[:NonceSize], sealed[NonceSize:], ad)
	if err != nil {
		return nil, fmt.Errorf("open: %w", ErrAuth)
	}
	return pt, nil
}

func newGCM(key []byte) (cipher.AEAD, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("aead key must be %d bytes, got %d", KeySize, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// NewAEAD returns the AES-256-GCM AEAD for key. Callers that seal or open
// many records under one key (securechan caches one per direction per
// ratchet epoch) amortize the cipher key schedule instead of paying it per
// record the way Seal/Open do.
func NewAEAD(key []byte) (cipher.AEAD, error) { return newGCM(key) }

// SealTo is Seal with a caller-cached AEAD and a caller-supplied
// destination: nonce||ciphertext is appended to dst (allocation-free when
// dst has spare capacity) and the extended slice returned. nonce must be
// NonceSize bytes; it is passed as a slice so a caller-owned buffer can be
// reused without escaping to the heap.
func SealTo(dst []byte, aead cipher.AEAD, nonce, plaintext, ad []byte) []byte {
	dst = append(dst, nonce...)
	return aead.Seal(dst, nonce, plaintext, ad)
}

// OpenTo is Open with a caller-cached AEAD and a caller-supplied
// destination: the plaintext is appended to dst and the extended slice
// returned.
func OpenTo(dst []byte, aead cipher.AEAD, sealed, ad []byte) ([]byte, error) {
	if len(sealed) < NonceSize {
		return nil, fmt.Errorf("open: ciphertext too short: %w", ErrAuth)
	}
	pt, err := aead.Open(dst, sealed[:NonceSize], sealed[NonceSize:], ad)
	if err != nil {
		return nil, fmt.Errorf("open: %w", ErrAuth)
	}
	return pt, nil
}

// DeriveNonce deterministically derives an AEAD nonce from a key-scoped
// counter and context string. Safe as long as (key, context, counter)
// triples never repeat, which the callers guarantee by construction.
func DeriveNonce(context string, counter uint64) [NonceSize]byte {
	var out [NonceSize]byte
	d := Hash([]byte(context))
	copy(out[:4], d[:4])
	binary.BigEndian.PutUint64(out[4:], counter)
	return out
}

// CTRKeystream XORs data with an AES-256-CTR keystream bound to a physical
// address, for memory-encryption engines. Encrypt and decrypt are the same
// operation. Note: this provides confidentiality only; memory integrity is
// modeled separately where an experiment needs it.
func CTRKeystream(key []byte, tweak uint64, data []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	iv := make([]byte, aes.BlockSize)
	binary.BigEndian.PutUint64(iv, tweak)
	stream := cipher.NewCTR(block, iv)
	out := make([]byte, len(data))
	stream.XORKeyStream(out, data)
	return out, nil
}

// Signer is an Ed25519 identity key. Trust anchors (TPM endorsement keys,
// SGX quoting keys, SEP device keys) and protocol identities all use it.
type Signer struct {
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
}

// NewSigner derives a signer deterministically from a seed string. The
// seed plays the role of the hardware entropy a real device is keyed with
// at manufacture.
func NewSigner(seed string) *Signer {
	d := Hash([]byte("lateral-ed25519-seed"), []byte(seed))
	priv := ed25519.NewKeyFromSeed(d[:])
	return &Signer{priv: priv, pub: priv.Public().(ed25519.PublicKey)}
}

// Public returns the verifying key.
func (s *Signer) Public() ed25519.PublicKey {
	out := make(ed25519.PublicKey, len(s.pub))
	copy(out, s.pub)
	return out
}

// Sign signs msg.
func (s *Signer) Sign(msg []byte) []byte {
	return ed25519.Sign(s.priv, msg)
}

// Verify reports whether sig is a valid signature on msg under pub.
func Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize {
		return false
	}
	return ed25519.Verify(pub, msg, sig)
}

// KeyFromSeed derives an AEAD key from a seed string.
func KeyFromSeed(seed string) []byte {
	d := Hash([]byte("lateral-aead-key"), []byte(seed))
	return d[:]
}

// PRNG is a small deterministic pseudo-random generator (SHA-256 in counter
// mode). It is NOT cryptographically fresh — it exists so workload
// generators and adversaries are reproducible across runs.
type PRNG struct {
	state   [32]byte
	buf     []byte
	counter uint64
}

// NewPRNG seeds a deterministic generator.
func NewPRNG(seed string) *PRNG {
	return &PRNG{state: Hash([]byte("lateral-prng"), []byte(seed))}
}

// Bytes returns n pseudo-random bytes.
func (p *PRNG) Bytes(n int) []byte {
	out := make([]byte, 0, n)
	for len(out) < n {
		if len(p.buf) == 0 {
			var ctr [8]byte
			binary.BigEndian.PutUint64(ctr[:], p.counter)
			p.counter++
			d := Hash(p.state[:], ctr[:])
			p.buf = d[:]
		}
		take := n - len(out)
		if take > len(p.buf) {
			take = len(p.buf)
		}
		out = append(out, p.buf[:take]...)
		p.buf = p.buf[take:]
	}
	return out
}

// Uint64 returns a pseudo-random 64-bit value.
func (p *PRNG) Uint64() uint64 {
	return binary.BigEndian.Uint64(p.Bytes(8))
}

// Intn returns a pseudo-random int in [0, n).
func (p *PRNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(p.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float in [0, 1).
func (p *PRNG) Float64() float64 {
	return float64(p.Uint64()>>11) / float64(1<<53)
}
