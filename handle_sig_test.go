package lateral

// The component contract deliberately has no context.Context: budgets and
// cancellation ride in Envelope.Deadline, so a component compiled for one
// substrate never learns whether its caller is a goroutine, an enclave
// transition, or a wire frame. This vet-style check walks every Go file in
// the repo and fails if any Handle / HandleCompromised method (the
// component entry points) grows a context parameter — the usual way the
// host's concurrency model leaks back into component code.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

func TestHandleSignaturesStayContextFree(t *testing.T) {
	fset := token.NewFileSet()
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil {
				continue
			}
			if name := fn.Name.Name; name != "Handle" && name != "HandleCompromised" {
				continue
			}
			for _, param := range fn.Type.Params.List {
				if sel, ok := param.Type.(*ast.SelectorExpr); ok {
					if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "context" {
						t.Errorf("%s: %s takes a %s.%s parameter; components must stay context-free (use Envelope.Deadline)",
							fset.Position(fn.Pos()), fn.Name.Name, pkg.Name, sel.Sel.Name)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
