package lateral

// Fuzz targets for every parser that consumes attacker-controlled bytes:
// quote decoding, handshake messages, secure-channel records, VPFS blobs,
// and journal records. Each target's invariant is "no panic, and no
// acceptance of garbage as authentic".
//
// Run seeds as part of `go test`; fuzz continuously with e.g.
//
//	go test -fuzz=FuzzDecodeQuote -fuzztime=30s .

import (
	"bytes"
	"crypto/ed25519"
	"encoding/binary"
	"slices"
	"strings"
	"testing"
	"time"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/distributed"
	"lateral/internal/hw"
	"lateral/internal/journal"
	"lateral/internal/legacy"
	"lateral/internal/policy"
	"lateral/internal/securechan"
	"lateral/internal/simtest"
	"lateral/internal/vpfs"
)

func FuzzDecodeQuote(f *testing.F) {
	vendor := cryptoutil.NewSigner("fuzz-vendor")
	device := cryptoutil.NewSigner("fuzz-device")
	genuine := core.SignQuote("sgx-qe", cryptoutil.Hash([]byte("code")), []byte("nonce"),
		device, core.IssueVendorCert(vendor, device.Public()))
	f.Add(genuine.Encode())
	f.Add([]byte{})
	f.Add([]byte{0, 5, 'a', 'b'})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := core.DecodeQuote(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode/decode stably.
		q2, err := core.DecodeQuote(q.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if q2.AnchorKind != q.AnchorKind || q2.Measurement != q.Measurement {
			t.Fatal("decode/encode not stable")
		}
		// A decoded quote over mutated bytes must never verify unless it
		// is byte-identical to the genuine one.
		if !bytes.Equal(data, genuine.Encode()) {
			if err := core.VerifyQuote(q, []byte("nonce"), vendor.Public(), genuine.Measurement); err == nil {
				if !bytes.Equal(q.Encode(), genuine.Encode()) {
					t.Fatal("mutated quote verified")
				}
			}
		}
	})
}

func FuzzServerRespond(f *testing.F) {
	id := cryptoutil.NewSigner("fuzz-server")
	// A genuine hello as seed.
	client, err := securechan.NewClient(securechan.ClientConfig{
		Rand:         cryptoutil.NewPRNG("fuzz-c"),
		VerifyServer: func(_ ed25519.PublicKey, _ [32]byte, _ []byte) error { return nil },
	})
	_ = err
	if client != nil {
		f.Add(client.Hello())
	}
	f.Add([]byte{})
	f.Add([]byte{0, 32})
	f.Fuzz(func(t *testing.T, data []byte) {
		server, err := securechan.NewServer(securechan.ServerConfig{
			Rand: cryptoutil.NewPRNG("fuzz-s"), Identity: id,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Must not panic; errors are fine.
		_, _, _ = server.Respond(data)
	})
}

func FuzzSessionOpen(f *testing.F) {
	id := cryptoutil.NewSigner("fuzz-server")
	client, _ := securechan.NewClient(securechan.ClientConfig{
		Rand:         cryptoutil.NewPRNG("c"),
		VerifyServer: func(_ ed25519.PublicKey, _ [32]byte, _ []byte) error { return nil },
	})
	server, _ := securechan.NewServer(securechan.ServerConfig{
		Rand: cryptoutil.NewPRNG("s"), Identity: id,
	})
	resp, pending, err := server.Respond(client.Hello())
	if err != nil {
		f.Fatal(err)
	}
	cs, finish, err := client.Finish(resp)
	if err != nil {
		f.Fatal(err)
	}
	ss, err := pending.Complete(finish)
	if err != nil {
		f.Fatal(err)
	}
	rec, _ := cs.Seal([]byte("genuine record"))
	f.Add(rec)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		// The genuine record was never delivered, so ANY fuzzed input —
		// including the genuine bytes mutated or not — must either fail
		// or be the exact genuine record (which is fine once).
		pt, err := ss.Open(data)
		if err == nil && !bytes.Equal(pt, []byte("genuine record")) {
			t.Fatalf("forged record opened: %q", pt)
		}
	})
}

// FuzzDistributedFrame covers the call-frame decoder behind the attested
// channel: the plaintext the exporter parses after a record opens. The
// invariant is no panic, and whatever decodes must re-encode to bytes that
// decode to the same (span, budget, corr, op, data) tuple. Seeds mix frame
// versions: pre-budget frames (flags 0 / frameTraced only), budget-bearing
// frames, correlation-tagged v3 frames, truncated fields, and unknown
// future flag bits.
func FuzzDistributedFrame(f *testing.F) {
	untraced := distributed.EncodeRequest(core.Span{}, 0, "put", []byte("doc"))
	traced := distributed.EncodeRequest(core.Span{Trace: 7, ID: 9}, 0, "get", nil)
	budgeted := distributed.EncodeRequest(core.Span{}, 250*time.Millisecond, "put", []byte("doc"))
	both := distributed.EncodeRequest(core.Span{Trace: 7, ID: 9}, time.Second, "get", nil)
	f.Add(untraced)
	f.Add(traced)
	f.Add(budgeted)
	f.Add(both)
	f.Add([]byte{})
	f.Add(untraced[:1])                       // flags only
	f.Add(traced[:9])                         // truncated span context
	f.Add(budgeted[:5])                       // truncated budget
	f.Add(both[:20])                          // span ok, budget cut short
	f.Add([]byte{0, 0, 9, 'o'})               // op length beyond frame
	f.Add([]byte{1, 0, 0, 0, 0})              // traced flag, short span
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0})     // budget flag, 7-byte budget
	f.Add(append([]byte{4}, untraced[1:]...)) // unknown future flag bit
	// Mixed-fault shapes the simulation surfaces: ping frames (the health
	// probe op), duplicated frames, bit-flipped budgets, and a frame whose
	// every flag bit is set.
	ping := distributed.EncodeRequest(core.Span{}, time.Millisecond, distributed.PingOp, nil)
	f.Add(ping)
	f.Add(append(append([]byte{}, ping...), ping...)) // duplicated datagram
	flipped := append([]byte{}, budgeted...)
	flipped[len(flipped)-1] ^= 0x01 // the linkTamperer mutation
	f.Add(flipped)
	f.Add(append([]byte{0xff}, both[1:]...)) // all flag bits set
	// Wire-v3 shapes: correlation-tagged requests. A zero ID is a real ID
	// (HasCorr distinguishes it from a v2 frame); the truncation seeds cut
	// inside the correlation field and at the span/budget/corr boundaries.
	corr := distributed.AppendRequest(nil, distributed.Request{
		Corr: 0x1122334455667788, HasCorr: true, Op: "put", Data: []byte("doc")})
	vFull := distributed.AppendRequest(nil, distributed.Request{
		Span: core.Span{Trace: 7, ID: 9}, Budget: time.Second,
		Corr: ^uint64(0), HasCorr: true, Op: "get"})
	zeroCorr := distributed.AppendRequest(nil, distributed.Request{HasCorr: true, Op: "get"})
	f.Add(corr)
	f.Add(vFull)
	f.Add(zeroCorr)
	f.Add(corr[:5])                                   // cut mid-correlation-id
	f.Add(vFull[:17])                                 // span ok, budget+corr gone
	f.Add(vFull[:25])                                 // span+budget ok, corr gone
	f.Add(append(append([]byte{}, corr...), corr...)) // duplicated v3 datagram
	// Taint-bearing frames: the chain's label set rides the wire, and the
	// decoder demands canonical form (sorted, deduplicated, bounded) — a
	// shuffled or duplicated label list must be rejected, never normalized.
	tainted := distributed.AppendRequest(nil, distributed.Request{
		Taint: []string{"ingress", "meter-identities"}, Op: "put", Data: []byte("doc")})
	taintedFull := distributed.AppendRequest(nil, distributed.Request{
		Span: core.Span{Trace: 7, ID: 9}, Budget: time.Second, Corr: 3, HasCorr: true,
		Taint: []string{"a", "b", "c"}, Op: "get"})
	f.Add(tainted)
	f.Add(taintedFull)
	f.Add(tainted[:2])                        // taint flag, count cut off
	f.Add(tainted[:4])                        // cut inside the first label
	f.Add(append([]byte{8}, 0))               // taint flag, zero label count
	f.Add(append([]byte{8}, 17))              // count beyond maxTaintLabels
	f.Add(append([]byte{8}, 2, 1, 'b', 1, 'a')) // unsorted labels
	f.Add(append([]byte{8}, 2, 1, 'a', 1, 'a')) // duplicated labels
	// Reply-frame shapes fed to the request decoder: the 8-byte correlation
	// prefix of a pipelined reply lands where flags belong, including an ID
	// no caller is parked on — decoders must reject, never panic.
	reply := append(binary.BigEndian.AppendUint64(nil, 0x1122334455667788), 0)
	orphanReply := append(binary.BigEndian.AppendUint64(nil, ^uint64(0)), 0)
	f.Add(append(append([]byte{}, reply...), []byte("ok")...))
	f.Add(append(append([]byte{}, orphanReply...), []byte("doc")...))
	f.Add(reply[:3]) // shorter than any reply prefix
	// Coalesced-record shapes fed to the request decoder: the 0xC3 magic
	// lands where flags belong (its high bits are no known frame version, so
	// decode must reject), whole coalesced headers, and one sub-frame cut
	// out of its record — which IS a valid v3 frame and must round-trip.
	coalHdr := distributed.AppendCoalHeader(nil, []uint64{1, 2, 3})
	f.Add(coalHdr)
	f.Add(append(append([]byte{}, coalHdr...), corr...)) // header backed by a frame
	f.Add(corr) // the sub-frame format IS the plain v3 frame format (interop)
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := distributed.DecodeRequest(data)
		if err != nil {
			return
		}
		if req.Budget < 0 {
			t.Fatalf("negative budget %v decoded", req.Budget)
		}
		again := distributed.AppendRequest(nil, req)
		req2, err := distributed.DecodeRequest(again)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if req2.Span != req.Span || req2.Budget != req.Budget ||
			req2.Corr != req.Corr || req2.HasCorr != req.HasCorr ||
			req2.Op != req.Op || !bytes.Equal(req2.Data, req.Data) {
			t.Fatalf("round trip unstable: %+v vs %+v", req, req2)
		}
		if !slices.Equal(req2.Taint, req.Taint) {
			t.Fatalf("taint round trip unstable: %v vs %v", req.Taint, req2.Taint)
		}
	})
}

// FuzzBatchFrameDecode covers the batched-ingestion payload codec: the
// batch a sealed datagram carries through one AEAD pass. The invariant is
// the canonical-form oracle the policy and journal fuzzers use: whatever
// DecodeBatch accepts, ReencodeBatch must reproduce byte-identically
// (the codec admits exactly one encoding per batch), and reencoding the
// canonical form is the identity. Seeds mix well-formed batches,
// truncations at every field boundary, duplicate readings, reserved ops,
// and whole v2/v3 request frames fed in as batch payloads.
func FuzzBatchFrameDecode(f *testing.F) {
	one, _ := distributed.EncodeBatch([]distributed.Reading{{Op: "reading", Data: []byte("meter-1=\x05")}})
	many, _ := distributed.EncodeBatch([]distributed.Reading{
		{Op: "put", Data: []byte("a=1")},
		{Op: "put", Data: []byte("b=2")},
		{Op: "get", Data: []byte("a")},
		{Op: "noop"},
	})
	dup, _ := distributed.EncodeBatch([]distributed.Reading{ // duplicate readings are legal payload
		{Op: "reading", Data: []byte("meter-7=\x03")},
		{Op: "reading", Data: []byte("meter-7=\x03")},
	})
	f.Add(one)
	f.Add(many)
	f.Add(dup)
	f.Add([]byte{})
	f.Add([]byte{0})                   // short count
	f.Add([]byte{0, 0})                // zero count
	f.Add([]byte{0xff, 0xff})          // count beyond MaxBatchReadings
	f.Add([]byte{0, 2, 0, 1, 'x', 0, 0}) // count not backed by payload
	f.Add(one[:3])                     // truncated at op length
	f.Add(one[:5])                     // truncated mid-op
	f.Add(many[:len(many)-1])          // truncated mid-data
	f.Add(append(append([]byte{}, one...), 0))    // trailing byte
	f.Add(append(append([]byte{}, many...), many...)) // duplicated batch payload
	f.Add([]byte{0, 1, 0, 5, 0, 'b', 'a', 't', 'c', 'h', 0, 0}) // reserved op
	// Mixed-version confusion: whole request frames (v2 without and v3
	// with correlation) fed where a batch payload belongs.
	f.Add(distributed.EncodeRequest(core.Span{Trace: 7, ID: 9}, time.Second, "put", []byte("doc")))
	f.Add(distributed.AppendRequest(nil, distributed.Request{
		Corr: 42, HasCorr: true, Op: distributed.BatchOp, Data: one}))
	f.Fuzz(func(t *testing.T, data []byte) {
		canon, err := distributed.ReencodeBatch(data)
		if err != nil {
			return
		}
		if !bytes.Equal(canon, data) {
			t.Fatalf("accepted batch not canonical: %x reencoded to %x", data, canon)
		}
		again, err := distributed.ReencodeBatch(canon)
		if err != nil {
			t.Fatalf("canonical batch rejected on reencode: %v", err)
		}
		if !bytes.Equal(again, canon) {
			t.Fatalf("canonical form unstable: %x vs %x", canon, again)
		}
	})
}

// FuzzCoalescedRecord covers the wire-v3 coalesced record codec: the
// cleartext header (magic, count, strictly increasing correlation table —
// also the sealed record's extra AD) and the decrypted body (count,
// length-prefixed sub-frames). Both use the canonical-form oracle:
// whatever decodes must reencode byte-identically, so a duplicate or
// shuffled correlation table has no accepted encoding and no sub-frame can
// be accounted twice. Seeds mix well-formed records, truncated sub-frame
// tables, duplicate correlation IDs, and v3-plain↔coalesced confusion —
// plain frames fed to the coalesced parsers and vice versa.
func FuzzCoalescedRecord(f *testing.F) {
	plain := distributed.AppendRequest(nil, distributed.Request{
		Corr: 7, HasCorr: true, Op: "put", Data: []byte("doc")})
	record := make([]byte, 40) // stand-in for sealed bytes behind the header
	hdr1 := append(distributed.AppendCoalHeader(nil, []uint64{7}), record...)
	hdrN := append(distributed.AppendCoalHeader(nil, []uint64{1, 2, 1 << 56}), record...)
	body1 := distributed.AppendCoalBody(nil, [][]byte{plain})
	bodyN := distributed.AppendCoalBody(nil, [][]byte{plain, plain, []byte{0}})
	f.Add(hdr1)
	f.Add(hdrN)
	f.Add(body1)
	f.Add(bodyN)
	f.Add([]byte{})
	f.Add([]byte{0xC3})                    // magic, no count
	f.Add([]byte{0xC3, 0, 0})              // zero count
	f.Add([]byte{0xC3, 0xff, 0xff})        // count beyond MaxCoalesce
	f.Add(hdrN[:11])                       // truncated correlation table
	f.Add(hdrN[:3+24])                     // table complete, record missing
	dup := append(distributed.AppendCoalHeader(nil, []uint64{5, 9}), record...)
	binary.BigEndian.PutUint64(dup[3+8:], 5) // duplicate correlation IDs
	f.Add(dup)
	unsorted := append(distributed.AppendCoalHeader(nil, []uint64{5, 9}), record...)
	binary.BigEndian.PutUint64(unsorted[3:], 10) // 10, 9: out of order
	f.Add(unsorted)
	f.Add(bodyN[:7])                             // truncated sub-frame length
	f.Add(bodyN[:len(bodyN)-2])                  // truncated final sub-frame
	f.Add(append(append([]byte{}, body1...), 0)) // trailing byte
	f.Add([]byte{0, 1, 0, 0, 0, 0})              // zero-length sub-frame
	// Version confusion both ways: a plain v3 frame where a coalesced
	// record belongs, and a coalesced header where a body belongs.
	f.Add(plain)
	f.Add(hdr1[:3+8])
	f.Fuzz(func(t *testing.T, data []byte) {
		if hdr, rest, err := distributed.ReencodeCoalHeader(data); err == nil {
			if !bytes.Equal(hdr, data[:len(hdr)]) {
				t.Fatalf("accepted header not canonical: %x reencoded to %x", data[:len(hdr)], hdr)
			}
			if len(hdr)+len(rest) != len(data) {
				t.Fatalf("header+record do not partition the input: %d+%d != %d", len(hdr), len(rest), len(data))
			}
		}
		canon, err := distributed.ReencodeCoalBody(data)
		if err != nil {
			return
		}
		if !bytes.Equal(canon, data) {
			t.Fatalf("accepted body not canonical: %x reencoded to %x", data, canon)
		}
		again, err := distributed.ReencodeCoalBody(canon)
		if err != nil || !bytes.Equal(again, canon) {
			t.Fatalf("canonical body unstable: %v, %x vs %x", err, canon, again)
		}
	})
}

// FuzzPolicyDecode covers the policy DSL parser: rule sets are loaded
// from operator-written files, so the decoder must never panic, must
// bound everything it accepts (labels, rule counts, token lengths), and
// must canonicalize: whatever decodes must re-encode to text that decodes
// and re-encodes byte-identically (policy.Reencode is the oracle — one
// rule set, exactly one canonical text form).
func FuzzPolicyDecode(f *testing.F) {
	f.Add("taint to-store ids meter-identities\ndeny no-exfil to-net * when meter-identities\nallow rest * *\n")
	f.Add("approve ops to-export put when a,b,c\n")
	f.Add("# comment\n\ntaint ch op x\n")
	f.Add("taint ch op b,a,b\ndeny  r  ch  op  when  z,a\n") // messy spacing, unsorted labels
	f.Add("")
	f.Add("allow")
	f.Add("deny r ch\n")
	f.Add("taint ch op\n")
	f.Add("allow r ch op when\n")
	f.Add("frobnicate r ch op\n")
	f.Add("taint ch op A,B\n")                                  // uppercase labels refused
	f.Add("deny r ch op when " + strings.Repeat("a,", 20) + "a\n") // over MaxLabels
	f.Add("allow " + strings.Repeat("x", 100) + " ch op\n")        // over MaxTokenLen
	f.Add(strings.Repeat("allow r ch op\n", 300))                  // over MaxRules (dup names too)
	f.Add("taint ch op a\x00b\n")
	f.Fuzz(func(t *testing.T, text string) {
		canon, err := policy.Reencode([]byte(text))
		if err != nil {
			return
		}
		again, err := policy.Reencode(canon)
		if err != nil {
			t.Fatalf("re-decode of canonical form failed: %v\n%s", err, canon)
		}
		if !bytes.Equal(again, canon) {
			t.Fatalf("canonical form unstable:\n--- first\n%s--- second\n%s", canon, again)
		}
	})
}

// FuzzScheduleDecode covers the fault-schedule parser: schedules are
// loaded from files and fuzz corpora, so the decoder must never panic and
// must bound everything it allocates. Whatever decodes must re-encode to
// text that decodes to the identical schedule (the codec's roundtrip
// contract, also enforced by simtest.Validate).
func FuzzScheduleDecode(f *testing.F) {
	f.Add(simtest.EncodeSchedule(simtest.DefaultSchedule(3)))
	f.Add("@150ms crash svc-2\n@200ms heal svc-2\n")
	f.Add("@10ms partition lb-svc-1 svc-1\n@5ms delay 7 25 2ms 1\n")
	f.Add("@2ms skew 250ms\n@0s dup svc-1 2\n@1ms tamper\n")
	f.Add("# comment\n\n@5ms crash svc-1")
	f.Add("")
	f.Add("@\x00 crash x")
	f.Add("@99999999999999999ns crash x")
	f.Add("@5ms delay 18446744073709551615 100 24h 1048576")
	f.Add("@5ms dup " + string(bytes.Repeat([]byte{'a'}, 200)) + " 1")
	f.Fuzz(func(t *testing.T, text string) {
		sched, err := simtest.DecodeSchedule(text)
		if err != nil {
			return
		}
		enc := simtest.EncodeSchedule(sched)
		again, err := simtest.DecodeSchedule(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical form failed: %v\n%s", err, enc)
		}
		if enc2 := simtest.EncodeSchedule(again); enc2 != enc {
			t.Fatalf("canonical form unstable:\n--- first\n%s--- second\n%s", enc, enc2)
		}
	})
}

func FuzzVPFSRead(f *testing.F) {
	f.Add([]byte("garbage blob"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, blob []byte) {
		dev := hw.NewBlockDevice("fuzz", 64)
		fs, err := legacy.Format(dev)
		if err != nil {
			t.Fatal(err)
		}
		v, err := vpfs.New(fs, cryptoutil.KeyFromSeed("fuzz"), vpfs.ModeMACOnly)
		if err != nil {
			t.Fatal(err)
		}
		if len(blob) > legacy.MaxFileSize {
			blob = blob[:legacy.MaxFileSize]
		}
		if err := fs.WriteFile("f", blob); err != nil {
			t.Fatal(err)
		}
		// Attacker-written blob must never decrypt successfully.
		if pt, err := v.ReadFile("f"); err == nil {
			t.Fatalf("attacker blob accepted: %q", pt)
		}
	})
}

func FuzzLegacyFSNames(f *testing.F) {
	f.Add("normal-name", []byte("content"))
	f.Add("", []byte{})
	f.Add(string(bytes.Repeat([]byte{0}, 40)), []byte("x"))
	f.Fuzz(func(t *testing.T, name string, content []byte) {
		dev := hw.NewBlockDevice("fuzz", 128)
		fs, err := legacy.Format(dev)
		if err != nil {
			t.Fatal(err)
		}
		if len(content) > legacy.MaxFileSize {
			content = content[:legacy.MaxFileSize]
		}
		if err := fs.WriteFile(name, content); err != nil {
			return // rejected names are fine
		}
		got, err := fs.ReadFile(name)
		if err != nil {
			t.Fatalf("wrote %q but cannot read: %v", name, err)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("round trip mismatch for %q", name)
		}
	})
}

// FuzzJournalDecode covers the fleet black box's export parser and chain
// verifier: an auditor replays journals it fetched from possibly-hostile
// storage, so truncated entries, bit flips, spliced chains, and
// checkpoint/counter mismatches must all yield typed errors — never a
// panic, and never a "verified" verdict on bytes the journal did not
// produce. When Replay does accept an input, re-encoding what it decoded
// must reproduce the input byte-for-byte (the canonical-form oracle).
func FuzzJournalDecode(f *testing.F) {
	signer := cryptoutil.NewSigner("fuzz-journal")
	counter := &journal.MemCounter{}
	clk := time.Unix(1_700_000_000, 0)
	jnl, err := journal.New(journal.Config{
		Signer:          signer,
		Counter:         counter,
		CheckpointEvery: 3,
		Clock:           func() time.Time { clk = clk.Add(time.Millisecond); return clk },
	})
	if err != nil {
		f.Fatal(err)
	}
	jnl.RecordEvent(journal.KindAdmit, "svc/a", "", 0, 0)
	jnl.RecordEvent(journal.KindReplicaUp, "svc/a", "", 1, 2)
	jnl.RecordEvent(journal.KindAdmit, "svc/b", "", 0, 0)
	jnl.RecordEvent(journal.KindQuarantine, "svc/b", "measurement mismatch", 3, 4)
	jnl.RecordEvent(journal.KindDeadline, "anon", "core: deadline exceeded", 5, 6)
	export := jnl.Export()
	pub := signer.Public()

	f.Add(export)
	f.Add(export[:len(export)/2])             // truncated mid-stream
	f.Add(append([]byte(nil), export[5:]...)) // missing magic
	spliced := append([]byte(nil), export...)
	spliced = append(spliced, export[5:]...) // foreign records appended
	f.Add(spliced)
	flipped := append([]byte(nil), export...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)
	f.Add([]byte("LATJ\x01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, trusted := range []uint64{0, 1, 2} {
			audit, err := journal.Replay(data, pub, trusted)
			if err != nil {
				continue
			}
			// Accepted input must be in canonical form: what the auditor
			// decoded re-encodes to the exact bytes it verified.
			re := journal.Reencode(audit.Entries, audit.Checkpoints)
			if !bytes.Equal(re, data) {
				t.Fatalf("accepted non-canonical journal (trusted=%d):\n in: %x\nout: %x", trusted, data, re)
			}
		}
	})
}
