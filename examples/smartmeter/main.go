// Smartmeter: the paper's Figure 3 deployment end to end — a TrustZone
// appliance reporting to an SGX-hosted anonymizer across a hostile
// network — including every attack variant the paper discusses.
//
//	go run ./examples/smartmeter
//	go run ./examples/smartmeter -metrics        # append Prometheus metrics for the genuine run
//	go run ./examples/smartmeter -deadline 10ms  # bound each reading by a call budget
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"lateral/internal/attack"
	"lateral/internal/core"
	"lateral/internal/meter"
	"lateral/internal/netsim"
	"lateral/internal/telemetry"
)

var (
	metricsFlag  = flag.Bool("metrics", false, "dump Prometheus metrics for the genuine deployment")
	deadlineFlag = flag.Duration("deadline", 0, "per-reading call budget (0 = unbounded)")
)

// sendReading ships one reading, bounded by -deadline when set.
func sendReading(d *meter.Deployment, kwh int) error {
	if *deadlineFlag <= 0 {
		return d.SendReading(kwh)
	}
	return d.SendReadingDeadline(kwh, time.Now().Add(*deadlineFlag))
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("--- genuine deployment ---")
	rec := &netsim.Recorder{}
	d, err := meter.Deploy(meter.Options{CustomerID: "customer-4711", WireAdversary: rec})
	if err != nil {
		return err
	}
	var met *telemetry.Metrics
	if *metricsFlag {
		met = telemetry.NewMetrics()
		d.Appliance.SetTracer(met)
		d.Server.SetTracer(met)
		d.Net.SetMonitor(met)
	}
	if err := d.Connect(); err != nil {
		return fmt.Errorf("mutual attestation: %w", err)
	}
	fmt.Println("mutual attestation: meter verified the anonymizer enclave,")
	fmt.Println("                    utility verified the fused meter key")
	for _, kwh := range []int{12, 7, 9} {
		if err := sendReading(d, kwh); err != nil {
			return err
		}
	}
	total, err := d.BillingTotal()
	if err != nil {
		return err
	}
	fmt.Printf("billing total inside the enclave: %d kWh\n", total)

	summary, err := d.ShowBillingOnAndroid()
	if err != nil {
		return err
	}
	fmt.Printf("Android UI shows (password-less): %q\n", summary)

	dump, err := d.DatabaseContents()
	if err != nil {
		return err
	}
	fmt.Printf("operator's database sees only:    %q\n", dump)
	fmt.Printf("eavesdropper saw customer id:     %v\n", rec.Saw([]byte("customer-4711")))
	if met != nil {
		fmt.Println("\n--- telemetry for the genuine deployment ---")
		if err := met.WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}

	fmt.Println("\n--- attack: utility deploys a tampered anonymizer ---")
	d2, err := meter.Deploy(meter.Options{TamperAnonymizer: true})
	if err != nil {
		return err
	}
	if err := d2.Connect(); err != nil {
		fmt.Printf("meter refused to talk to it: %v\n", err)
	} else {
		return fmt.Errorf("tampered anonymizer was accepted")
	}

	fmt.Println("\n--- attack: customer runs a software meter emulation ---")
	d3, err := meter.Deploy(meter.Options{EmulateMeter: true})
	if err != nil {
		return err
	}
	if err := d3.Connect(); err != nil {
		fmt.Printf("utility refused the emulation: %v\n", err)
	} else {
		return fmt.Errorf("meter emulation was accepted")
	}

	fmt.Println("\n--- attack: Android on the appliance is compromised ---")
	d4, err := meter.Deploy(meter.Options{CustomerID: "customer-HIDDEN"})
	if err != nil {
		return err
	}
	adv := attack.New()
	d4.Appliance.SetObserver(adv)
	if err := d4.Appliance.Compromise("android"); err != nil {
		return err
	}
	if _, err := d4.Appliance.Deliver("android", core.Message{Op: "x"}); err != nil {
		fmt.Printf("(compromised android errored: %v)\n", err)
	}
	fmt.Printf("attacker read the meter identity: %v\n", adv.Saw([]byte("customer-HIDDEN")))

	fmt.Println("\n--- attack: the compromised appliance joins a DDoS ---")
	off := meter.Flood(1000, 10, false)
	on := meter.Flood(1000, 10, true)
	fmt.Printf("without gateway: %4d junk packets reached the victim\n", off.DeliveredVictim)
	fmt.Printf("with gateway:    %4d junk packets reached the victim, telemetry capped at %d\n",
		on.DeliveredVictim, on.DeliveredUtility)
	return nil
}
