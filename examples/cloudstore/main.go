// Cloudstore: distributed confidence domains (§III-D). A mail client on a
// laptop keeps its archive in a storage component that runs inside an SGX
// enclave on a rented cloud server — the §II-B scenario where "the data
// center customer needs to trust only the Intel CPU, but not the operating
// system nor any other software outside of his enclave."
//
// The storage component is the SAME code that would run locally; only the
// manifest placement changes. The laptop pins the audited build's
// measurement: a cloud provider silently swapping the binary is refused at
// connection time.
//
//	go run ./examples/cloudstore
package main

import (
	"crypto/ed25519"
	"fmt"
	"log"
	"strings"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/distributed"
	"lateral/internal/kernel"
	"lateral/internal/netsim"
	"lateral/internal/sgx"
)

// vaultComp is the storage service: a tiny key-value vault.
type vaultComp struct {
	docs map[string][]byte
}

func (v *vaultComp) CompName() string    { return "vault" }
func (v *vaultComp) CompVersion() string { return "1.0" }
func (v *vaultComp) Init(*core.Ctx) error {
	v.docs = make(map[string][]byte)
	return nil
}

func (v *vaultComp) Handle(env core.Envelope) (core.Message, error) {
	switch env.Msg.Op {
	case "put":
		kv := strings.SplitN(string(env.Msg.Data), "=", 2)
		if len(kv) != 2 {
			return core.Message{}, core.ErrRefused
		}
		v.docs[kv[0]] = []byte(kv[1])
		return core.Message{Op: "ok"}, nil
	case "get":
		doc, ok := v.docs[string(env.Msg.Data)]
		if !ok {
			return core.Message{}, core.ErrRefused
		}
		return core.Message{Op: "doc", Data: doc}, nil
	default:
		return core.Message{}, core.ErrRefused
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := netsim.New()
	eavesdropper := &netsim.Recorder{}
	net.SetAdversary(eavesdropper)
	intel := cryptoutil.NewSigner("intel")

	// --- cloud side: the vault in an enclave on a rented server ---
	cloudCPU, err := sgx.New(sgx.Config{DeviceSeed: "rented-server", Vendor: intel})
	if err != nil {
		return err
	}
	cloud := core.NewSystem(cloudCPU)
	if err := cloud.Launch(&vaultComp{}, true, 1); err != nil {
		return err
	}
	if err := cloud.InitAll(); err != nil {
		return err
	}
	exporter, err := distributed.NewExporter(distributed.ExportConfig{
		System:    cloud,
		Component: "vault",
		Endpoint:  net.Attach("cloud"),
		Identity:  cryptoutil.NewSigner("cloud-tls"),
		Rand:      cryptoutil.NewPRNG("cloud"),
	})
	if err != nil {
		return err
	}

	// --- laptop side: the stub stands in for the vault ---
	auditedMeasurement := cryptoutil.Hash(core.DomainImage(&vaultComp{}))
	stub, err := distributed.NewStub(distributed.StubConfig{
		RemoteName:     "vault",
		RemoteEndpoint: "cloud",
		Endpoint:       net.Attach("laptop"),
		Rand:           cryptoutil.NewPRNG("laptop"),
		VerifyServer: func(_ ed25519.PublicKey, tr [32]byte, evidence []byte) error {
			q, err := core.DecodeQuote(evidence)
			if err != nil {
				return err
			}
			return core.VerifyQuote(q, tr[:], intel.Public(), auditedMeasurement)
		},
		Pump: exporter.Serve,
	})
	if err != nil {
		return err
	}
	laptop := core.NewSystem(kernel.New(kernel.Config{}))
	if err := laptop.Launch(stub, false, 1); err != nil {
		return err
	}
	if err := laptop.InitAll(); err != nil {
		return err
	}
	if err := stub.Connect(); err != nil {
		return fmt.Errorf("attested connect: %w", err)
	}
	fmt.Println("connected: laptop verified the enclave's quote against the audited build")

	secret := "the merger closes friday"
	if _, err := laptop.Deliver("vault", core.Message{Op: "put", Data: []byte("memo=" + secret)}); err != nil {
		return err
	}
	reply, err := laptop.Deliver("vault", core.Message{Op: "get", Data: []byte("memo")})
	if err != nil {
		return err
	}
	fmt.Printf("round trip through the cloud enclave: %q\n", reply.Data)
	fmt.Printf("cloud operator's wire tap saw the memo: %v\n", eavesdropper.Saw([]byte(secret)))
	return nil
}
