// Quickstart: write one component against the unified isolation interface
// and run it, unmodified, on any of the six substrates.
//
//	go run ./examples/quickstart            # default: microkernel
//	go run ./examples/quickstart -substrate sgx
//	go run ./examples/quickstart -substrate all
package main

import (
	"flag"
	"fmt"
	"log"

	"lateral/internal/core"
	"lateral/internal/experiments"
)

// secretService is a trusted component: it keeps a secret in its isolated
// domain and serves only capability-identified callers.
type secretService struct {
	ctx *core.Ctx
}

func (s *secretService) CompName() string    { return "secret-service" }
func (s *secretService) CompVersion() string { return "1.0" }

func (s *secretService) Init(ctx *core.Ctx) error {
	s.ctx = ctx
	return ctx.StoreAsset("motto", []byte("lateral thinking for trustworthy apps"))
}

func (s *secretService) Handle(env core.Envelope) (core.Message, error) {
	if env.Badge == 0 {
		return core.Message{}, core.ErrRefused // anonymous callers get nothing
	}
	motto, err := s.ctx.LoadAsset("motto")
	if err != nil {
		return core.Message{}, err
	}
	return core.Message{Op: "motto", Data: motto}, nil
}

// app is the untrusted client component.
type app struct {
	ctx *core.Ctx
}

func (a *app) CompName() string         { return "app" }
func (a *app) CompVersion() string      { return "1.0" }
func (a *app) Init(ctx *core.Ctx) error { a.ctx = ctx; return nil }

func (a *app) Handle(env core.Envelope) (core.Message, error) {
	return a.ctx.Call("service", env.Msg)
}

func runOn(name string) error {
	sub, err := experiments.NewSubstrate(name)
	if err != nil {
		return err
	}
	sys := core.NewSystem(sub)
	if err := sys.Launch(&secretService{}, true, 1); err != nil {
		return err
	}
	if err := sys.Launch(&app{}, false, 1); err != nil {
		return err
	}
	if err := sys.Grant(core.ChannelSpec{Name: "service", From: "app", To: "secret-service", Badge: 7}); err != nil {
		return err
	}
	if err := sys.InitAll(); err != nil {
		return err
	}
	reply, err := sys.Deliver("app", core.Message{Op: "get"})
	if err != nil {
		return err
	}
	props := sys.Properties()
	fmt.Printf("[%s] reply: %q\n", name, reply.Data)
	fmt.Printf("[%s] spatial=%v physmem=%v attestation=%v invoke=%dns tcb=%dk\n",
		name, props.SpatialIsolation, props.PhysicalMemoryProtection,
		props.Attestation, props.InvokeCostNs, props.TCBUnits)
	if sub.Anchor() != nil {
		ctx, err := sys.CtxOf("secret-service")
		if err != nil {
			return err
		}
		q, err := ctx.Quote([]byte("quickstart-nonce"))
		if err != nil {
			return err
		}
		fmt.Printf("[%s] attested by %s anchor, measurement %x...\n", name, q.AnchorKind, q.Measurement[:6])
	}
	return nil
}

func main() {
	substrate := flag.String("substrate", "microkernel",
		"monolith|microkernel|trustzone|sgx|sep|tpm-latelaunch|all")
	flag.Parse()
	names := []string{*substrate}
	if *substrate == "all" {
		names = experiments.SubstrateNames()
	}
	for _, n := range names {
		if err := runOn(n); err != nil {
			log.Fatalf("%s: %v", n, err)
		}
	}
}
