// Dualphone: the paper's §II-B Simko3 ("Merkel-Phone") scenario — "a
// smartphone that is based on the L4Re system. The phone offers two
// Android systems side by side on the same phone, allowing the user to
// separate private and business use within one device. This separation is
// accomplished by running two virtual machines, each running its own
// instance of Android."
//
// The demo boots a TrustZone SoC with a normal-world hypervisor, loads a
// private and a business Android as separate VMs plus a secure-world
// keystore, then compromises the private Android with spyware and shows
// what the spyware can — and cannot — reach.
//
//	go run ./examples/dualphone
package main

import (
	"fmt"
	"log"

	"lateral/internal/attack"
	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/trustzone"
)

// persona is one Android VM holding that persona's data.
type persona struct {
	name   string
	secret []byte
	ctx    *core.Ctx
}

func (p *persona) CompName() string    { return p.name }
func (p *persona) CompVersion() string { return "android-9" }

func (p *persona) Init(ctx *core.Ctx) error {
	p.ctx = ctx
	return ctx.StoreAsset("data", p.secret)
}

func (p *persona) Handle(env core.Envelope) (core.Message, error) {
	switch env.Msg.Op {
	case "read-own-data":
		data, err := p.ctx.LoadAsset("data")
		if err != nil {
			return core.Message{}, err
		}
		return core.Message{Op: "data", Data: data}, nil
	default:
		return core.Message{}, core.ErrRefused
	}
}

func (p *persona) HandleCompromised(env core.Envelope) (core.Message, error) {
	for _, ch := range p.ctx.Channels() {
		_, _ = p.ctx.Call(ch, core.Message{Op: "probe"})
	}
	return core.Message{Op: "pwned"}, nil
}

// keystore lives in the secure world.
type keystore struct {
	ctx *core.Ctx
}

func (k *keystore) CompName() string    { return "keystore" }
func (k *keystore) CompVersion() string { return "1.0" }

func (k *keystore) Init(ctx *core.Ctx) error {
	k.ctx = ctx
	return ctx.StoreAsset("master-key", []byte("DEVICE-MASTER-KEY-e77a"))
}

func (k *keystore) Handle(env core.Envelope) (core.Message, error) {
	// Signs on behalf of callers; never discloses the key itself.
	return core.Message{Op: "signature", Data: []byte("sig(" + string(env.Msg.Data) + ")")}, nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	soc, err := trustzone.New(trustzone.Config{
		DeviceSeed: "simko3-unit-1",
		Vendor:     cryptoutil.NewSigner("soc-vendor"),
		Hypervisor: true, // "TrustZone can be combined with virtualization techniques"
	})
	if err != nil {
		return err
	}
	sys := core.NewSystem(soc)
	private := &persona{name: "android-private", secret: []byte("PRIVATE-family-photos")}
	business := &persona{name: "android-business", secret: []byte("BUSINESS-cabinet-minutes")}
	if err := sys.Launch(private, false, 1); err != nil {
		return err
	}
	if err := sys.Launch(business, false, 1); err != nil {
		return err
	}
	if err := sys.Launch(&keystore{}, true, 1); err != nil {
		return err
	}
	// Both personas may ask the keystore to sign (badged channels).
	for i, p := range []string{"android-private", "android-business"} {
		if err := sys.Grant(core.ChannelSpec{Name: "keystore", From: p, To: "keystore", Badge: uint64(i + 1)}); err != nil {
			return err
		}
	}
	if err := sys.InitAll(); err != nil {
		return err
	}

	fmt.Println("--- normal operation ---")
	for _, p := range []string{"android-private", "android-business"} {
		reply, err := sys.Deliver(p, core.Message{Op: "read-own-data"})
		if err != nil {
			return err
		}
		fmt.Printf("%s reads its data: %q\n", p, reply.Data)
	}

	fmt.Println("\n--- the private Android installs spyware ---")
	adv := attack.New()
	sys.SetObserver(adv)
	if err := sys.Compromise("android-private"); err != nil {
		return err
	}
	if _, err := sys.Deliver("android-private", core.Message{Op: "x"}); err != nil {
		fmt.Printf("(spyware trigger: %v)\n", err)
	}
	fmt.Printf("spyware read the private photos:     %v (its own VM — expected)\n",
		adv.Saw([]byte("PRIVATE-family-photos")))
	fmt.Printf("spyware read the business documents: %v (hypervisor wall)\n",
		adv.Saw([]byte("BUSINESS-cabinet-minutes")))
	fmt.Printf("spyware read the device master key:  %v (TrustZone wall)\n",
		adv.Saw([]byte("DEVICE-MASTER-KEY-e77a")))

	// The business persona keeps working next to the compromised one.
	reply, err := sys.Deliver("android-business", core.Message{Op: "read-own-data"})
	if err != nil {
		return err
	}
	fmt.Printf("\nbusiness persona still functional: %q\n", reply.Data)
	return nil
}
