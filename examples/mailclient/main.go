// Mailclient: the paper's §III-C email client example, deployed in both
// architectures of Figure 1 and then attacked through the HTML renderer.
//
//	go run ./examples/mailclient               # run the demo
//	go run ./examples/mailclient -dot          # print the component graph (Graphviz)
//	go run ./examples/mailclient -trace        # append a causal span tree of the fetch flow
//	go run ./examples/mailclient -deadline 5ms # bound every fetch by a call budget
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"lateral/internal/attack"
	"lateral/internal/core"
	"lateral/internal/kernel"
	"lateral/internal/mail"
	"lateral/internal/telemetry"
)

// deadlineFlag bounds every fetch; fetchMail applies it fresh per call.
var deadlineFlag time.Duration

func fetchMail(sys *core.System) (string, error) {
	if deadlineFlag <= 0 {
		return mail.FetchMail(sys)
	}
	return mail.FetchMailDeadline(sys, time.Now().Add(deadlineFlag))
}

func main() {
	dot := flag.Bool("dot", false, "print the horizontal manifest as Graphviz DOT and exit")
	trace := flag.Bool("trace", false, "trace the horizontal fetch-mail flow and print the span tree")
	flag.DurationVar(&deadlineFlag, "deadline", 0, "per-fetch call budget (0 = unbounded)")
	flag.Parse()
	if *dot {
		fmt.Print(mail.HorizontalManifest().DOT())
		return
	}
	if err := run(); err != nil {
		log.Fatal(err)
	}
	if *trace {
		if err := runTraced(); err != nil {
			log.Fatal(err)
		}
	}
}

// runTraced re-runs the horizontal fetch flow with telemetry installed and
// dumps the causal span tree — the operator's view of Figure 1.
func runTraced() error {
	fmt.Println("\n--- traced horizontal fetch-mail flow ---")
	sys, _, err := mail.Build(kernel.New(kernel.Config{}), mail.HorizontalManifest())
	if err != nil {
		return err
	}
	rec := telemetry.NewRecorder(0)
	sys.SetTracer(rec)
	if _, err := fetchMail(sys); err != nil {
		return err
	}
	telemetry.WriteTree(os.Stdout, rec.Trees())
	return nil
}

func run() error {
	// 1. Normal operation works identically in both architectures.
	fmt.Println("--- normal operation ---")
	for _, arch := range []struct {
		name  string
		build attack.BuildFunc
	}{
		{"vertical (one process on a commodity OS)", func() (*core.System, map[string][]byte, error) {
			return mail.Build(core.NewMonolith(0), mail.VerticalManifest())
		}},
		{"horizontal (one domain per component on a microkernel)", func() (*core.System, map[string][]byte, error) {
			return mail.Build(kernel.New(kernel.Config{}), mail.HorizontalManifest())
		}},
	} {
		sys, _, err := arch.build()
		if err != nil {
			return err
		}
		rendered, err := fetchMail(sys)
		if err != nil {
			return err
		}
		fmt.Printf("%s\n  fetched: %q\n", arch.name, rendered)
	}

	// 2. A malicious HTML mail exploits the renderer.
	fmt.Println("\n--- renderer exploited by malicious mail ---")
	vertBuild := func() (*core.System, map[string][]byte, error) {
		return mail.Build(core.NewMonolith(0), mail.VerticalManifest())
	}
	horizBuild := func() (*core.System, map[string][]byte, error) {
		return mail.Build(kernel.New(kernel.Config{}), mail.HorizontalManifest())
	}
	vr, err := attack.MeasureContainment(vertBuild, "render")
	if err != nil {
		return err
	}
	hr, err := attack.MeasureContainment(horizBuild, "render")
	if err != nil {
		return err
	}
	fmt.Printf("vertical:   %d/%d assets leaked: %v\n", len(vr.Leaked), vr.AssetsTotal, vr.Leaked)
	fmt.Printf("horizontal: %d/%d assets leaked: %v\n", len(hr.Leaked), hr.AssetsTotal, hr.Leaked)

	// 3. The manifest analyzer reports the attack surface up front.
	fmt.Println("\n--- static analysis of the horizontal manifest ---")
	for _, f := range mail.HorizontalManifest().Analyze() {
		fmt.Println(" ", f)
	}
	fmt.Println("\nThe paper's Fig. 1 claim, reproduced: the same exploit that owns the")
	fmt.Println("entire vertical mailbox is contained to an assetless renderer domain.")
	return nil
}
