package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lateral/internal/core"
	"lateral/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestMetricsSummaryGolden pins the exact bytes of the `lateralctl
// metrics summary` table. The scenario latencies in main.go are
// wall-clock, so the test feeds the metrics collector a fixed synthetic
// workload instead — including a timeout, a cancellation, and a shed, so
// the tmout/cancel/shed columns render non-zero. Regenerate after an
// intentional format change with:
//
//	go test ./cmd/lateralctl -run Golden -update
func TestMetricsSummaryGolden(t *testing.T) {
	var buf bytes.Buffer
	goldenMetrics().WriteSummary(&buf)
	compareGolden(t, "metrics_summary.golden", buf.Bytes())
}

// TestMetricsPrometheusGolden pins the full Prometheus exposition for the
// same synthetic workload — every family, including the lateral_stub_*
// pipelining counters and the lateral_journal_* black-box counters.
func TestMetricsPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenMetrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{"lateral_stub_calls_total", "lateral_stub_coalesce_records_total",
		"lateral_stub_coalesce_saved_total", "lateral_stub_coalesce_window", "lateral_journal_events_total",
		"lateral_journal_checkpoint_counter", "lateral_journal_flight_dumps_total",
		"lateral_policy_decisions_total", "lateral_policy_rule_hits_total",
		"lateral_policy_grants_total", "lateral_shard_epoch", "lateral_shard_count",
		"lateral_shard_rebalances_total", "lateral_shard_readings_routed_total",
		"lateral_shard_batches_total", "lateral_shard_quota_denies_total"} {
		if !bytes.Contains(buf.Bytes(), []byte(family)) {
			t.Errorf("exposition missing family %s", family)
		}
	}
	compareGolden(t, "metrics_prom.golden", buf.Bytes())
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from golden file (run with -update if intentional):\n--- got\n%s--- want\n%s", got, want)
	}
}

// goldenMetrics builds the fixed synthetic workload both golden tests pin.
func goldenMetrics() *telemetry.Metrics {
	m := telemetry.NewMetrics()
	at := time.Unix(1000, 0)

	call := func(id uint64, from, channel, to, op string, elapsed time.Duration, err error) {
		info := core.SpanInfo{Kind: core.SpanCall, Channel: channel, From: from, To: to, Domain: to, Op: op}
		m.SpanEnd(core.Span{Trace: 1, ID: id}, info, at, elapsed, err)
	}
	handle := func(id uint64, comp string, trusted bool, elapsed time.Duration, err error) {
		info := core.SpanInfo{Kind: core.SpanHandle, To: comp, Domain: comp, Trusted: trusted}
		m.SpanEnd(core.Span{Trace: 1, ID: id}, info, at, elapsed, err)
	}

	// A steady channel: five clean calls with fixed latencies.
	for i, d := range []time.Duration{100, 120, 140, 160, 400} {
		call(uint64(i+1), "gateway", "to-store", "store", "put", d*time.Microsecond, nil)
		handle(uint64(i+100), "store", true, d*time.Microsecond/2, nil)
	}
	// A struggling channel: one of each budget failure plus a plain error.
	call(11, "gateway", "to-meter", "meter", "read", 5*time.Millisecond, core.ErrDeadline)
	call(12, "gateway", "to-meter", "meter", "read", time.Millisecond, core.ErrCanceled)
	call(13, "gateway", "to-meter", "meter", "read", 50*time.Microsecond, core.ErrOverloaded)
	call(14, "gateway", "to-meter", "meter", "read", 80*time.Microsecond, core.ErrRefused)
	call(15, "gateway", "to-meter", "meter", "read", 90*time.Microsecond, nil)
	handle(111, "meter", false, 40*time.Microsecond, core.ErrRefused)

	// Asset traffic for the domain table's stores/loads/bytes columns.
	m.SpanEnd(core.Span{Trace: 1, ID: 200},
		core.SpanInfo{Kind: core.SpanAssetStore, To: "store", Domain: "store", Trusted: true, Op: "ledger", Bytes: 512},
		at, 30*time.Microsecond, nil)
	m.SpanEnd(core.Span{Trace: 1, ID: 201},
		core.SpanInfo{Kind: core.SpanAssetLoad, To: "store", Domain: "store", Trusted: true, Op: "ledger", Bytes: 512},
		at, 20*time.Microsecond, nil)

	// Fleet state for the replica table: one healthy and loaded, one
	// quarantined after a failover.
	m.ReplicaState("svc", "svc-1", true, false)
	m.ReplicaInflight("svc", "svc-1", 2)
	m.ReplicaCall("svc", "svc-1", false)
	m.ReplicaCall("svc", "svc-1", false)
	m.ReplicaRetry("svc", "svc-1")
	m.ReplicaState("svc", "svc-2", false, true)
	m.ReplicaCall("svc", "svc-2", true)
	m.ReplicaFailover("svc", "svc-2")

	// Stub pipelining for the stub table: three calls ramping to depth 3,
	// all drained, plus one orphaned reply.
	for depth := 1; depth <= 3; depth++ {
		m.StubInflight("store", 1)
		m.StubCall("store", depth)
	}
	m.StubInflight("store", -3)
	m.StubOrphan("store")

	// Frame coalescing for the coalesce table: two shared records — one
	// pairing two racing calls, one packing four — after the adaptive
	// controller grew its window to 8. aead-saved renders as 4: six
	// sub-frames sealed with two AEAD passes.
	m.StubCoalesce("store", 2)
	m.StubCoalesce("store", 4)
	m.StubCoalesceWindow("store", 8)

	// Fleet black box for the journal table: a short honest run — admit,
	// up, one quarantine with its flight dump — closed by two checkpoints.
	for _, kind := range []string{"admit", "replica-up", "quarantine", "deadline"} {
		m.JournalEvent("svc", kind)
	}
	m.JournalEvent("svc", "deadline")
	m.JournalCheckpoint("svc", 3, 1)
	m.JournalCheckpoint("svc", 5, 2)
	m.JournalDropped("svc")
	m.JournalFlightDump("svc", "quarantine")
	m.JournalFlightDump("svc", "deadline-storm")

	// Shard fabric for the fabric table: three cells joined (the third a
	// rebalance mid-traffic), single and batched readings routed, and one
	// tenant refused at its quota.
	m.ShardMembership("cells", 1, 1)
	m.ShardMembership("cells", 2, 2)
	m.ShardRoute("cells", "cell-1", 1)
	m.ShardRoute("cells", "cell-2", 1)
	m.ShardMembership("cells", 3, 3)
	m.ShardRoute("cells", "cell-3", 4)
	m.ShardBatch("cells", "cell-3", 4)
	m.ShardQuotaDeny("cells", "tenant-9")

	// Policy engine for the policy table: a mostly-allowed workload with
	// one mosaic deny and an approval grant that is minted, reused, and
	// later found expired.
	for i := 0; i < 4; i++ {
		m.PolicyDecision("meter", "allow", "rest")
	}
	m.PolicyDecision("meter", "allow", "(default)")
	m.PolicyDecision("meter", "deny", "no-exfil")
	m.PolicyDecision("meter", "approve", "ops-export")
	m.PolicyDecision("meter", "approve", "ops-export")
	m.PolicyGrant("meter", "ops-export", "mint")
	m.PolicyGrant("meter", "ops-export", "reuse")
	m.PolicyGrant("meter", "ops-export", "expire")

	return m
}
