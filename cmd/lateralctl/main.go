// lateralctl inspects the trusted-component ecosystem: substrate property
// matrices, manifest analysis, component graphs, and TCB reports.
//
//	go run ./cmd/lateralctl substrates        # §II property matrix
//	go run ./cmd/lateralctl analyze           # static analysis of the mail manifests
//	go run ./cmd/lateralctl dot [vertical]    # Graphviz graph of a mail manifest
//	go run ./cmd/lateralctl tcb               # per-component TCB report
//	go run ./cmd/lateralctl prune             # POLA pruning of the broad mail manifest
//	go run ./cmd/lateralctl partition         # auto-partition an annotated monolith
//	go run ./cmd/lateralctl trace [mail|smartmeter|distributed] [json|flame]
//	                                          # causal span tree of a scenario workload
//	go run ./cmd/lateralctl metrics [summary] # Prometheus text (or table) for all scenarios
package main

import (
	"fmt"
	"os"
	"sort"

	"lateral/internal/core"
	"lateral/internal/experiments"
	"lateral/internal/kernel"
	"lateral/internal/mail"
	"lateral/internal/manifest"
	"lateral/internal/meter"
	"lateral/internal/metrics"
	"lateral/internal/netsim"
	"lateral/internal/partition"
	"lateral/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: lateralctl substrates|analyze|dot|tcb|prune|partition|trace|metrics")
	}
	switch args[0] {
	case "substrates":
		table, err := experiments.E2Portability()
		if err != nil {
			return err
		}
		fmt.Println(table)
		return nil
	case "analyze":
		for _, m := range []struct {
			name string
			m    *manifest.Manifest
		}{
			{"horizontal (POLA)", mail.HorizontalManifest()},
			{"horizontal (broad mesh)", mail.BroadManifest()},
			{"vertical (colocated)", mail.VerticalManifest()},
		} {
			fmt.Printf("--- %s ---\n", m.name)
			findings := m.m.Analyze()
			if len(findings) == 0 {
				fmt.Println("  no findings")
			}
			for _, f := range findings {
				fmt.Println(" ", f)
			}
			fmt.Println()
		}
		return nil
	case "dot":
		m := mail.HorizontalManifest()
		if len(args) > 1 && args[1] == "vertical" {
			m = mail.VerticalManifest()
		}
		fmt.Print(m.DOT())
		return nil
	case "tcb":
		units := make(map[string]int, len(metrics.DefaultUnits))
		for k, v := range metrics.DefaultUnits {
			units[k] = v
		}
		units["abook"] = metrics.DefaultUnits["addressbook"]
		sys, _, err := mail.Build(kernel.New(kernel.Config{}), mail.HorizontalManifest())
		if err != nil {
			return err
		}
		reports, err := metrics.TCBReport(sys, units)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %-12s %10s %8s %10s %8s\n", "component", "domain", "substrate", "own", "colocated", "total")
		for _, r := range reports {
			fmt.Printf("%-12s %-12s %10d %8d %10d %8d\n",
				r.Component, r.Domain, r.SubstrateUnits, r.OwnUnits, r.ColocatedUnits, r.Total())
		}
		s := metrics.Summarize(reports)
		fmt.Printf("\n%d components, TCB min/mean/max = %d / %.0f / %d kLoC units\n",
			s.Components, s.MinTCB, s.MeanTCB, s.MaxTCB)
		return nil
	case "prune":
		// Deploy the sloppy full-mesh manifest, run the representative
		// workload, then let the tool report every grant the workload
		// never needed — the §IV road from "it works" to POLA.
		m := mail.BroadManifest()
		sys, _, err := mail.Build(kernel.New(kernel.Config{}), m)
		if err != nil {
			return err
		}
		if _, err := mail.FetchMail(sys); err != nil {
			return err
		}
		if _, err := mail.Compose(sys, "draft"); err != nil {
			return err
		}
		sugg := m.SuggestPruning(sys.ChannelUsage())
		fmt.Printf("broad manifest: %d grants, workload used %d, pruning %d:\n",
			len(m.Channels), len(m.Channels)-len(sugg), len(sugg))
		for _, s := range sugg {
			fmt.Println(" ", s)
		}
		pruned := m.Pruned(sugg)
		fmt.Printf("\npruned manifest has %d channels (POLA manifest has %d)\n",
			len(pruned.Channels), len(mail.HorizontalManifest().Channels))
		return nil
	case "partition":
		prog := &partition.Program{Functions: []partition.Function{
			{Name: "ui", Calls: []string{"fetch", "suggest", "lookup"}},
			{Name: "fetch", Exposed: true, Calls: []string{"tls_recv", "parse"}},
			{Name: "parse", Exposed: true, Calls: []string{"render_html"}},
			{Name: "render_html", Exposed: true, Calls: []string{"archive_save"}},
			{Name: "tls_recv", Assets: []string{"tls-key"}},
			{Name: "tls_send", Assets: []string{"tls-key", "password"}},
			{Name: "login", Assets: []string{"password"}, Calls: []string{"tls_send"}},
			{Name: "suggest", Assets: []string{"dictionary"}},
			{Name: "lookup", Assets: []string{"contacts"}},
			{Name: "archive_save", Assets: []string{"archive"}},
			{Name: "archive_load", Assets: []string{"archive"}},
		}}
		res, err := partition.Partition(prog)
		if err != nil {
			return err
		}
		st := res.Summarize()
		fmt.Printf("%d functions → %d domains, %d channels (%d exposed functions evicted):\n\n",
			st.Functions, st.Domains, st.Channels, st.Exposed)
		byDomain := map[string][]string{}
		for fn, dom := range res.DomainOf {
			byDomain[dom] = append(byDomain[dom], fn)
		}
		doms := make([]string, 0, len(byDomain))
		for d := range byDomain {
			doms = append(doms, d)
		}
		sort.Strings(doms)
		for _, d := range doms {
			sort.Strings(byDomain[d])
			fmt.Printf("  domain %-14s %v  assets=%v\n", d, byDomain[d], res.Manifest.AssetsInDomain(byDomain[d][0]))
		}
		fmt.Println("\nderived channels:")
		for _, ch := range res.Manifest.Channels {
			fmt.Printf("  %s → %s (badge %d)\n", ch.From, ch.To, ch.Badge)
		}
		return nil
	case "trace":
		scenario := "mail"
		format := "tree"
		for _, a := range args[1:] {
			switch a {
			case "mail", "smartmeter", "distributed":
				scenario = a
			case "json", "flame", "tree":
				format = a
			default:
				return fmt.Errorf("trace: unknown argument %q", a)
			}
		}
		rec := telemetry.NewRecorder(0)
		if err := runScenario(scenario, rec, nil); err != nil {
			return err
		}
		roots := rec.Trees()
		switch format {
		case "json":
			return telemetry.WriteJSON(os.Stdout, roots)
		case "flame":
			telemetry.WriteFlame(os.Stdout, roots)
		default:
			telemetry.WriteTree(os.Stdout, roots)
		}
		if n := rec.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "warning: %d spans dropped (recorder full)\n", n)
		}
		return nil
	case "metrics":
		met := telemetry.NewMetrics()
		for _, sc := range []string{"mail", "smartmeter", "distributed"} {
			if err := runScenario(sc, met, met); err != nil {
				return err
			}
		}
		if len(args) > 1 && args[1] == "summary" {
			met.WriteSummary(os.Stdout)
			return nil
		}
		return met.WritePrometheus(os.Stdout)
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// runScenario drives one instrumented workload: every involved system gets
// the tracer, and (when mon is non-nil) the simulated network reports its
// traffic too.
func runScenario(scenario string, tr core.Tracer, mon netsim.Monitor) error {
	switch scenario {
	case "mail":
		sys, _, err := mail.Build(kernel.New(kernel.Config{}), mail.HorizontalManifest())
		if err != nil {
			return err
		}
		sys.SetTracer(tr)
		if _, err := mail.FetchMail(sys); err != nil {
			return err
		}
		_, err = mail.Compose(sys, "status report draft")
		return err
	case "smartmeter":
		d, err := meter.Deploy(meter.Options{})
		if err != nil {
			return err
		}
		d.Appliance.SetTracer(tr)
		d.Server.SetTracer(tr)
		if mon != nil {
			d.Net.SetMonitor(mon)
		}
		if err := d.Connect(); err != nil {
			return err
		}
		for _, kwh := range []int{3, 5, 2} {
			if err := d.SendReading(kwh); err != nil {
				return err
			}
		}
		_, err = d.ShowBillingOnAndroid()
		return err
	case "distributed":
		demo, err := experiments.BuildDistributedDemo()
		if err != nil {
			return err
		}
		demo.Laptop.SetTracer(tr)
		demo.Cloud.SetTracer(tr)
		if mon != nil {
			demo.Net.SetMonitor(mon)
		}
		if err := demo.Stub.Connect(); err != nil {
			return err
		}
		if _, err := demo.Laptop.Deliver("client", core.Message{Op: "put", Data: []byte("traced-doc")}); err != nil {
			return err
		}
		_, err = demo.Laptop.Deliver("client", core.Message{Op: "get"})
		return err
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}
}
