// lateralctl inspects the trusted-component ecosystem: substrate property
// matrices, manifest analysis, component graphs, and TCB reports.
//
//	go run ./cmd/lateralctl substrates        # §II property matrix
//	go run ./cmd/lateralctl analyze           # static analysis of the mail manifests
//	go run ./cmd/lateralctl dot [vertical]    # Graphviz graph of a mail manifest
//	go run ./cmd/lateralctl tcb               # per-component TCB report
//	go run ./cmd/lateralctl prune             # POLA pruning of the broad mail manifest
//	go run ./cmd/lateralctl partition         # auto-partition an annotated monolith
//	go run ./cmd/lateralctl trace [mail|smartmeter|distributed|cluster] [json|flame]
//	                                          # causal span tree of a scenario workload
//	go run ./cmd/lateralctl metrics [summary] # Prometheus text (or table) for all scenarios,
//	                                          # including per-channel timeout/cancel/overload counters
//	go run ./cmd/lateralctl cluster [-deadline=50ms]
//	                                          # attested replica fleet demo (crash + tampered build);
//	                                          # -deadline bounds every reading by a call budget
package main

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"lateral/internal/cluster"
	"lateral/internal/core"
	"lateral/internal/experiments"
	"lateral/internal/kernel"
	"lateral/internal/mail"
	"lateral/internal/manifest"
	"lateral/internal/meter"
	"lateral/internal/metrics"
	"lateral/internal/netsim"
	"lateral/internal/partition"
	"lateral/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: lateralctl substrates|analyze|dot|tcb|prune|partition|trace|metrics|cluster")
	}
	switch args[0] {
	case "substrates":
		table, err := experiments.E2Portability()
		if err != nil {
			return err
		}
		fmt.Println(table)
		return nil
	case "analyze":
		for _, m := range []struct {
			name string
			m    *manifest.Manifest
		}{
			{"horizontal (POLA)", mail.HorizontalManifest()},
			{"horizontal (broad mesh)", mail.BroadManifest()},
			{"vertical (colocated)", mail.VerticalManifest()},
		} {
			fmt.Printf("--- %s ---\n", m.name)
			findings := m.m.Analyze()
			if len(findings) == 0 {
				fmt.Println("  no findings")
			}
			for _, f := range findings {
				fmt.Println(" ", f)
			}
			fmt.Println()
		}
		return nil
	case "dot":
		m := mail.HorizontalManifest()
		if len(args) > 1 && args[1] == "vertical" {
			m = mail.VerticalManifest()
		}
		fmt.Print(m.DOT())
		return nil
	case "tcb":
		units := make(map[string]int, len(metrics.DefaultUnits))
		for k, v := range metrics.DefaultUnits {
			units[k] = v
		}
		units["abook"] = metrics.DefaultUnits["addressbook"]
		sys, _, err := mail.Build(kernel.New(kernel.Config{}), mail.HorizontalManifest())
		if err != nil {
			return err
		}
		reports, err := metrics.TCBReport(sys, units)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %-12s %10s %8s %10s %8s\n", "component", "domain", "substrate", "own", "colocated", "total")
		for _, r := range reports {
			fmt.Printf("%-12s %-12s %10d %8d %10d %8d\n",
				r.Component, r.Domain, r.SubstrateUnits, r.OwnUnits, r.ColocatedUnits, r.Total())
		}
		s := metrics.Summarize(reports)
		fmt.Printf("\n%d components, TCB min/mean/max = %d / %.0f / %d kLoC units\n",
			s.Components, s.MinTCB, s.MeanTCB, s.MaxTCB)
		return nil
	case "prune":
		// Deploy the sloppy full-mesh manifest, run the representative
		// workload, then let the tool report every grant the workload
		// never needed — the §IV road from "it works" to POLA.
		m := mail.BroadManifest()
		sys, _, err := mail.Build(kernel.New(kernel.Config{}), m)
		if err != nil {
			return err
		}
		if _, err := mail.FetchMail(sys); err != nil {
			return err
		}
		if _, err := mail.Compose(sys, "draft"); err != nil {
			return err
		}
		sugg := m.SuggestPruning(sys.ChannelUsage())
		fmt.Printf("broad manifest: %d grants, workload used %d, pruning %d:\n",
			len(m.Channels), len(m.Channels)-len(sugg), len(sugg))
		for _, s := range sugg {
			fmt.Println(" ", s)
		}
		pruned := m.Pruned(sugg)
		fmt.Printf("\npruned manifest has %d channels (POLA manifest has %d)\n",
			len(pruned.Channels), len(mail.HorizontalManifest().Channels))
		return nil
	case "partition":
		prog := &partition.Program{Functions: []partition.Function{
			{Name: "ui", Calls: []string{"fetch", "suggest", "lookup"}},
			{Name: "fetch", Exposed: true, Calls: []string{"tls_recv", "parse"}},
			{Name: "parse", Exposed: true, Calls: []string{"render_html"}},
			{Name: "render_html", Exposed: true, Calls: []string{"archive_save"}},
			{Name: "tls_recv", Assets: []string{"tls-key"}},
			{Name: "tls_send", Assets: []string{"tls-key", "password"}},
			{Name: "login", Assets: []string{"password"}, Calls: []string{"tls_send"}},
			{Name: "suggest", Assets: []string{"dictionary"}},
			{Name: "lookup", Assets: []string{"contacts"}},
			{Name: "archive_save", Assets: []string{"archive"}},
			{Name: "archive_load", Assets: []string{"archive"}},
		}}
		res, err := partition.Partition(prog)
		if err != nil {
			return err
		}
		st := res.Summarize()
		fmt.Printf("%d functions → %d domains, %d channels (%d exposed functions evicted):\n\n",
			st.Functions, st.Domains, st.Channels, st.Exposed)
		byDomain := map[string][]string{}
		for fn, dom := range res.DomainOf {
			byDomain[dom] = append(byDomain[dom], fn)
		}
		doms := make([]string, 0, len(byDomain))
		for d := range byDomain {
			doms = append(doms, d)
		}
		sort.Strings(doms)
		for _, d := range doms {
			sort.Strings(byDomain[d])
			fmt.Printf("  domain %-14s %v  assets=%v\n", d, byDomain[d], res.Manifest.AssetsInDomain(byDomain[d][0]))
		}
		fmt.Println("\nderived channels:")
		for _, ch := range res.Manifest.Channels {
			fmt.Printf("  %s → %s (badge %d)\n", ch.From, ch.To, ch.Badge)
		}
		return nil
	case "trace":
		scenario := "mail"
		format := "tree"
		for _, a := range args[1:] {
			switch a {
			case "mail", "smartmeter", "distributed", "cluster":
				scenario = a
			case "json", "flame", "tree":
				format = a
			default:
				return fmt.Errorf("trace: unknown argument %q", a)
			}
		}
		rec := telemetry.NewRecorder(0)
		if err := runScenario(scenario, rec, nil); err != nil {
			return err
		}
		roots := rec.Trees()
		switch format {
		case "json":
			return telemetry.WriteJSON(os.Stdout, roots)
		case "flame":
			telemetry.WriteFlame(os.Stdout, roots)
		default:
			telemetry.WriteTree(os.Stdout, roots)
		}
		if n := rec.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "warning: %d spans dropped (recorder full)\n", n)
		}
		return nil
	case "metrics":
		met := telemetry.NewMetrics()
		for _, sc := range []string{"mail", "smartmeter", "distributed", "cluster"} {
			if err := runScenario(sc, met, met); err != nil {
				return err
			}
		}
		if len(args) > 1 && args[1] == "summary" {
			met.WriteSummary(os.Stdout)
			return nil
		}
		return met.WritePrometheus(os.Stdout)
	case "cluster":
		// The E19 deployment, narrated: an attested anonymizer fleet that
		// loses one replica mid-run (and gets it back after re-attestation)
		// while a tampered build never makes it past admission. With
		// -deadline, every reading carries a call budget: sends attempted
		// into the partition window fail at the budget instead of hanging.
		var budget time.Duration
		for _, a := range args[1:] {
			v, ok := strings.CutPrefix(a, "-deadline=")
			if !ok {
				return fmt.Errorf("cluster: unknown argument %q", a)
			}
			d, err := time.ParseDuration(v)
			if err != nil {
				return fmt.Errorf("cluster: bad -deadline: %v", err)
			}
			budget = d
		}
		send := func(demo *experiments.FleetDemo, meter string, kwh int) error {
			if budget <= 0 {
				return demo.Send(meter, kwh)
			}
			return demo.SendDeadline(meter, kwh, time.Now().Add(budget))
		}
		met := telemetry.NewMetrics()
		demo, err := experiments.BuildFleetDemo(5, 5, met)
		if err != nil {
			return err
		}
		fmt.Printf("deployed 5 anonymizer replicas: %d healthy, %d quarantined (tampered build refused at admission: %v)\n",
			demo.Pool.Healthy(), demo.Pool.Quarantined(), demo.TamperedAdmitErr != nil)
		const meters, rounds = 120, 2
		accepted, i := 0, 0
		for r := 0; r < rounds; r++ {
			for m := 0; m < meters; m++ {
				switch i {
				case 80:
					fmt.Println("... crashing anon-2 mid-run (partition)")
					demo.Part.Isolate("anon-2")
				case 160:
					fmt.Println("... anon-2 restarts: health check re-attests and re-admits it")
					demo.Part.Heal("anon-2")
					demo.Pool.CheckNow()
				}
				if err := send(demo, fmt.Sprintf("meter-%03d", m), 1+m%9); err == nil {
					accepted++
				}
				i++
			}
		}
		fmt.Printf("%d/%d readings accepted; fleet processed %d (makespan %.2f ms of modeled enclave time)\n\n",
			accepted, meters*rounds, demo.ProcessedTotal(), float64(demo.MakespanNs())/1e6)
		fmt.Printf("%-8s %-12s %-16s %7s %6s %8s %10s %8s\n",
			"replica", "state", "wire", "calls", "errs", "retries", "failovers", "orphans")
		for _, ri := range demo.Pool.Replicas() {
			fmt.Printf("%-8s %-12s %-16s %7d %6d %8d %10d %8d\n",
				ri.Name, ri.State, ri.Version, ri.Calls, ri.Errors, ri.Retries, ri.Failovers, ri.Stub.Orphans)
		}
		fmt.Println()
		met.WriteSummary(os.Stdout)
		return nil
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// runScenario drives one instrumented workload: every involved system gets
// the tracer, and (when mon is non-nil) the simulated network reports its
// traffic too.
func runScenario(scenario string, tr core.Tracer, mon netsim.Monitor) error {
	switch scenario {
	case "mail":
		sys, _, err := mail.Build(kernel.New(kernel.Config{}), mail.HorizontalManifest())
		if err != nil {
			return err
		}
		sys.SetTracer(tr)
		if _, err := mail.FetchMail(sys); err != nil {
			return err
		}
		_, err = mail.Compose(sys, "status report draft")
		return err
	case "smartmeter":
		d, err := meter.Deploy(meter.Options{})
		if err != nil {
			return err
		}
		d.Appliance.SetTracer(tr)
		d.Server.SetTracer(tr)
		if mon != nil {
			d.Net.SetMonitor(mon)
		}
		if err := d.Connect(); err != nil {
			return err
		}
		for _, kwh := range []int{3, 5, 2} {
			if err := d.SendReading(kwh); err != nil {
				return err
			}
		}
		_, err = d.ShowBillingOnAndroid()
		return err
	case "distributed":
		demo, err := experiments.BuildDistributedDemo()
		if err != nil {
			return err
		}
		demo.Laptop.SetTracer(tr)
		demo.Cloud.SetTracer(tr)
		if mon != nil {
			demo.Net.SetMonitor(mon)
		}
		if err := demo.Stub.Connect(); err != nil {
			return err
		}
		if _, err := demo.Laptop.Deliver("client", core.Message{Op: "put", Data: []byte("traced-doc")}); err != nil {
			return err
		}
		_, err = demo.Laptop.Deliver("client", core.Message{Op: "get"})
		return err
	case "cluster":
		var cm cluster.Monitor
		if m, ok := tr.(cluster.Monitor); ok {
			cm = m
		}
		demo, err := experiments.BuildFleetDemo(3, 0, cm)
		if err != nil {
			return err
		}
		demo.SetTracer(tr)
		if mon != nil {
			demo.Net.SetMonitor(mon)
		}
		for i := 0; i < 9; i++ {
			if i == 4 {
				demo.Part.Isolate("anon-3")
			}
			if err := demo.Send(fmt.Sprintf("meter-%02d", i%3), 2+i%5); err != nil {
				return err
			}
		}
		demo.Part.Heal("anon-3")
		demo.Pool.CheckNow()
		return nil
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}
}
