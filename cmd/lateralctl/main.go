// lateralctl inspects the trusted-component ecosystem: substrate property
// matrices, manifest analysis, component graphs, and TCB reports.
//
//	go run ./cmd/lateralctl substrates        # §II property matrix
//	go run ./cmd/lateralctl analyze           # static analysis of the mail manifests
//	go run ./cmd/lateralctl dot [vertical]    # Graphviz graph of a mail manifest
//	go run ./cmd/lateralctl tcb               # per-component TCB report
//	go run ./cmd/lateralctl prune             # POLA pruning of the broad mail manifest
//	go run ./cmd/lateralctl partition         # auto-partition an annotated monolith
//	go run ./cmd/lateralctl trace [mail|smartmeter|distributed|cluster] [json|flame]
//	                                          # causal span tree of a scenario workload
//	go run ./cmd/lateralctl metrics [summary] # Prometheus text (or table) for all scenarios,
//	                                          # including per-channel timeout/cancel/overload counters
//	go run ./cmd/lateralctl cluster [-deadline=50ms]
//	                                          # attested replica fleet demo (crash + tampered build),
//	                                          # then the same pattern sharded: a consistent-hash fabric
//	                                          # with batched frames and per-tenant quotas;
//	                                          # -deadline bounds every reading by a call budget
//	go run ./cmd/lateralctl events            # fleet black box: hash-chained journal of a chaos run
//	go run ./cmd/lateralctl audit             # auditor replay of that journal: re-derive trust state,
//	                                          # then prove tamper/rollback detection (exit 1 on failure)
//	go run ./cmd/lateralctl policy            # chain-aware policy demo: mosaic exfiltration denied,
//	                                          # approval grants decaying on TTL, denies journaled
package main

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"lateral/internal/cluster"
	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/distributed"
	"lateral/internal/experiments"
	"lateral/internal/journal"
	"lateral/internal/kernel"
	"lateral/internal/mail"
	"lateral/internal/manifest"
	"lateral/internal/meter"
	"lateral/internal/metrics"
	"lateral/internal/netsim"
	"lateral/internal/partition"
	"lateral/internal/policy"
	"lateral/internal/shard"
	"lateral/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: lateralctl substrates|analyze|dot|tcb|prune|partition|trace|metrics|cluster|events|audit|policy")
	}
	switch args[0] {
	case "substrates":
		table, err := experiments.E2Portability()
		if err != nil {
			return err
		}
		fmt.Println(table)
		return nil
	case "analyze":
		for _, m := range []struct {
			name string
			m    *manifest.Manifest
		}{
			{"horizontal (POLA)", mail.HorizontalManifest()},
			{"horizontal (broad mesh)", mail.BroadManifest()},
			{"vertical (colocated)", mail.VerticalManifest()},
		} {
			fmt.Printf("--- %s ---\n", m.name)
			findings := m.m.Analyze()
			if len(findings) == 0 {
				fmt.Println("  no findings")
			}
			for _, f := range findings {
				fmt.Println(" ", f)
			}
			fmt.Println()
		}
		return nil
	case "dot":
		m := mail.HorizontalManifest()
		if len(args) > 1 && args[1] == "vertical" {
			m = mail.VerticalManifest()
		}
		fmt.Print(m.DOT())
		return nil
	case "tcb":
		units := make(map[string]int, len(metrics.DefaultUnits))
		for k, v := range metrics.DefaultUnits {
			units[k] = v
		}
		units["abook"] = metrics.DefaultUnits["addressbook"]
		sys, _, err := mail.Build(kernel.New(kernel.Config{}), mail.HorizontalManifest())
		if err != nil {
			return err
		}
		reports, err := metrics.TCBReport(sys, units)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %-12s %10s %8s %10s %8s\n", "component", "domain", "substrate", "own", "colocated", "total")
		for _, r := range reports {
			fmt.Printf("%-12s %-12s %10d %8d %10d %8d\n",
				r.Component, r.Domain, r.SubstrateUnits, r.OwnUnits, r.ColocatedUnits, r.Total())
		}
		s := metrics.Summarize(reports)
		fmt.Printf("\n%d components, TCB min/mean/max = %d / %.0f / %d kLoC units\n",
			s.Components, s.MinTCB, s.MeanTCB, s.MaxTCB)
		return nil
	case "prune":
		// Deploy the sloppy full-mesh manifest, run the representative
		// workload, then let the tool report every grant the workload
		// never needed — the §IV road from "it works" to POLA.
		m := mail.BroadManifest()
		sys, _, err := mail.Build(kernel.New(kernel.Config{}), m)
		if err != nil {
			return err
		}
		if _, err := mail.FetchMail(sys); err != nil {
			return err
		}
		if _, err := mail.Compose(sys, "draft"); err != nil {
			return err
		}
		sugg := m.SuggestPruning(sys.ChannelUsage())
		fmt.Printf("broad manifest: %d grants, workload used %d, pruning %d:\n",
			len(m.Channels), len(m.Channels)-len(sugg), len(sugg))
		for _, s := range sugg {
			fmt.Println(" ", s)
		}
		pruned := m.Pruned(sugg)
		fmt.Printf("\npruned manifest has %d channels (POLA manifest has %d)\n",
			len(pruned.Channels), len(mail.HorizontalManifest().Channels))
		return nil
	case "partition":
		prog := &partition.Program{Functions: []partition.Function{
			{Name: "ui", Calls: []string{"fetch", "suggest", "lookup"}},
			{Name: "fetch", Exposed: true, Calls: []string{"tls_recv", "parse"}},
			{Name: "parse", Exposed: true, Calls: []string{"render_html"}},
			{Name: "render_html", Exposed: true, Calls: []string{"archive_save"}},
			{Name: "tls_recv", Assets: []string{"tls-key"}},
			{Name: "tls_send", Assets: []string{"tls-key", "password"}},
			{Name: "login", Assets: []string{"password"}, Calls: []string{"tls_send"}},
			{Name: "suggest", Assets: []string{"dictionary"}},
			{Name: "lookup", Assets: []string{"contacts"}},
			{Name: "archive_save", Assets: []string{"archive"}},
			{Name: "archive_load", Assets: []string{"archive"}},
		}}
		res, err := partition.Partition(prog)
		if err != nil {
			return err
		}
		st := res.Summarize()
		fmt.Printf("%d functions → %d domains, %d channels (%d exposed functions evicted):\n\n",
			st.Functions, st.Domains, st.Channels, st.Exposed)
		byDomain := map[string][]string{}
		for fn, dom := range res.DomainOf {
			byDomain[dom] = append(byDomain[dom], fn)
		}
		doms := make([]string, 0, len(byDomain))
		for d := range byDomain {
			doms = append(doms, d)
		}
		sort.Strings(doms)
		for _, d := range doms {
			sort.Strings(byDomain[d])
			fmt.Printf("  domain %-14s %v  assets=%v\n", d, byDomain[d], res.Manifest.AssetsInDomain(byDomain[d][0]))
		}
		fmt.Println("\nderived channels:")
		for _, ch := range res.Manifest.Channels {
			fmt.Printf("  %s → %s (badge %d)\n", ch.From, ch.To, ch.Badge)
		}
		return nil
	case "trace":
		scenario := "mail"
		format := "tree"
		for _, a := range args[1:] {
			switch a {
			case "mail", "smartmeter", "distributed", "cluster":
				scenario = a
			case "json", "flame", "tree":
				format = a
			default:
				return fmt.Errorf("trace: unknown argument %q", a)
			}
		}
		rec := telemetry.NewRecorder(0)
		if err := runScenario(scenario, rec, nil); err != nil {
			return err
		}
		roots := rec.Trees()
		switch format {
		case "json":
			return telemetry.WriteJSON(os.Stdout, roots)
		case "flame":
			telemetry.WriteFlame(os.Stdout, roots)
		default:
			telemetry.WriteTree(os.Stdout, roots)
		}
		if n := rec.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "warning: %d spans dropped (recorder full)\n", n)
		}
		return nil
	case "metrics":
		met := telemetry.NewMetrics()
		for _, sc := range []string{"mail", "smartmeter", "distributed", "cluster"} {
			if err := runScenario(sc, met, met); err != nil {
				return err
			}
		}
		if len(args) > 1 && args[1] == "summary" {
			met.WriteSummary(os.Stdout)
			return nil
		}
		return met.WritePrometheus(os.Stdout)
	case "cluster":
		// The E19 deployment, narrated: an attested anonymizer fleet that
		// loses one replica mid-run (and gets it back after re-attestation)
		// while a tampered build never makes it past admission, then rolls
		// one member (join anon-6, drain and retire anon-1) through two
		// config epochs without dropping a reading. With -deadline, every
		// reading carries a call budget: sends attempted into the partition
		// window fail at the budget instead of hanging.
		var budget time.Duration
		for _, a := range args[1:] {
			v, ok := strings.CutPrefix(a, "-deadline=")
			if !ok {
				return fmt.Errorf("cluster: unknown argument %q", a)
			}
			d, err := time.ParseDuration(v)
			if err != nil {
				return fmt.Errorf("cluster: bad -deadline: %v", err)
			}
			budget = d
		}
		send := func(demo *experiments.FleetDemo, meter string, kwh int) error {
			if budget <= 0 {
				return demo.Send(meter, kwh)
			}
			return demo.SendDeadline(meter, kwh, time.Now().Add(budget))
		}
		met := telemetry.NewMetrics()
		demo, err := experiments.BuildFleetDemo(5, 5, met)
		if err != nil {
			return err
		}
		fmt.Printf("deployed 5 anonymizer replicas: %d healthy, %d quarantined (tampered build refused at admission: %v)\n",
			demo.Pool.Healthy(), demo.Pool.Quarantined(), demo.TamperedAdmitErr != nil)
		const meters, rounds = 120, 2
		accepted, i := 0, 0
		for r := 0; r < rounds; r++ {
			for m := 0; m < meters; m++ {
				switch i {
				case 80:
					fmt.Println("... crashing anon-2 mid-run (partition)")
					demo.Part.Isolate("anon-2")
				case 120:
					fmt.Println("... rolling replace begins: anon-6 attests and joins (fleet rekeys into a new epoch)")
					if err := demo.Join("anon-6"); err != nil {
						return fmt.Errorf("cluster: join anon-6: %v", err)
					}
				case 160:
					fmt.Println("... anon-2 restarts: health check re-attests and re-admits it")
					demo.Part.Heal("anon-2")
					demo.Pool.CheckNow()
				case 200:
					fmt.Println("... anon-1 drains and leaves: survivors rekey, its session keys die with the epoch")
					if err := demo.Pool.Leave("anon-1"); err != nil {
						return fmt.Errorf("cluster: leave anon-1: %v", err)
					}
				}
				if err := send(demo, fmt.Sprintf("meter-%03d", m), 1+m%9); err == nil {
					accepted++
				}
				i++
			}
		}
		fmt.Printf("%d/%d readings accepted; fleet processed %d (makespan %.2f ms of modeled enclave time)\n",
			accepted, meters*rounds, demo.ProcessedTotal(), float64(demo.MakespanNs())/1e6)
		fmt.Printf("fleet at config epoch %d after the rolling replace\n\n", demo.Pool.Epoch())
		fmt.Printf("%-8s %-12s %-16s %6s %7s %6s %8s %10s %8s %10s %10s %6s\n",
			"replica", "state", "wire", "epoch", "calls", "errs", "retries", "failovers", "orphans",
			"avg-window", "aead-save", "ctl")
		for _, ri := range demo.Pool.Replicas() {
			// The coalescing view per stub: how many sub-frames the average
			// shared record carried, the AEAD passes those records saved,
			// and the adaptive controller's last move.
			avgWindow := 1.0
			if ri.Stub.CoalescedRecords > 0 {
				avgWindow = float64(ri.Stub.CoalescedSubs) / float64(ri.Stub.CoalescedRecords)
			}
			fmt.Printf("%-8s %-12s %-16s %6d %7d %6d %8d %10d %8d %10.2f %10d %6s\n",
				ri.Name, ri.State, ri.Version, ri.Epoch, ri.Calls, ri.Errors, ri.Retries, ri.Failovers, ri.Stub.Orphans,
				avgWindow, ri.Stub.CoalescedSubs-ri.Stub.CoalescedRecords, ri.Stub.CoalesceState)
		}

		// The same fleet pattern at population scale: independent cells
		// behind a consistent-hash shard map, batched sealed frames, and a
		// per-tenant quota that refuses a burst before it reaches any cell.
		fmt.Println("\nsharded fabric (E23 pattern, 4 cells):")
		rt := shard.NewRouter(shard.Config{Fleet: "cells", TenantQuota: 8, Monitor: met})
		for c := 1; c <= 4; c++ {
			cd, err := experiments.BuildFleetDemo(1, 0, nil)
			if err != nil {
				return err
			}
			if err := rt.Join(fmt.Sprintf("cell-%d", c), cd.Pool); err != nil {
				return err
			}
		}
		for m := 0; m < 24; m++ {
			tenant := fmt.Sprintf("tenant-%d", m%3)
			key := fmt.Sprintf("%s/meter-%02d", tenant, m)
			if _, err := rt.Do(tenant, key, core.Message{
				Op: "reading", Data: append([]byte(key), '=', byte(1+m%9)),
			}); err != nil {
				return fmt.Errorf("cluster: shard route %s: %v", key, err)
			}
		}
		frame := make([]distributed.Reading, 6)
		for i := range frame {
			frame[i] = distributed.Reading{
				Op: "reading", Data: append([]byte(fmt.Sprintf("tenant-0/batch-%02d", i)), '=', 3),
			}
		}
		if _, err := rt.DoBatch("tenant-0", "tenant-0/frame", frame, nil, time.Time{}); err != nil {
			return fmt.Errorf("cluster: shard batch: %v", err)
		}
		burst := make([]distributed.Reading, 12)
		for i := range burst {
			burst[i] = distributed.Reading{
				Op: "reading", Data: append([]byte(fmt.Sprintf("tenant-1/burst-%02d", i)), '=', 1),
			}
		}
		if _, err := rt.DoBatch("tenant-1", "tenant-1/burst", burst, nil, time.Time{}); !errors.Is(err, core.ErrOverloaded) {
			return fmt.Errorf("cluster: 12-reading burst vs quota 8 not refused: %v", err)
		}
		fmt.Printf("shard epoch %d; 24 readings routed by key, one 6-reading sealed frame, one 12-reading burst refused at quota 8\n", rt.Epoch())
		fmt.Printf("%-8s %8s %9s %7s\n", "cell", "healthy", "replicas", "routed")
		for _, s := range rt.Shards() {
			fmt.Printf("%-8s %8d %9d %7d\n", s.Name, s.Healthy, s.Replicas, s.Routed)
		}
		fmt.Printf("%-10s %9s %7s\n", "tenant", "inflight", "denied")
		for _, ts := range rt.Tenants() {
			fmt.Printf("%-10s %9d %7d\n", ts.Tenant, ts.Inflight, ts.Denied)
		}
		fmt.Println()
		met.WriteSummary(os.Stdout)
		return nil
	case "events":
		run, err := journaledChaosRun()
		if err != nil {
			return err
		}
		entries := run.jnl.Entries()
		fmt.Printf("fleet black box after chaos run: %d entries, %d checkpoints, %d dropped\n\n",
			len(entries), len(run.jnl.Checkpoints()), run.jnl.Dropped())
		fmt.Printf("%4s  %-12s %-22s %-10s %s\n", "seq", "kind", "actor", "trace", "detail")
		for _, e := range entries {
			trace := "-"
			if e.Trace != 0 || e.Span != 0 {
				trace = fmt.Sprintf("%d/%d", e.Trace, e.Span)
			}
			fmt.Printf("%4d  %-12s %-22s %-10s %s\n", e.Seq, e.Kind, e.Actor, trace, e.Detail)
		}
		fmt.Println()
		for _, ck := range run.jnl.Checkpoints() {
			fmt.Printf("checkpoint seq=%d counter=%d head=%x\n", ck.Seq, ck.Counter, ck.Head[:8])
		}
		for _, dump := range run.flight.Dumps() {
			fmt.Printf("flight dump trigger=%s detail=%q spans=%d\n", dump.Trigger, dump.Detail, len(dump.Spans))
		}
		return nil
	case "audit":
		// The auditor's position: only the exported journal bytes, the
		// checkpoint public key, and the trusted monotonic counter. Replay
		// must re-derive the live fleet's exact trust state, and the
		// self-checks must prove the black box is tamper- and
		// rollback-evident. Any failure exits non-zero.
		run, err := journaledChaosRun()
		if err != nil {
			return err
		}
		export := run.jnl.Export()
		trusted, err := run.counter.Value()
		if err != nil {
			return err
		}
		fmt.Printf("audit inputs: %d-byte export, checkpoint key, trusted counter=%d\n", len(export), trusted)
		audit, err := journal.Replay(export, run.signer.Public(), trusted)
		if err != nil {
			return fmt.Errorf("audit: replay failed: %w", err)
		}
		fmt.Printf("replay: %d entries verified, chain head %x, %d checkpoints anchored\n",
			len(audit.Entries), audit.Head[:8], len(audit.Checkpoints))
		fmt.Println("re-derived trust state:")
		actors := make([]string, 0, len(audit.States))
		for a := range audit.States {
			actors = append(actors, a)
		}
		sort.Strings(actors)
		for _, a := range actors {
			fmt.Printf("  %-22s %s\n", a, audit.States[a])
		}
		if diff := audit.Diff(run.demo.Pool.States()); len(diff) > 0 {
			return fmt.Errorf("audit: journal diverges from live fleet: %v", diff)
		}
		fmt.Println("live fleet comparison: no divergence")

		// Self-check 1: every single-byte corruption of the export must be
		// detected.
		for i := range export {
			mut := append([]byte(nil), export...)
			mut[i] ^= 0x55
			if _, err := journal.Replay(mut, run.signer.Public(), trusted); err == nil {
				return fmt.Errorf("audit: byte flip at offset %d passed verification", i)
			}
		}
		fmt.Printf("self-check: all %d single-byte flips detected\n", len(export))
		// Self-check 2: a regressed trusted counter (rollback) must be
		// detected.
		if _, err := journal.Replay(export, run.signer.Public(), trusted-1); err == nil {
			return fmt.Errorf("audit: counter regression passed verification")
		}
		fmt.Println("self-check: counter regression detected")
		fmt.Println("AUDIT OK")
		return nil
	case "policy":
		return policyDemo()
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// policyDemoText is the demo's rule set in the policy DSL: reading the
// vault's identifying data taints the chain; tainted chains may never hit
// the network channel, and may hit the export channel only with a live
// (TTL-decaying) approval grant.
const policyDemoText = `# mosaic rule: ids taint the chain
taint vault ids meter-identities
deny no-exfil to-net * when meter-identities
approve ops-export to-export * when meter-identities
allow rest * *
`

// policyDemo narrates chain-aware enforcement on a live system: the same
// component reads identifying data and then tries to egress it, and the
// system — not the component — refuses. Approval-gated exports show grant
// reuse and TTL decay; every verdict lands in the journal and telemetry.
func policyDemo() error {
	met := telemetry.NewMetrics()
	signer := cryptoutil.NewSigner("lateralctl-policy")
	counter := &journal.MemCounter{}
	jnl, err := journal.New(journal.Config{
		Name: "meter", Signer: signer, Counter: counter, CheckpointEvery: 8, Monitor: met,
	})
	if err != nil {
		return err
	}
	rules, err := policy.Decode([]byte(policyDemoText))
	if err != nil {
		return err
	}
	fmt.Println("policy (canonical form):")
	for _, line := range strings.Split(strings.TrimRight(string(policy.Encode(rules)), "\n"), "\n") {
		fmt.Println("  " + line)
	}
	now := time.Now()
	approvals := 0
	eng, err := policy.New(policy.Config{
		Name:  "meter",
		Rules: rules,
		Approver: policy.ApproverFunc(func(rule string, req core.PolicyRequest) bool {
			approvals++
			fmt.Printf("... approver consulted: rule %s, %s wants %s op %q\n", rule, req.From, req.Channel, req.Op)
			return true
		}),
		GrantTTL: 45 * time.Second,
		Clock:    func() time.Time { return now },
		Recorder: jnl,
		Monitor:  met,
	})
	if err != nil {
		return err
	}
	sys := core.NewSystem(kernel.New(kernel.Config{}))
	sys.SetEventRecorder(jnl)
	sys.SetPolicy(eng)
	sys.SetTracer(met)
	for _, c := range []core.Component{&polApp{}, polVault{}, &polSink{}} {
		if err := sys.Launch(c, false, 1); err != nil {
			return err
		}
	}
	for _, ch := range []core.ChannelSpec{
		{Name: "vault", From: "app", To: "vault", Badge: 1},
		{Name: "to-net", From: "app", To: "net", Badge: 2},
		{Name: "to-export", From: "app", To: "net", Badge: 3},
	} {
		if err := sys.Grant(ch); err != nil {
			return err
		}
	}
	if err := sys.InitAll(); err != nil {
		return err
	}

	drive := func(op, label string) {
		_, err := sys.Deliver("app", core.Message{Op: op, Data: []byte(label)})
		switch {
		case err == nil:
			fmt.Printf("%-34s -> ok\n", label)
		case errors.Is(err, core.ErrPolicy):
			fmt.Printf("%-34s -> DENIED: %v\n", label, err)
		default:
			fmt.Printf("%-34s -> error: %v\n", label, err)
		}
	}
	fmt.Println("\nuntainted workload (allowed by the trailing allow rule):")
	drive("send", "send telemetry")
	drive("send", "send telemetry again")
	fmt.Println("\nmosaic attack (read ids, then egress — each step individually fine):")
	drive("exfil", "exfil ids via to-net")
	fmt.Println("\nsanctioned export (approval minted, then reused under the live grant):")
	drive("export", "export report #1")
	drive("export", "export report #2")
	now = now.Add(time.Minute) // the 45s grant decays
	fmt.Println("\nafter 1m (grant TTL 45s elapsed — next export re-approves):")
	drive("export", "export report #3")

	fmt.Printf("\njournal: %d entries, policy verdicts on record:\n", len(jnl.Entries()))
	for _, e := range jnl.Entries() {
		if e.Kind == journal.KindPolicyDeny || e.Kind == journal.KindPolicyApprove {
			fmt.Printf("  seq=%d %-14s %s\n", e.Seq, e.Kind, e.Detail)
		}
	}
	fmt.Printf("\nstats: %d denies, %d approvals\n\n", sys.Stats().PolicyDenies, approvals)
	met.WriteSummary(os.Stdout)
	return nil
}

// ---- policy demo components -----------------------------------------

// polApp reads identifying data on demand and pushes bytes out — a
// deliberately unscrupulous component; containment is the system's job.
type polApp struct{ ctx *core.Ctx }

func (a *polApp) CompName() string         { return "app" }
func (a *polApp) CompVersion() string      { return "1.0" }
func (a *polApp) Init(ctx *core.Ctx) error { a.ctx = ctx; return nil }

func (a *polApp) Handle(env core.Envelope) (core.Message, error) {
	switch env.Msg.Op {
	case "send":
		return a.ctx.Call("to-net", core.Message{Op: "send", Data: env.Msg.Data})
	case "exfil":
		if _, err := a.ctx.Call("vault", core.Message{Op: "ids"}); err != nil {
			return core.Message{}, err
		}
		return a.ctx.Call("to-net", core.Message{Op: "send", Data: env.Msg.Data})
	case "export":
		if _, err := a.ctx.Call("vault", core.Message{Op: "ids"}); err != nil {
			return core.Message{}, err
		}
		return a.ctx.Call("to-export", core.Message{Op: "send", Data: env.Msg.Data})
	default:
		return core.Message{}, core.ErrRefused
	}
}

// polVault holds the identifying data whose channel taints the chain.
type polVault struct{}

func (polVault) CompName() string     { return "vault" }
func (polVault) CompVersion() string  { return "1.0" }
func (polVault) Init(*core.Ctx) error { return nil }
func (polVault) Handle(env core.Envelope) (core.Message, error) {
	if env.Msg.Op != "ids" {
		return core.Message{}, core.ErrRefused
	}
	return core.Message{Op: "ok", Data: []byte("meter-identities")}, nil
}

// polSink models the network boundary.
type polSink struct{}

func (*polSink) CompName() string     { return "net" }
func (*polSink) CompVersion() string  { return "1.0" }
func (*polSink) Init(*core.Ctx) error { return nil }
func (*polSink) Handle(env core.Envelope) (core.Message, error) {
	if env.Msg.Op != "send" {
		return core.Message{}, core.ErrRefused
	}
	return core.Message{Op: "sent"}, nil
}

// chaosRun bundles the journaled fleet the events and audit commands share.
type chaosRun struct {
	demo    *experiments.FleetDemo
	jnl     *journal.Journal
	signer  *cryptoutil.Signer
	counter *journal.MemCounter
	flight  *journal.FlightRecorder
}

// journaledChaosRun deploys a journaled anonymizer fleet and drives the
// E19 chaos narrative through it: a tampered build refused at admission
// (quarantine + flight dump), a mid-run crash with failover, and a
// re-attested recovery — leaving a black box with every kind of fleet
// event on record, closed by a signed checkpoint.
func journaledChaosRun() (*chaosRun, error) {
	signer := cryptoutil.NewSigner("lateralctl-audit")
	counter := &journal.MemCounter{}
	flight := journal.NewFlightRecorder(journal.FlightConfig{Spans: 16})
	jnl, err := journal.New(journal.Config{
		Name:            "anonymizer",
		Signer:          signer,
		Counter:         counter,
		CheckpointEvery: 8,
		Flight:          flight,
	})
	if err != nil {
		return nil, err
	}
	demo, err := experiments.BuildJournaledFleetDemo(3, 3, nil, jnl)
	if err != nil {
		return nil, err
	}
	demo.SetTracer(flight)
	for i := 0; i < 12; i++ {
		switch i {
		case 4:
			demo.Part.Isolate("anon-2")
		case 8:
			demo.Part.Heal("anon-2")
			demo.Pool.CheckNow()
		}
		if err := demo.Send(fmt.Sprintf("meter-%02d", i%4), 2+i%5); err != nil {
			return nil, err
		}
	}
	if err := jnl.Checkpoint(); err != nil {
		return nil, err
	}
	return &chaosRun{demo: demo, jnl: jnl, signer: signer, counter: counter, flight: flight}, nil
}

// runScenario drives one instrumented workload: every involved system gets
// the tracer, and (when mon is non-nil) the simulated network reports its
// traffic too.
func runScenario(scenario string, tr core.Tracer, mon netsim.Monitor) error {
	switch scenario {
	case "mail":
		sys, _, err := mail.Build(kernel.New(kernel.Config{}), mail.HorizontalManifest())
		if err != nil {
			return err
		}
		sys.SetTracer(tr)
		if _, err := mail.FetchMail(sys); err != nil {
			return err
		}
		_, err = mail.Compose(sys, "status report draft")
		return err
	case "smartmeter":
		d, err := meter.Deploy(meter.Options{})
		if err != nil {
			return err
		}
		d.Appliance.SetTracer(tr)
		d.Server.SetTracer(tr)
		if mon != nil {
			d.Net.SetMonitor(mon)
		}
		if err := d.Connect(); err != nil {
			return err
		}
		for _, kwh := range []int{3, 5, 2} {
			if err := d.SendReading(kwh); err != nil {
				return err
			}
		}
		_, err = d.ShowBillingOnAndroid()
		return err
	case "distributed":
		demo, err := experiments.BuildDistributedDemo()
		if err != nil {
			return err
		}
		demo.Laptop.SetTracer(tr)
		demo.Cloud.SetTracer(tr)
		if mon != nil {
			demo.Net.SetMonitor(mon)
		}
		if err := demo.Stub.Connect(); err != nil {
			return err
		}
		if _, err := demo.Laptop.Deliver("client", core.Message{Op: "put", Data: []byte("traced-doc")}); err != nil {
			return err
		}
		_, err = demo.Laptop.Deliver("client", core.Message{Op: "get"})
		return err
	case "cluster":
		var cm cluster.Monitor
		if m, ok := tr.(cluster.Monitor); ok {
			cm = m
		}
		demo, err := experiments.BuildFleetDemo(3, 0, cm)
		if err != nil {
			return err
		}
		demo.SetTracer(tr)
		if mon != nil {
			demo.Net.SetMonitor(mon)
		}
		for i := 0; i < 9; i++ {
			if i == 4 {
				demo.Part.Isolate("anon-3")
			}
			if err := demo.Send(fmt.Sprintf("meter-%02d", i%3), 2+i%5); err != nil {
				return err
			}
		}
		demo.Part.Heal("anon-3")
		demo.Pool.CheckNow()
		return nil
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}
}
