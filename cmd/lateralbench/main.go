// lateralbench runs the reproduction experiments and prints their tables —
// the regenerator for every figure and claim in DESIGN.md's per-experiment
// index.
//
//	go run ./cmd/lateralbench            # run everything
//	go run ./cmd/lateralbench E1 E7      # run selected experiments
//	go run ./cmd/lateralbench -list      # list experiment IDs
//	go run ./cmd/lateralbench -e22-json BENCH_e22.json  # rewrite the
//	                                     # pipelining trajectory baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"lateral/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	e22JSON := flag.String("e22-json", "", "write the E22 pipelining baseline to this file and exit")
	e23JSON := flag.String("e23-json", "", "write the E23 sharded-fleet baseline to this file and exit")
	e26JSON := flag.String("e26-json", "", "write the E26 rolling-replace baseline to this file and exit")
	e27JSON := flag.String("e27-json", "", "write the E27 frame-coalescing baseline to this file and exit")
	flag.Parse()
	if *e22JSON != "" {
		if err := writeE22Baseline(*e22JSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *e23JSON != "" {
		if err := writeE23Baseline(*e23JSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *e26JSON != "" {
		if err := writeE26Baseline(*e26JSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *e27JSON != "" {
		if err := writeE27Baseline(*e27JSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := run(*list, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// writeE22Baseline regenerates the checked-in BENCH_e22.json: the wire
// economics (rounds, calls/round) are deterministic and comparable across
// machines; ops/sec is wall-clock and only comparable run-over-run on one
// machine.
func writeE22Baseline(path string) error {
	depths, err := experiments.E22Baseline()
	if err != nil {
		return err
	}
	doc := struct {
		Experiment string                 `json:"experiment"`
		RTTMillis  int                    `json:"simulated_rtt_ms"`
		Depths     []experiments.E22Depth `json:"depths"`
	}{Experiment: "E22 pipelined secure-channel RPC", RTTMillis: 1, Depths: depths}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// writeE23Baseline regenerates the checked-in BENCH_e23.json: the
// clients-vs-p99/throughput curve of the sharded fabric at 16 shards and
// 256-reading frames. Frame and acceptance counts are deterministic and
// comparable across machines; p99 and throughput are wall-clock.
func writeE23Baseline(path string) error {
	points, err := experiments.E23Baseline()
	if err != nil {
		return err
	}
	doc := struct {
		Experiment string                 `json:"experiment"`
		Points     []experiments.E23Point `json:"points"`
	}{Experiment: "E23 million-client sharded fleet", Points: points}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// writeE26Baseline regenerates the checked-in BENCH_e26.json: per-phase
// throughput through a rolling replace — the transition phases carry the
// drain-and-rekey cost, so the dip and the recovery are both on record.
// Epoch and healthy counts are deterministic; ops/sec is wall-clock.
func writeE26Baseline(path string) error {
	phases, err := experiments.E26Baseline()
	if err != nil {
		return err
	}
	doc := struct {
		Experiment string                 `json:"experiment"`
		Phases     []experiments.E26Phase `json:"phases"`
	}{Experiment: "E26 rolling replace under config epochs", Phases: phases}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// writeE27Baseline regenerates the checked-in BENCH_e27.json: the
// coalesce-window curve at depth 64 — sealed records (AEAD passes on the
// request path), sub-frames per record, and wire rounds are deterministic
// and comparable across machines; ops/sec and p99 are wall-clock.
func writeE27Baseline(path string) error {
	points, err := experiments.E27Baseline()
	if err != nil {
		return err
	}
	doc := struct {
		Experiment string                 `json:"experiment"`
		RTTMillis  int                    `json:"simulated_rtt_ms"`
		Points     []experiments.E27Point `json:"points"`
	}{Experiment: "E27 wire-level frame coalescing", RTTMillis: 1, Points: points}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func run(list bool, args []string) error {
	all := experiments.All()
	if list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return nil
	}
	selected := make(map[string]bool, len(args))
	for _, a := range args {
		selected[strings.ToUpper(a)] = true
	}
	failures := 0
	for _, e := range all {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		table, err := e.Run()
		if err != nil {
			fmt.Printf("== %s: ERROR: %v ==\n\n", e.ID, err)
			failures++
			continue
		}
		fmt.Println(table)
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed", failures)
	}
	return nil
}
