// lateralbench runs the reproduction experiments and prints their tables —
// the regenerator for every figure and claim in DESIGN.md's per-experiment
// index.
//
//	go run ./cmd/lateralbench            # run everything
//	go run ./cmd/lateralbench E1 E7      # run selected experiments
//	go run ./cmd/lateralbench -list      # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lateral/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()
	if err := run(*list, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(list bool, args []string) error {
	all := experiments.All()
	if list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return nil
	}
	selected := make(map[string]bool, len(args))
	for _, a := range args {
		selected[strings.ToUpper(a)] = true
	}
	failures := 0
	for _, e := range all {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		table, err := e.Run()
		if err != nil {
			fmt.Printf("== %s: ERROR: %v ==\n\n", e.ID, err)
			failures++
			continue
		}
		fmt.Println(table)
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed", failures)
	}
	return nil
}
