package lateral

// Cross-cutting integration tests: whole-application flows across every
// substrate, concurrency stress under the race detector, and end-to-end
// attack scenarios that span multiple subsystems.

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"lateral/internal/attack"
	"lateral/internal/core"
	"lateral/internal/experiments"
	"lateral/internal/kernel"
	"lateral/internal/mail"
	"lateral/internal/manifest"
	"lateral/internal/meter"
	"lateral/internal/netsim"
)

// TestMailOnEverySubstrate runs the complete mail application (8
// components, POLA manifest, fetch + compose flows) on all seven
// substrates — the strongest form of the E2 portability claim.
func TestMailOnEverySubstrate(t *testing.T) {
	for _, name := range experiments.SubstrateNames() {
		t.Run(name, func(t *testing.T) {
			sub, err := experiments.NewSubstrate(name)
			if err != nil {
				t.Fatal(err)
			}
			sys, _, err := mail.Build(sub, mail.HorizontalManifest())
			if err != nil {
				t.Fatal(err)
			}
			out, err := mail.FetchMail(sys)
			if err != nil {
				t.Fatalf("fetch: %v", err)
			}
			if !strings.Contains(out, "Quarterly report") {
				t.Errorf("rendered = %q", out)
			}
			if _, err := mail.Compose(sys, "hello"); err != nil {
				t.Fatalf("compose: %v", err)
			}
		})
	}
}

// TestVerticalMailOnEverySubstrate also exercises the colocated variant
// everywhere (one fat domain per substrate).
func TestVerticalMailOnEverySubstrate(t *testing.T) {
	for _, name := range experiments.SubstrateNames() {
		t.Run(name, func(t *testing.T) {
			sub, err := experiments.NewSubstrate(name)
			if err != nil {
				t.Fatal(err)
			}
			sys, _, err := mail.Build(sub, mail.VerticalManifest())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := mail.FetchMail(sys); err != nil {
				t.Fatalf("fetch: %v", err)
			}
		})
	}
}

// TestConcurrentInvocations hammers one system from many goroutines; run
// with -race this validates the locking discipline of core + substrates.
func TestConcurrentInvocations(t *testing.T) {
	sys, _, err := mail.Build(kernel.New(kernel.Config{}), mail.HorizontalManifest())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := mail.FetchMail(sys); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("concurrent fetch: %v", err)
	}
	st := sys.Stats()
	if st.Invocations != 8*25*6 {
		t.Errorf("invocations = %d, want %d", st.Invocations, 8*25*6)
	}
}

// TestConcurrentCompromiseAndTraffic races an attacker compromising a
// domain against ongoing traffic; no panics, no deadlocks, and afterwards
// the compromise is fully in effect.
func TestConcurrentCompromiseAndTraffic(t *testing.T) {
	sys, assets, err := mail.Build(kernel.New(kernel.Config{}), mail.HorizontalManifest())
	if err != nil {
		t.Fatal(err)
	}
	adv := attack.New()
	sys.SetObserver(adv)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_, _ = mail.FetchMail(sys)
		}
	}()
	go func() {
		defer wg.Done()
		_ = sys.Compromise("tls")
	}()
	wg.Wait()
	if !sys.IsCompromised("tls") {
		t.Fatal("compromise lost")
	}
	if !adv.Saw(assets["tls-key"]) {
		t.Error("tls compromise did not expose the tls key")
	}
	if adv.Saw(assets["contacts"]) {
		t.Error("tls compromise exposed an unrelated domain's asset")
	}
}

// TestMeterUnderEveryWireAdversary sweeps the Fig. 3 deployment against
// each stock network adversary; the system must either work correctly or
// fail closed — never deliver wrong results silently.
func TestMeterUnderEveryWireAdversary(t *testing.T) {
	cases := []struct {
		name string
		adv  netsim.Adversary
		// wantWork: the deployment should complete and bill correctly.
		wantWork bool
	}{
		{"clean", nil, true},
		{"passive recorder", &netsim.Recorder{}, true},
		{"tamperer", netsim.Tamperer{}, false},
		{"dropper", netsim.Dropper{}, false},
		// The replayer duplicates every flight; stale duplicates desync
		// the datagram-level handshake, which fails closed. (Record-level
		// replays on an established session are discarded by sequence
		// checks — see securechan's replay tests.)
		{"replayer", netsim.Replayer{}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := meter.Deploy(meter.Options{WireAdversary: tc.adv})
			if err != nil {
				t.Fatal(err)
			}
			err = d.Connect()
			if err == nil {
				err = d.SendReading(10)
			}
			if tc.wantWork {
				if err != nil {
					t.Fatalf("should work under %s: %v", tc.name, err)
				}
				total, err := d.BillingTotal()
				if err != nil || total != 10 {
					t.Errorf("billing = %d, %v", total, err)
				}
			} else if err == nil {
				// Active attackers must cause a loud failure somewhere.
				if total, terr := d.BillingTotal(); terr == nil && total != 10 {
					t.Errorf("silent corruption: billed %d", total)
				}
			}
		})
	}
}

// TestPrunedBroadManifestStillServesWorkload closes the POLA loop: deploy
// broad, observe, prune, redeploy pruned, verify both the workload and the
// improved containment.
func TestPrunedBroadManifestStillServesWorkload(t *testing.T) {
	m := mail.BroadManifest()
	sys, _, err := mail.Build(kernel.New(kernel.Config{}), m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mail.FetchMail(sys); err != nil {
		t.Fatal(err)
	}
	if _, err := mail.Compose(sys, "d"); err != nil {
		t.Fatal(err)
	}
	sugg := m.SuggestPruning(sys.ChannelUsage())
	if len(sugg) == 0 {
		t.Fatal("broad manifest produced no pruning suggestions")
	}
	pruned := m.Pruned(sugg)
	if err := pruned.Validate(); err != nil {
		t.Fatal(err)
	}
	sys2, _, err := mail.Build(kernel.New(kernel.Config{}), pruned)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mail.FetchMail(sys2); err != nil {
		t.Errorf("workload broke after pruning: %v", err)
	}
	// Containment of the renderer exploit improves from broad to pruned.
	buildPruned := func() (*core.System, map[string][]byte, error) {
		return mail.Build(kernel.New(kernel.Config{}), pruned)
	}
	buildBroad := func() (*core.System, map[string][]byte, error) {
		return mail.Build(kernel.New(kernel.Config{}), mail.BroadManifest())
	}
	rp, err := attack.MeasureContainment(buildPruned, "render")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := attack.MeasureContainment(buildBroad, "render")
	if err != nil {
		t.Fatal(err)
	}
	if len(rp.Leaked) >= len(rb.Leaked) && len(rb.Leaked) > 0 {
		t.Errorf("pruning did not improve containment: pruned %v vs broad %v", rp.Leaked, rb.Leaked)
	}
}

// TestManifestAnalysisOnBroadManifest: the §IV analyzer must flag the
// broad manifest's deputies-with-many-clients situation is fine (all
// badged) but exposure explodes relative to POLA.
func TestManifestAnalysisOnBroadManifest(t *testing.T) {
	count := func(m *manifest.Manifest, kind string) int {
		n := 0
		for _, f := range m.Analyze() {
			if f.Kind == kind {
				n++
			}
		}
		return n
	}
	broadExposure := count(mail.BroadManifest(), "exposure")
	polaExposure := count(mail.HorizontalManifest(), "exposure")
	if broadExposure <= polaExposure {
		t.Errorf("broad exposure (%d) should exceed POLA exposure (%d)", broadExposure, polaExposure)
	}
}

// TestCompromisedMeterComponentStillCannotForgeQuotes: even with the
// trusted meter component compromised at RUNTIME, its launch measurement
// is unchanged — attestation honestly reports the code that was loaded.
// (What attestation cannot see is exactly the paper's residual risk.)
func TestCompromisedMeterComponentStillCannotForgeQuotes(t *testing.T) {
	d, err := meter.Deploy(meter.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := d.Appliance.HandleOf("meter")
	if err != nil {
		t.Fatal(err)
	}
	before := h.Measurement()
	if err := d.Appliance.Compromise("meter"); err != nil {
		t.Fatal(err)
	}
	if h.Measurement() != before {
		t.Error("runtime compromise changed the launch measurement")
	}
	// The connection still succeeds — a truthful but insufficient
	// attestation, as §II-D warns.
	if err := d.Connect(); err != nil {
		t.Errorf("connect after runtime compromise: %v (launch attestation cannot detect runtime subversion)", err)
	}
}

// TestSystemErrorsSurfaceNotPanic feeds hostile inputs everywhere and
// requires errors, never panics.
func TestSystemErrorsSurfaceNotPanic(t *testing.T) {
	sys, _, err := mail.Build(kernel.New(kernel.Config{}), mail.HorizontalManifest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Deliver("no-such-component", core.Message{}); !errors.Is(err, core.ErrNoDomain) {
		t.Errorf("unknown target: %v", err)
	}
	if err := sys.Compromise("no-such-component"); !errors.Is(err, core.ErrNoDomain) {
		t.Errorf("unknown compromise: %v", err)
	}
	if _, err := sys.Deliver("render", core.Message{Op: strings.Repeat("x", 1<<16)}); err == nil {
		t.Error("absurd op accepted")
	}
}
