package lateral

// The benchmark harness: one Benchmark per experiment in DESIGN.md's
// per-experiment index (regenerating its table each iteration and
// reporting its headline number as a custom metric), plus micro-benchmarks
// for the mechanisms underneath (per-substrate invocation, VPFS vs raw
// legacy storage, attested handshakes, quote generation).
//
// Run everything:
//
//	go test -bench=. -benchmem ./...

import (
	"crypto/ed25519"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"lateral/internal/attack"
	"lateral/internal/cluster"
	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/distributed"
	"lateral/internal/experiments"
	"lateral/internal/hw"
	"lateral/internal/journal"
	"lateral/internal/kernel"
	"lateral/internal/legacy"
	"lateral/internal/mail"
	"lateral/internal/netsim"
	"lateral/internal/policy"
	"lateral/internal/securechan"
	"lateral/internal/sgx"
	"lateral/internal/telemetry"
	"lateral/internal/vpfs"
)

// benchExperiment runs one experiment per iteration and reports a named
// headline metric extracted from its table.
func benchExperiment(b *testing.B, run func() (experiments.Table, error),
	metricName string, metric func(experiments.Table) float64) {
	b.Helper()
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := run()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	if metric != nil {
		b.ReportMetric(metric(last), metricName)
	}
}

func cellFloat(t experiments.Table, row string, col int) float64 {
	for _, r := range t.Rows {
		if r[0] == row {
			v, err := strconv.ParseFloat(strings.TrimSuffix(r[col], "x"), 64)
			if err == nil {
				return v
			}
		}
	}
	return -1
}

func BenchmarkE1Containment(b *testing.B) {
	benchExperiment(b, experiments.E1Containment, "mean-leak-pola",
		func(t experiments.Table) float64 { return cellFloat(t, "MEAN", 3) })
}

func BenchmarkE2Portability(b *testing.B) {
	benchExperiment(b, experiments.E2Portability, "substrates",
		func(t experiments.Table) float64 { return float64(len(t.Rows)) })
}

func BenchmarkE3SmartMeter(b *testing.B) {
	benchExperiment(b, experiments.E3SmartMeter, "scenarios-pass",
		func(t experiments.Table) float64 {
			pass := 0
			for _, r := range t.Rows {
				if r[3] == "PASS" {
					pass++
				}
			}
			return float64(pass)
		})
}

func BenchmarkE4Invocation(b *testing.B) {
	benchExperiment(b, experiments.E4Invocation, "substrates",
		func(t experiments.Table) float64 { return float64(len(t.Rows)) })
}

func BenchmarkE5TCB(b *testing.B) {
	benchExperiment(b, experiments.E5TCB, "mean-reduction-x",
		func(t experiments.Table) float64 { return cellFloat(t, "MEAN", 3) })
}

func BenchmarkE6Covert(b *testing.B) {
	benchExperiment(b, experiments.E6Covert, "tdma-bits/frame",
		func(t experiments.Table) float64 { return cellFloat(t, "microkernel/time-partitioned", 5) })
}

func BenchmarkE7VPFS(b *testing.B) {
	benchExperiment(b, experiments.E7VPFS, "attacks",
		func(t experiments.Table) float64 { return float64(len(t.Rows)) })
}

func BenchmarkE8Deputy(b *testing.B) {
	benchExperiment(b, experiments.E8Deputy, "modes",
		func(t experiments.Table) float64 { return float64(len(t.Rows)) })
}

func BenchmarkE9Phishing(b *testing.B) {
	benchExperiment(b, experiments.E9Phishing, "hw-compromised",
		func(t experiments.Table) float64 { return cellFloat(t, "hardware-key", 3) })
}

func BenchmarkE10Gateway(b *testing.B) {
	benchExperiment(b, experiments.E10Gateway, "gated-victim-pkts",
		func(t experiments.Table) float64 { return cellFloat(t, "yes", 2) })
}

func BenchmarkE11Boot(b *testing.B) {
	benchExperiment(b, experiments.E11Boot, "chains",
		func(t experiments.Table) float64 { return float64(len(t.Rows)) })
}

func BenchmarkE12BusTap(b *testing.B) {
	benchExperiment(b, experiments.E12BusTap, "substrates",
		func(t experiments.Table) float64 { return float64(len(t.Rows)) })
}

func BenchmarkE13GUI(b *testing.B) {
	benchExperiment(b, experiments.E13GUI, "paths",
		func(t experiments.Table) float64 { return float64(len(t.Rows)) })
}

func BenchmarkE14Concurrency(b *testing.B) {
	benchExperiment(b, experiments.E14Concurrency, "latelaunch-rel-x",
		func(t experiments.Table) float64 { return cellFloat(t, "tpm-latelaunch", 5) })
}

// --- mechanism micro-benchmarks ---

// BenchmarkInvocation measures the simulator's cross-domain call latency
// per substrate (the "sim-ns/call" column of E4, under the Go benchmark
// harness).
func BenchmarkInvocation(b *testing.B) {
	for _, name := range experiments.SubstrateNames() {
		b.Run(name, func(b *testing.B) {
			sub, err := experiments.NewSubstrate(name)
			if err != nil {
				b.Fatal(err)
			}
			sys, _, err := mail.Build(sub, mail.HorizontalManifest())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mail.FetchMail(sys); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sub.Properties().InvokeCostNs), "modeled-ns/call")
		})
	}
}

// benchMailSystem builds the horizontal mail system used by the tracing
// overhead pair below.
func benchMailSystem(b *testing.B) *core.System {
	b.Helper()
	sys, _, err := mail.Build(kernel.New(kernel.Config{}), mail.HorizontalManifest())
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkUntracedInvocation is the baseline for the tracing overhead
// claim: the full fetch-mail flow with no Tracer installed.
func BenchmarkUntracedInvocation(b *testing.B) {
	sys := benchMailSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mail.FetchMail(sys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracedInvocation is the same flow with the telemetry.Metrics
// collector installed in the production configuration: head sampling at
// 1-in-512 requests (the same order as Dapper's production 1-in-1024), so
// steady-state delivers run the untraced fast path and only the sampled
// ones pay for span IDs, clock reads, and histogram updates — an amortized
// cost of a few ns per request. Compare ns/op against
// BenchmarkUntracedInvocation; the design budget is <5% overhead
// (EXPERIMENTS.md records the measured ratio).
func BenchmarkTracedInvocation(b *testing.B) {
	sys := benchMailSystem(b)
	met := telemetry.NewMetrics()
	sys.SetTracer(met)
	sys.SetTraceSampling(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mail.FetchMail(sys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullyTracedInvocation traces every request (no sampling) — the
// worst-case fidelity/overhead point, reported alongside the sampled
// number in EXPERIMENTS.md.
func BenchmarkFullyTracedInvocation(b *testing.B) {
	sys := benchMailSystem(b)
	met := telemetry.NewMetrics()
	sys.SetTracer(met)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mail.FetchMail(sys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracedRecorderInvocation measures the full-fidelity span
// recorder instead of the aggregating collector (bounded buffer, reset
// each iteration so it never overflows).
func BenchmarkTracedRecorderInvocation(b *testing.B) {
	sys := benchMailSystem(b)
	rec := telemetry.NewRecorder(0)
	sys.SetTracer(rec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mail.FetchMail(sys); err != nil {
			b.Fatal(err)
		}
		rec.Reset()
	}
}

// BenchmarkContainmentSweep measures a full E1-style sweep over the mail
// app (8 fresh systems, compromise, leak scoring).
func BenchmarkContainmentSweep(b *testing.B) {
	build := func() (*core.System, map[string][]byte, error) {
		return mail.Build(kernel.New(kernel.Config{}), mail.HorizontalManifest())
	}
	targets := mail.ComponentNames()
	for i := 0; i < b.N; i++ {
		if _, err := attack.ContainmentSweep(build, targets); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorage compares write+read throughput of the raw legacy FS
// with VPFS in both modes — the overhead the trusted wrapper costs.
func BenchmarkStorage(b *testing.B) {
	payload := cryptoutil.NewPRNG("bench").Bytes(vpfs.MaxFileSize)
	b.Run("legacy-raw", func(b *testing.B) {
		dev := hw.NewBlockDevice("bench", 256)
		fs, err := legacy.Format(dev)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(payload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := fs.WriteFile("f", payload); err != nil {
				b.Fatal(err)
			}
			if _, err := fs.ReadFile("f"); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, mode := range []vpfs.Mode{vpfs.ModeMACOnly, vpfs.ModeFull} {
		b.Run("vpfs-"+mode.String(), func(b *testing.B) {
			dev := hw.NewBlockDevice("bench", 256)
			fs, err := legacy.Format(dev)
			if err != nil {
				b.Fatal(err)
			}
			v, err := vpfs.New(fs, cryptoutil.KeyFromSeed("bench"), mode)
			if err != nil {
				b.Fatal(err)
			}
			data := payload[:vpfs.MaxFileSize]
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := v.WriteFile("f", data); err != nil {
					b.Fatal(err)
				}
				if _, err := v.ReadFile("f"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSecureChannel measures the attested handshake and the
// per-record cost on an established session.
func BenchmarkSecureChannel(b *testing.B) {
	id := cryptoutil.NewSigner("bench-server")
	b.Run("handshake", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			client, err := securechan.NewClient(securechan.ClientConfig{
				Rand:         cryptoutil.NewPRNG(fmt.Sprintf("c%d", i)),
				VerifyServer: func(ed25519.PublicKey, [32]byte, []byte) error { return nil },
			})
			if err != nil {
				b.Fatal(err)
			}
			server, err := securechan.NewServer(securechan.ServerConfig{
				Rand: cryptoutil.NewPRNG(fmt.Sprintf("s%d", i)), Identity: id,
			})
			if err != nil {
				b.Fatal(err)
			}
			resp, pending, err := server.Respond(client.Hello())
			if err != nil {
				b.Fatal(err)
			}
			_, finish, err := client.Finish(resp)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := pending.Complete(finish); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("record-4k", func(b *testing.B) {
		client, _ := securechan.NewClient(securechan.ClientConfig{
			Rand:         cryptoutil.NewPRNG("rc"),
			VerifyServer: func(ed25519.PublicKey, [32]byte, []byte) error { return nil },
		})
		server, _ := securechan.NewServer(securechan.ServerConfig{
			Rand: cryptoutil.NewPRNG("rs"), Identity: id,
		})
		resp, pending, err := server.Respond(client.Hello())
		if err != nil {
			b.Fatal(err)
		}
		cs, finish, err := client.Finish(resp)
		if err != nil {
			b.Fatal(err)
		}
		ss, err := pending.Complete(finish)
		if err != nil {
			b.Fatal(err)
		}
		payload := cryptoutil.NewPRNG("payload").Bytes(4096)
		b.SetBytes(4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec, err := cs.Seal(payload)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ss.Open(rec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQuote measures attestation evidence generation + verification
// via the SGX quoting enclave path.
func BenchmarkQuote(b *testing.B) {
	vendor := cryptoutil.NewSigner("intel")
	device := cryptoutil.NewSigner("cpu")
	cert := core.IssueVendorCert(vendor, device.Public())
	meas := cryptoutil.Hash([]byte("enclave"))
	nonce := []byte("bench-nonce")
	for i := 0; i < b.N; i++ {
		q := core.SignQuote("sgx-qe", meas, nonce, device, cert)
		decoded, err := core.DecodeQuote(q.Encode())
		if err != nil {
			b.Fatal(err)
		}
		if err := core.VerifyQuote(decoded, nonce, vendor.Public(), meas); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCovertChannel measures the deterministic scheduler simulation
// itself (128 bits, 100-tick frames).
func BenchmarkCovertChannel(b *testing.B) {
	bits := make([]bool, 128)
	for i := range bits {
		bits[i] = i%2 == 0
	}
	for _, p := range []kernel.Policy{kernel.BestEffort, kernel.TimePartitioned} {
		b.Run(p.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := kernel.MeasureCovertChannel(p, 100, bits); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE15Interchangeability(b *testing.B) {
	benchExperiment(b, experiments.E15Interchangeability, "rows",
		func(t experiments.Table) float64 { return float64(len(t.Rows)) })
}

func BenchmarkE16IOMMU(b *testing.B) {
	benchExperiment(b, experiments.E16IOMMU, "rows",
		func(t experiments.Table) float64 { return float64(len(t.Rows)) })
}

func BenchmarkE17Distributed(b *testing.B) {
	benchExperiment(b, experiments.E17Distributed, "rows",
		func(t experiments.Table) float64 { return float64(len(t.Rows)) })
}

func BenchmarkE18AutoPartition(b *testing.B) {
	benchExperiment(b, experiments.E18AutoPartition, "rows",
		func(t experiments.Table) float64 { return float64(len(t.Rows)) })
}

// BenchmarkE19Cluster regenerates the fleet-scaling table each iteration
// (four fleet sizes plus the chaos run) and reports the 8-replica speedup
// over a single replica as the headline metric.
func BenchmarkE19Cluster(b *testing.B) {
	benchExperiment(b, experiments.E19Cluster, "8-replica-speedup-x",
		func(t experiments.Table) float64 { return cellFloat(t, "8 replicas", 4) })
}

// BenchmarkE20Stall regenerates the stall-containment table each iteration
// (healthy fleet, wedged replica, delayer chaos, leak check) and reports the
// number of calls abandoned at the deadline in the wedged round.
func BenchmarkE20Stall(b *testing.B) {
	benchExperiment(b, experiments.E20Stall, "wedged-timeouts",
		func(t experiments.Table) float64 { return cellFloat(t, "svc-1 wedged 4x budget", 3) })
}

// BenchmarkE21Simulation regenerates the deterministic-simulation table each
// iteration (fault-free sweep, mixed-fault sweep, replay, quarantine) and
// reports the number of faults injected across the mixed-fault round.
func BenchmarkE21Simulation(b *testing.B) {
	benchExperiment(b, experiments.E21Simulation, "mixed-faults-injected",
		func(t experiments.Table) float64 { return cellFloat(t, "mixed-fault schedule", 3) })
}

// BenchmarkE22Pipeline regenerates the pipelining table each iteration
// (depth sweep under a fixed simulated RTT) and reports the depth-16
// round amortization — calls completed per wire round, ≥3 is the
// acceptance floor, 16 the ideal.
func BenchmarkE22Pipeline(b *testing.B) {
	b.ReportAllocs()
	benchExperiment(b, experiments.E22Pipelining, "depth16-calls/round",
		func(t experiments.Table) float64 { return cellFloat(t, "16", 3) })
}

// BenchmarkE23Shard regenerates the million-client sharded-fleet table
// each iteration (16→17 shards, 1,048,576 batched readings, quota and
// placement-audit rows) and reports the final shard-map epoch — 17 (16
// seed joins plus the mid-stream rebalance) is the acceptance value.
func BenchmarkE23Shard(b *testing.B) {
	benchExperiment(b, experiments.E23Sharding, "final-shard-epoch",
		func(t experiments.Table) float64 {
			return cellFloat(t, "1048576 clients, 64 tenants, 17 shards", 1)
		})
}

// BenchmarkE26Rolling regenerates the rolling-replace table each iteration
// (two joins, two drained leaves under partition chaos, the stale-key
// adversary rows, and the auditor's membership replay) and reports the
// final config epoch — 4 transitions is the acceptance value.
func BenchmarkE26Rolling(b *testing.B) {
	benchExperiment(b, experiments.E26Rolling, "final-epoch",
		func(t experiments.Table) float64 { return cellFloat(t, "rolling replace, zero loss", 1) })
}

// benchSink is the remote component for the stub round-trip benchmark: it
// consumes the request and replies without a payload, which keeps the
// whole round trip on the pooled zero-allocation path.
type benchSink struct{}

func (benchSink) CompName() string     { return "sink" }
func (benchSink) CompVersion() string  { return "1.0" }
func (benchSink) Init(*core.Ctx) error { return nil }
func (benchSink) Handle(core.Envelope) (core.Message, error) {
	return core.Message{Op: "ok"}, nil
}

// BenchmarkStubRoundTrip measures the steady-state cost of one remote call
// on an established secure channel — encode, seal, wire, open, dispatch,
// reply — with the exporter pumped inline. Frame, record, and plaintext
// buffers are pooled end to end and the reply carries no payload, so the
// loop body's allocation budget is zero (the periodic HKDF key ratchet
// amortizes below 1 alloc/op); growth here is a hot-path regression.
func BenchmarkStubRoundTrip(b *testing.B) {
	net := netsim.New()
	sub, err := sgx.New(sgx.Config{DeviceSeed: "bench-cpu", Vendor: cryptoutil.NewSigner("intel")})
	if err != nil {
		b.Fatal(err)
	}
	sys := core.NewSystem(sub)
	if err := sys.Launch(benchSink{}, true, 1); err != nil {
		b.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		b.Fatal(err)
	}
	exp, err := distributed.NewExporter(distributed.ExportConfig{
		System:    sys,
		Component: "sink",
		Endpoint:  net.Attach("cloud"),
		Identity:  cryptoutil.NewSigner("cloud-tls"),
		Rand:      cryptoutil.NewPRNG("bench-srv"),
	})
	if err != nil {
		b.Fatal(err)
	}
	stub, err := distributed.NewStub(distributed.StubConfig{
		RemoteName:     "sink",
		RemoteEndpoint: "cloud",
		Endpoint:       net.Attach("laptop"),
		Rand:           cryptoutil.NewPRNG("bench-cli"),
		VerifyServer:   func(ed25519.PublicKey, [32]byte, []byte) error { return nil },
		Pump:           exp.Serve,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := stub.Connect(); err != nil {
		b.Fatal(err)
	}
	msg := core.Message{Op: "put", Data: []byte("0123456789abcdef")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stub.Handle(core.Envelope{Msg: msg}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCall measures the single cross-domain call the deadline work
// touches most directly: ui → net ("send", two domain hops) on the
// microkernel substrate. The "no-deadline" variant is the regression guard
// for the budget plumbing — an unbudgeted call must stay on the inline
// fast path (the acceptance bound is ≤2% over the pre-deadline baseline;
// EXPERIMENTS.md records the measured pair). "deadline" runs the same call
// with a generous budget, paying for one clock read plus the watchdog
// goroutine, timer, and deadline bookkeeping.
func BenchmarkCall(b *testing.B) {
	b.Run("no-deadline", func(b *testing.B) {
		sys := benchMailSystem(b)
		msg := core.Message{Op: "compose", Data: []byte("d")}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Deliver("ui", msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("deadline", func(b *testing.B) {
		sys := benchMailSystem(b)
		msg := core.Message{Op: "compose", Data: []byte("d")}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.DeliverDeadline("ui", msg, core.Span{}, time.Now().Add(time.Hour)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkJournalOverhead pins the fleet black box's cost contract on the
// call path. "off" is the baseline fleet with no journal wired; "on" runs
// the same calls with every admission, transition, and shed journaled into
// the hash chain. The steady-state call path journals NOTHING (events fire
// only on trust transitions and budget sheds), so off and on must stay
// within noise of each other — the journal-off fast path is a nil check.
// "record-event" is the cost of one journaled event itself: one canonical
// encode plus one SHA-256 chain link.
func BenchmarkJournalOverhead(b *testing.B) {
	drive := func(b *testing.B, rec cluster.EventRecorder) {
		b.Helper()
		d, err := experiments.BuildJournaledFleetDemo(2, 0, nil, rec)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := d.Send("meter-007", 3); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { drive(b, nil) })
	b.Run("on", func(b *testing.B) {
		jnl, err := journal.New(journal.Config{
			Signer:  cryptoutil.NewSigner("bench-journal"),
			Counter: &journal.MemCounter{},
		})
		if err != nil {
			b.Fatal(err)
		}
		drive(b, jnl)
	})
	b.Run("record-event", func(b *testing.B) {
		jnl, err := journal.New(journal.Config{
			Signer:          cryptoutil.NewSigner("bench-journal"),
			Counter:         &journal.MemCounter{},
			CheckpointEvery: -1,
			MaxEntries:      1 << 22,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			jnl.RecordEvent(journal.KindDeadline, "anon/anon-1", "budget expired", uint64(i), uint64(i))
		}
	})
}

// BenchmarkPolicyOverhead pins the chain-aware policy layer's cost
// contract on the invocation path. "off" is the baseline mail flow with no
// policy installed — the nil-hook fast path the whole design hinges on: no
// taint is computed, no interface call is made, so off must stay within
// noise of the pre-policy numbers. "on" runs the same flow under an engine
// whose rules never match the workload (a realistic deployment: taint and
// deny rules targeting other channels, a trailing allow) — the full
// per-invocation check plus taint bookkeeping. "check" is one rule-set
// evaluation by itself.
func BenchmarkPolicyOverhead(b *testing.B) {
	drive := func(b *testing.B, sys *core.System) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := mail.FetchMail(sys); err != nil {
				b.Fatal(err)
			}
		}
	}
	rules, err := policy.Decode([]byte(
		"taint vault ids meter-identities\ndeny no-exfil to-net * when meter-identities\nallow rest * *\n"))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("off", func(b *testing.B) {
		drive(b, benchMailSystem(b))
	})
	b.Run("on", func(b *testing.B) {
		eng, err := policy.New(policy.Config{Name: "bench", Rules: rules})
		if err != nil {
			b.Fatal(err)
		}
		sys := benchMailSystem(b)
		sys.SetPolicy(eng)
		drive(b, sys)
	})
	b.Run("check", func(b *testing.B) {
		eng, err := policy.New(policy.Config{Name: "bench", Rules: rules})
		if err != nil {
			b.Fatal(err)
		}
		req := core.PolicyRequest{From: "imap", Channel: "to-parse", To: "parse", Op: "parse"}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.CheckInvoke(req); err != nil {
				b.Fatal(err)
			}
		}
	})
}
